//! Interleaving fuzzer for the substrate's riskiest surfaces: the
//! collectives (mixed algorithms + `ANY_SOURCE` fan-in) and the
//! ADIOS/FlexPath staging transport. `minimpi::Explorer` reruns each
//! scenario under consecutive scheduler seeds until a time budget is
//! spent; every run asserts schedule-independent invariants, so any
//! panic is a real ordering bug.
//!
//! ```text
//! EXPLORE_BUDGET_SECS=60 cargo run --release --example explore_fuzz
//! ```
//!
//! On failure the offending delivery trace is written to
//! `results/failing_trace_<seed>.json` (CI uploads it as an artifact)
//! and the process exits nonzero. Replay it exactly with
//! `WorldBuilder::sched(SchedPolicy::Replay(Trace::from_json(..)))` —
//! see DESIGN.md §9.
//!
//! Every scenario also runs in race-hunting mode
//! ([`Explorer::sanitize`]): each run carries a happens-before
//! sanitizer session, so a schedule that makes a zero-copy publish
//! race or leaks a message fails with the same replayable trace that
//! a deadlock or invariant panic would — sanitizer traces land next
//! to deadlock traces in `results/`.
//!
//! After the seeded sweep, the same scenarios run under the
//! *systematic* checker ([`minimpi::Checker`]): DPOR-reduced schedule
//! exploration at a reduced rank count, with liveness thresholds and
//! the obligation registry armed. Failures come back minimized (ddmin
//! over the forced-choice prefix) and bitwise-replay-verified, written
//! to `results/minimized_trace_<scenario>.json`. Budget knobs:
//! `EXPLORE_SCHEDULES` switches the seeded sweep from a wall budget to
//! a fixed run count (deterministic CI), `MODELCHECK_SCHEDULES` caps
//! the systematic schedule tree (default 64).

use std::sync::Arc;
use std::time::Duration;

use adios::staging::{run_endpoint_with_broker, AdiosWriterAnalysis};
use adios::{pair, BrokerConfig, Role, StagingBroker};
use datamodel::{DataArray, DataSet, Extent, ImageData};
use minimpi::{CheckFailure, Checker, Comm, ExploreBudget, ExploreFailure, Explorer};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor;

const RANKS: usize = 6;
const RANKS_SYSTEMATIC: usize = 3;
const GRID: [usize; 3] = [9, 9, 9];
const STEPS: usize = 2;
const BINS: usize = 16;

/// Mixed collectives with an `ANY_SOURCE` fan-in between them — the
/// matching choice the scheduler randomizes hardest. Every invariant
/// below must hold under *any* interleaving.
fn collectives_scenario(comm: &Comm) {
    let r = comm.rank();
    let p = comm.size();

    let sum = comm.allreduce_scalar(r as u64 + 1, |a, b| a + b);
    assert_eq!(sum, (p * (p + 1) / 2) as u64, "allreduce sum");

    let v = comm.allreduce_vec_rsag(vec![r as u64; 7], |a, b| a + b);
    let expect = (p * (p - 1) / 2) as u64;
    assert!(v.iter().all(|&x| x == expect), "rsag element sums");

    // Fan-in on ANY_SOURCE: arrival order is the fuzzed dimension; the
    // accumulated total must not depend on it.
    if r == 0 {
        let mut total = 0u64;
        let mut seen = vec![false; p];
        for _ in 1..p {
            let (from, x) = comm.recv_any::<u64>(7);
            assert!(!seen[from], "duplicate delivery from {from}");
            seen[from] = true;
            total += x;
        }
        assert_eq!(total, (1..p as u64).sum::<u64>(), "fan-in total");
    } else {
        comm.send(0, 7, r as u64);
    }

    let scan = comm.scan(1u64, |a, b| a + b);
    assert_eq!(scan, r as u64 + 1, "inclusive scan");

    // Split into odd/even halves and run a collective in each,
    // exercising concurrent sub-communicators.
    let sub = comm.split((r % 2) as u32, r as u32);
    let members = comm.allreduce_scalar(1usize, |a, b| a + b);
    assert_eq!(members, p);
    let peak = sub.allreduce_scalar(r, usize::max);
    let expect_peak = if r.is_multiple_of(2) {
        ((p - 1) / 2) * 2
    } else {
        ((p - 2) / 2) * 2 + 1
    };
    assert_eq!(peak, expect_peak, "sub-communicator max");

    // A late straggler message must still be matchable after the
    // collectives completed (no cross-talk into collective tags).
    if r == 1 {
        comm.send(0, 99, 0xABu8);
    }
    if r == 0 {
        let (from, got): (usize, u8) = comm.recv_any(99);
        assert_eq!((from, got), (1, 0xAB));
    }
    comm.barrier();
}

/// FlexPath staging round trip: writers ship an oscillator deck, the
/// endpoint group runs a histogram in transit. The handshake (advance /
/// back-pressure / end-of-stream) is the most order-sensitive protocol
/// in the repo; the invariant is that every grid point is counted once
/// regardless of how the scheduler orders the two groups.
fn staging_scenario(comm: &Comm, deck: &str) {
    let writers = comm.size() / 2;
    match pair(comm, writers) {
        Role::Writer { sub, writer } => {
            let cfg = SimConfig {
                grid: GRID,
                steps: STEPS,
                ..SimConfig::default()
            };
            let root_deck = if sub.rank() == 0 { Some(deck) } else { None };
            let mut sim = Simulation::new(&sub, cfg, root_deck);
            let mut ship = AdiosWriterAnalysis::new(writer);
            for _ in 0..STEPS {
                sim.step(&sub);
                ship.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            ship.finalize(comm);
        }
        Role::Endpoint { sub, mut reader } => {
            let hist = HistogramAnalysis::new("data", BINS);
            let results = hist.results_handle();
            let analyses: Vec<Box<dyn AnalysisAdaptor>> = vec![Box::new(hist)];
            let broker = StagingBroker::new(BrokerConfig::default());
            let (bridge, _report) =
                run_endpoint_with_broker(comm, &sub, &mut reader, analyses, &broker);
            assert_eq!(bridge.steps(), STEPS as u64, "endpoint saw every step");
            if sub.rank() == 0 {
                let r = results.lock().clone().expect("endpoint histogram");
                let counted: u64 = r.counts.iter().sum();
                let points = (GRID[0] * GRID[1] * GRID[2]) as u64;
                assert_eq!(counted, points, "histogram counts every point once");
                assert!(r.min <= r.max, "histogram range is ordered");
            }
        }
    }
}

/// Zero-copy publish discipline under fuzzing: each rank stages its
/// shared field to an endpoint-shaped window, exchanges halo-style
/// messages, and only mutates the field after the window closed and
/// the neighbor's ack arrived. Correct by construction — so any
/// sanitizer finding here is a schedule the happens-before edges do
/// not actually cover, i.e. a real race.
fn publish_scenario(comm: &Comm) {
    let r = comm.rank();
    let p = comm.size();
    let whole = Extent::whole([4, 4, 1]);
    let mut img = ImageData::new(whole, whole);
    let n = img.num_points();
    img.point_data
        .insert(DataArray::shared("u", 1, Arc::new(vec![r as f64; n])));
    let mut data = DataSet::Image(img);

    for step in 0..2u64 {
        // Stage the field; the guard models an endpoint holding
        // zero-copy views for the duration of the marshal.
        let guard = datamodel::publish_dataset(&data, "fuzz");
        // Endpoint-side read while staged (reads are always safe).
        if let DataSet::Image(g) = &data {
            let arr = g.point_data.get("u").expect("field present");
            let _sum: f64 = (0..arr.num_tuples()).map(|t| arr.get(t, 0)).sum();
        }
        drop(guard);
        // Message edge to the neighbor: the recv merges the sender's
        // clock, ordering the sender's release before our next write.
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        comm.send(next, 40 + step as u32, r as u64);
        let _ = comm.recv::<u64>(prev, 40 + step as u32);
        // Mutate only after our own release and the neighbor's ack.
        if let DataSet::Image(g) = &mut data {
            let arr = g.point_data.get_mut("u").expect("field present");
            arr.set(0, 0, step as f64);
        }
    }
    comm.barrier();
}

fn report(scenario: &str, failure: &ExploreFailure) {
    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/failing_trace_{}.json", failure.seed);
    std::fs::write(&path, failure.trace.to_json()).expect("write trace");
    eprintln!(
        "FAIL [{scenario}] seed {}: {}",
        failure.seed, failure.message
    );
    eprintln!("  delivery trace written to {path}");
    eprintln!("  replay: WorldBuilder::sched(SchedPolicy::Replay(Trace::from_json(&json)))");
}

fn report_minimized(scenario: &str, failure: &CheckFailure) {
    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/minimized_trace_{scenario}.json");
    std::fs::write(&path, failure.trace.to_json()).expect("write trace");
    eprintln!("FAIL [systematic {scenario}]: {}", failure.message);
    eprintln!(
        "  minimized schedule: {} forced choice(s), down from {}; bitwise replay verified: {}",
        failure.prefix.len(),
        failure.original_choices,
        failure.replayed_bitwise
    );
    eprintln!("  minimized delivery trace written to {path}");
}

/// One systematic leg: DPOR exploration with the sanitizer armed,
/// wall-capped to its share of the budget. Prints the exploration
/// stats either way; returns whether the scenario failed.
fn run_systematic<F>(name: &str, size: usize, slice: Duration, budget: usize, f: F) -> bool
where
    F: Fn(&Comm) + Send + Sync + 'static,
{
    let report = Checker::new()
        .max_schedules(budget)
        .wall_cap(slice)
        .sanitize()
        .run(size, f);
    let s = &report.stats;
    println!(
        "systematic {name}: {} schedule(s), pruning ratio {:.2} \
         (sleep-set {}, independent {}), max backtrack depth {}{}",
        s.schedules_explored,
        s.pruning_ratio(),
        s.pruned_by_sleep_set,
        s.pruned_independent,
        s.max_backtrack_depth,
        if s.budget_exhausted {
            ", budget exhausted"
        } else {
            ""
        },
    );
    match &report.failure {
        None => {
            println!("systematic {name}: clean");
            false
        }
        Some(failure) => {
            report_minimized(name, failure);
            true
        }
    }
}

fn main() {
    let budget_secs: f64 = std::env::var("EXPLORE_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|s: &f64| s.is_finite() && *s > 0.0)
        .unwrap_or(60.0);
    // Three scenarios share the budget; Explorer always runs each at
    // least once even when the slice rounds down to nothing.
    let slice = Duration::from_secs_f64(budget_secs / 3.0);
    let base_seed = std::env::var("EXPLORE_BASE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    // A fixed run count makes the seeded sweep deterministic (CI);
    // the default wall budget adapts coverage to the machine.
    let seeded_budget = match std::env::var("EXPLORE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => ExploreBudget::Schedules(n),
        None => ExploreBudget::Wall(slice),
    };
    let modelcheck_schedules: usize = std::env::var("MODELCHECK_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    println!(
        "explore_fuzz: {budget_secs:.0}s budget, base seed {base_seed}, {RANKS} ranks per \
         seeded world, {RANKS_SYSTEMATIC} per systematic world ({modelcheck_schedules} \
         schedules max)"
    );

    let mut failed = false;

    let explorer = Explorer::new(base_seed).budget(seeded_budget).sanitize();
    match explorer.run(RANKS, collectives_scenario) {
        None => println!("collectives scenario: clean"),
        Some(f) => {
            report("collectives", &f);
            failed = true;
        }
    }

    let deck = format_deck(&demo_oscillators());
    let explorer = Explorer::new(base_seed).budget(seeded_budget).sanitize();
    match explorer.run(RANKS, {
        let deck = deck.clone();
        move |comm| staging_scenario(comm, &deck)
    }) {
        None => println!("staging scenario: clean"),
        Some(f) => {
            report("staging", &f);
            failed = true;
        }
    }

    let explorer = Explorer::new(base_seed).budget(seeded_budget).sanitize();
    match explorer.run(RANKS, publish_scenario) {
        None => println!("zero-copy publish scenario: clean"),
        Some(f) => {
            report("publish", &f);
            failed = true;
        }
    }

    // Systematic side: the same scenarios under DPOR exploration at a
    // reduced rank count (the schedule tree grows with world size; the
    // reduction, not brute force, is what covers the orderings).
    failed |= run_systematic(
        "collectives",
        RANKS_SYSTEMATIC,
        slice,
        modelcheck_schedules,
        collectives_scenario,
    );
    failed |= run_systematic("staging", 2, slice, modelcheck_schedules, move |comm| {
        staging_scenario(comm, &deck)
    });
    failed |= run_systematic(
        "publish",
        RANKS_SYSTEMATIC,
        slice,
        modelcheck_schedules,
        publish_scenario,
    );

    if failed {
        std::process::exit(1);
    }
    println!("explore_fuzz: all scenarios clean within budget");
}
