//! PHASTA vertical-tail flow with live jet steering (§4.2.1): run the
//! unstructured proxy, render slice cuts through the wing every other
//! step, and retune the synthetic jet mid-run using feedback from the
//! in situ images — the paper's "really useful time" loop.
//!
//! ```text
//! cargo run --release --example phasta_tail
//! ```

use minimpi::World;
use render::camera::Camera;
use render::color::{Color, Colormap};
use render::deflate::Mode;
use render::framebuffer::Framebuffer;
use render::png::encode_framebuffer;
use render::raster::{fill_triangle, Vertex};
use science::{Phasta, PhastaAdaptor, PhastaConfig};
use sensei::DataAdaptor as _;

const STEPS: u64 = 30;

fn main() {
    std::fs::create_dir_all("results").expect("results dir");
    World::run(4, |comm| {
        let mut sim = Phasta::new(comm, PhastaConfig::default());
        if comm.rank() == 0 {
            println!(
                "PHASTA proxy: {} tets across {} ranks; images every other step",
                sim.total_tets(comm),
                comm.size()
            );
        } else {
            sim.total_tets(comm); // collective
        }

        for step in 0..STEPS {
            sim.step(comm);
            // Live steering: crank the jet up halfway through, as an
            // engineer would after inspecting the in situ images.
            if step == STEPS / 2 {
                sim.set_jet(0.8, 16.0);
                if comm.rank() == 0 {
                    println!("step {step}: retuned jet to amplitude 0.8, frequency 16");
                }
            }
            if step % 2 != 0 {
                continue;
            }
            // SENSEI → Catalyst-style slice cut + render.
            let adaptor = PhastaAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            let datamodel::DataSet::Unstructured(grid) = &mesh else {
                unreachable!()
            };
            let tris = catalyst::cutter::cut_tets(grid, "velmag", [0.0, 0.0, 1.0], 0.3);
            let cam = Camera::ortho(0.0, 2.0, 0.0, 1.0);
            let cmap = Colormap::cool_warm();
            let (w, h) = (400usize, 200usize);
            let mut fb = Framebuffer::new(w, h);
            let local_max = tris.iter().flat_map(|t| t.scalars).fold(0.0f64, f64::max);
            let vmax = comm.allreduce_scalar(local_max, f64::max).max(1e-9);
            for t in &tris {
                let vs: Vec<Vertex> = t
                    .points
                    .iter()
                    .zip(&t.scalars)
                    .map(|(p, s)| {
                        let (x, y, z) = cam.project(*p, w, h).expect("ortho");
                        Vertex {
                            x,
                            y,
                            z,
                            color: cmap.map_range(*s, 0.0, vmax),
                        }
                    })
                    .collect();
                fill_triangle(&mut fb, vs[0], vs[1], vs[2]);
            }
            if let Some(final_fb) = render::composite::binary_swap(comm, fb) {
                let png = encode_framebuffer(&final_fb, Color::WHITE, Mode::Fixed);
                let path = format!("results/phasta_{step:03}.png");
                std::fs::write(&path, png).expect("write png");
                println!(
                    "step {step}: |v|max {vmax:.3}, crossflow {:.3} → {path}",
                    sim.max_crossflow()
                );
            }
        }
    });
    println!("done; inspect results/phasta_*.png to see the jet's effect appear mid-run");
}
