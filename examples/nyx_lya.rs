//! Nyx LyA-style run with SENSEI (§4.2.3): a particle-mesh cosmology
//! proxy producing density histograms every step and Catalyst slices
//! every 4th step, with the ghost-cell blanking the paper describes —
//! in situ gives per-step temporal resolution where post hoc plot files
//! would only capture every 100th state (Fig. 18's point).
//!
//! ```text
//! cargo run --release --example nyx_lya
//! ```

use minimpi::World;
use science::{Nyx, NyxAdaptor, NyxConfig};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::Bridge;

const STEPS: usize = 12;

fn main() {
    std::fs::create_dir_all("results").expect("results dir");
    World::run(4, |comm| {
        let mut sim = Nyx::new(
            comm,
            NyxConfig {
                grid: [24, 24, 24],
                sigma_v: 0.25,
                ..NyxConfig::default()
            },
        );
        let hist = HistogramAnalysis::new("density", 24);
        let hist_results = hist.results_handle();
        let mut pipe = catalyst::SlicePipeline::new("density", 2, 12);
        pipe.width = 480;
        pipe.height = 480;
        pipe.frequency = 4;
        pipe.output = catalyst::SliceOutput::Directory(std::path::PathBuf::from("results"));
        let mut bridge = Bridge::new();
        bridge.register(Box::new(hist));
        bridge.register(Box::new(catalyst::CatalystSliceAnalysis::new(pipe)));

        let n0 = sim.total_particles(comm);
        if comm.rank() == 0 {
            println!(
                "Nyx proxy: {n0} particles on {} ranks, {STEPS} steps",
                comm.size()
            );
        }
        for step in 0..STEPS {
            sim.step(comm);
            bridge.execute(&NyxAdaptor::new(&sim), comm);
            if comm.rank() == 0 {
                let r = hist_results.lock().clone().expect("histogram");
                // Overdensity fraction: cells past the midpoint of the
                // density range — structure formation in a number.
                let total: u64 = r.counts.iter().sum();
                let over: u64 = r.counts[r.counts.len() / 2..].iter().sum();
                println!(
                    "  step {step:3}: density ∈ [{:.2}, {:.2}], {:.2}% of cells overdense",
                    r.min,
                    r.max,
                    100.0 * over as f64 / total as f64
                );
            }
        }
        let n1 = sim.total_particles(comm);
        bridge.finalize(comm);
        if comm.rank() == 0 {
            assert_eq!(n0, n1, "particles conserved through migration");
            println!("slices under results/slice_*.png (every 4th step)");
        }
    });
}
