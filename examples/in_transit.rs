//! In transit analysis with ADIOS/FlexPath (§4.1.4): the simulation
//! group ships data through the staging transport to an endpoint group
//! that runs the analyses — here a histogram *and* a Catalyst slice,
//! demonstrating the Fig. 2 composability (Catalyst running on top of
//! ADIOS under SENSEI, with zero simulation-side changes).
//!
//! ```text
//! cargo run --release --example in_transit [writers]
//! ```

use adios::staging::{run_endpoint_with_broker, AdiosWriterAnalysis};
use adios::{pair, BrokerConfig, Role, StagingBroker};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor as _;

const STEPS: usize = 12;

fn main() {
    let writers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let world_size = writers * 2; // co-scheduled endpoints, one per writer

    println!("in transit: {writers} writers + {writers} FlexPath endpoints, {STEPS} steps");
    let deck = format_deck(&demo_oscillators());
    World::run(world_size, move |world| {
        match pair(world, writers) {
            Role::Writer { sub, writer } => {
                let cfg = SimConfig {
                    grid: [25, 25, 25],
                    steps: STEPS,
                    ..SimConfig::default()
                };
                let root_deck = if sub.rank() == 0 {
                    Some(deck.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(&sub, cfg, root_deck);
                let mut ship = AdiosWriterAnalysis::new(writer);
                for _ in 0..STEPS {
                    sim.step(&sub);
                    // The only instrumentation the simulation carries:
                    // hand the adaptor to the ADIOS analysis adaptor.
                    ship.execute(&OscillatorAdaptor::new(&sim), world);
                }
                ship.finalize(world);
                if sub.rank() == 0 {
                    println!(
                        "writer 0: shipped {:.2} MB; advance(+blocking) {:.3}s, marshal+send {:.3}s",
                        ship.bytes_shipped as f64 / 1e6,
                        ship.advance_seconds,
                        ship.write_seconds
                    );
                }
            }
            Role::Endpoint { sub, mut reader } => {
                let hist = HistogramAnalysis::new("data", 32);
                let results = hist.results_handle();
                let mut pipe = catalyst::SlicePipeline::new("data", 2, 12);
                pipe.width = 480;
                pipe.height = 360;
                pipe.output = catalyst::SliceOutput::Directory(std::path::PathBuf::from("results"));
                pipe.frequency = 6;
                if sub.rank() == 0 {
                    std::fs::create_dir_all("results").expect("results dir");
                }
                sub.barrier();
                let catalyst_slice = catalyst::CatalystSliceAnalysis::new(pipe);
                // The broker tee is the staging spine: subscribers can
                // attach to the stream at any time; with none, it's free.
                let broker = StagingBroker::new(BrokerConfig::default());
                let (bridge, _report) = run_endpoint_with_broker(
                    world,
                    &sub,
                    &mut reader,
                    vec![Box::new(hist), Box::new(catalyst_slice)],
                    &broker,
                );
                if sub.rank() == 0 {
                    let r = results.lock().clone().expect("endpoint histogram");
                    println!(
                        "endpoint 0: processed {} steps; final histogram over [{:.3}, {:.3}], {} samples",
                        bridge.steps(),
                        r.min,
                        r.max,
                        r.counts.iter().sum::<u64>()
                    );
                    println!("endpoint slice images under results/ (slice_*.png)");
                }
            }
        }
    });
}
