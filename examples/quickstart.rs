//! Quickstart: instrument a simulation with SENSEI in ~30 lines.
//!
//! Runs the oscillator miniapplication on 4 thread-backed ranks with two
//! in situ analyses — a histogram and a Catalyst slice render — and
//! prints the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::Bridge;

fn main() {
    let deck = format_deck(&demo_oscillators());
    World::run(4, move |comm| {
        // 1. Set up the simulation (rank 0 reads the oscillator deck and
        //    broadcasts it, §3.3).
        let config = SimConfig {
            grid: [33, 33, 33],
            steps: 20,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, config, root_deck);

        // 2. Build the in situ bridge and enable analyses.
        let histogram = HistogramAnalysis::new("data", 16);
        let hist_results = histogram.results_handle();
        let mut slice = catalyst::SlicePipeline::new("data", 2, 16);
        slice.width = 640;
        slice.height = 480;
        slice.output = catalyst::SliceOutput::Directory(std::path::PathBuf::from("results"));
        slice.frequency = 10;
        let catalyst_analysis = catalyst::CatalystSliceAnalysis::new(slice);

        let mut bridge = Bridge::new();
        bridge.register(Box::new(histogram));
        bridge.register(Box::new(catalyst_analysis));

        if comm.rank() == 0 {
            std::fs::create_dir_all("results").expect("create results dir");
        }
        comm.barrier();

        // 3. The simulation loop: step, then hand the zero-copy adaptor
        //    to the bridge.
        for _ in 0..sim.total_steps() {
            sim.step(comm);
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        let report = bridge.finalize(comm);

        // 4. Rank 0 reports.
        if comm.rank() == 0 {
            let hist = hist_results.lock().clone().expect("histogram result");
            println!(
                "histogram at step {} over [{:.3}, {:.3}]:",
                hist.step, hist.min, hist.max
            );
            let peak = *hist.counts.iter().max().unwrap() as f64;
            for (b, &count) in hist.counts.iter().enumerate() {
                let bar = "#".repeat((count as f64 / peak * 50.0) as usize);
                let (lo, hi) = hist.bin_range(b);
                println!("  [{lo:+.2}, {hi:+.2})  {count:6}  {bar}");
            }
            let h = report.phase("per-step/histogram").expect("phase recorded");
            let c = report
                .phase("per-step/catalyst-slice")
                .expect("phase recorded");
            println!(
                "\nper-step cost: histogram {:.2} ms/rank (×{}), catalyst-slice {:.2} ms/rank (×{})",
                h.mean_s / report.steps as f64 * 1e3,
                h.samples,
                c.mean_s / report.steps as f64 * 1e3,
                c.samples
            );
            println!("slice images written under results/ (slice_*.png)");
        }
    });
}
