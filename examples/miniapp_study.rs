//! The §4.1 miniapplication study in miniature: run the oscillator
//! miniapp under every in situ configuration of the paper — Baseline,
//! Histogram, Autocorrelation, Catalyst-slice, Libsim-slice — on
//! thread-backed ranks and report one-time and per-step costs (the real
//! analogue of Figs. 5/6).
//!
//! ```text
//! cargo run --release --example miniapp_study [ranks] [grid]
//! ```
//!
//! Every configuration runs with the observability probe enabled; rank 0
//! writes the cross-rank `RunReport` (per-phase min/mean/max/stddev,
//! per-collective message/byte counters, per-rank memory high-water) to
//! `results/run_report_<config>.json`.

use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::{AnalysisAdaptor, Bridge, Probe};

const STEPS: usize = 10;

fn build_analysis(config: &str) -> Option<Box<dyn AnalysisAdaptor>> {
    match config {
        "Baseline" => None,
        "Histogram" => Some(Box::new(HistogramAnalysis::new("data", 64))),
        "Autocorrelation" => Some(Box::new(Autocorrelation::new("data", 10, 16))),
        "Catalyst-slice" => {
            let mut pipe = catalyst::SlicePipeline::new("data", 2, 12);
            pipe.width = 480;
            pipe.height = 270;
            Some(Box::new(catalyst::CatalystSliceAnalysis::new(pipe)))
        }
        "Libsim-slice" => {
            let session =
                libsim::Session::parse("image 400 400\nplot pseudocolor data axis=z index=12\n")
                    .expect("session");
            Some(Box::new(libsim::LibsimAnalysis::new(
                session,
                std::path::Path::new("/nonexistent/.visitrc"),
            )))
        }
        other => panic!("unknown config {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let grid: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(33);

    println!("miniapp study: {ranks} ranks, {grid}^3 grid, {STEPS} steps\n");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>12}",
        "config", "init (s)", "sim/step", "analysis/step", "finalize"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let mut reports = Vec::new();

    for config in [
        "Baseline",
        "Histogram",
        "Autocorrelation",
        "Catalyst-slice",
        "Libsim-slice",
    ] {
        let deck = format_deck(&demo_oscillators());
        let rows = World::run(ranks, move |comm| {
            let t_init = probe::time::Wall::now();
            let cfg = SimConfig {
                grid: [grid, grid, grid],
                steps: STEPS,
                ..SimConfig::default()
            };
            let root_deck = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            let mut bridge = Bridge::with_probe(Probe::enabled());
            // Attach the probe before the first step so the simulation
            // kernel's own spans are captured from step 0.
            comm.attach_probe(bridge.probe().clone());
            if let Some(a) = build_analysis(config) {
                bridge.register(a);
            }
            let init = t_init.elapsed().as_secs_f64();

            let mut sim_s = 0.0;
            let mut ana_s = 0.0;
            for _ in 0..STEPS {
                let t = probe::time::Wall::now();
                sim.step(comm);
                sim_s += t.elapsed().as_secs_f64();
                let t = probe::time::Wall::now();
                bridge.execute(&OscillatorAdaptor::new(&sim), comm);
                ana_s += t.elapsed().as_secs_f64();
            }
            let t = probe::time::Wall::now();
            let report = bridge.finalize(comm);
            let fin = t.elapsed().as_secs_f64();
            let json = (comm.rank() == 0).then(|| report.to_json());
            (init, sim_s / STEPS as f64, ana_s / STEPS as f64, fin, json)
        });
        // Report the max across ranks (the paper's convention: the
        // simulation advances at the slowest rank's pace).
        let agg = rows.iter().fold((0.0f64, 0.0f64, 0.0f64, 0.0f64), |m, r| {
            (m.0.max(r.0), m.1.max(r.1), m.2.max(r.2), m.3.max(r.3))
        });
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>14.4} {:>12.4}",
            config, agg.0, agg.1, agg.2, agg.3
        );
        // Rank 0's cross-rank run report, as machine-readable JSON.
        if let Some(json) = rows.into_iter().find_map(|r| r.4) {
            let path = format!("results/run_report_{}.json", config.to_lowercase());
            std::fs::write(&path, json).expect("write run report");
            reports.push(path);
        }
    }
    println!("\nrun reports: {}", reports.join(", "));
    println!("\n(compare the shape with Figs. 5–6: analyses cost little next to the");
    println!(" simulation; rendering configurations pay extraction + compositing + PNG)");
}
