//! The in situ vs. post hoc comparison (§4.1.5) at workstation scale:
//! run the miniapp once with an in situ histogram, then run it again
//! writing every step to disk and analyzing post hoc with 10% of the
//! cores — and compare both the timings and the (identical) results.
//!
//! ```text
//! cargo run --release --example posthoc_vs_insitu
//! ```

use datamodel::{dims_create, partition_extent, Extent};
use iosim::{posthoc_analysis, write_manifest, write_piece, Piece};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor as _;

const RANKS: usize = 10;
const GRID: usize = 31;
const STEPS: usize = 8;
const BINS: usize = 32;

fn main() {
    let dir = std::env::temp_dir().join(format!("posthoc_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let deck = format_deck(&demo_oscillators());

    // --- In situ run -------------------------------------------------
    let d1 = deck.clone();
    let t0 = probe::time::Wall::now();
    let insitu_hist = World::run(RANKS, move |comm| {
        let cfg = SimConfig {
            grid: [GRID, GRID, GRID],
            steps: STEPS,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d1.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root);
        let mut hist = HistogramAnalysis::new("data", BINS);
        let handle = hist.results_handle();
        for _ in 0..STEPS {
            sim.step(comm);
            hist.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        let out = handle.lock().clone();
        out
    })
    .into_iter()
    .next()
    .unwrap()
    .expect("in situ histogram");
    let insitu_time = t0.elapsed().as_secs_f64();

    // --- Post hoc: write everything, then read with 10% of the cores --
    let d2 = deck.clone();
    let dir_w = dir.clone();
    let t1 = probe::time::Wall::now();
    World::run(RANKS, move |comm| {
        let cfg = SimConfig {
            grid: [GRID, GRID, GRID],
            steps: STEPS,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d2.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root);
        let global = Extent::whole([GRID, GRID, GRID]);
        let dims = dims_create(comm.size());
        let local = partition_extent(&global, dims, comm.rank());
        for step in 0..STEPS as u64 {
            sim.step(comm);
            let piece = Piece {
                extent: local,
                global,
                spacing: sim.spacing(),
                arrays: vec![("data".to_string(), sim.field().as_ref().clone())],
            };
            write_piece(&dir_w, step, comm.rank(), &piece).expect("write piece");
            if comm.rank() == 0 {
                let extents: Vec<Extent> = (0..comm.size())
                    .map(|r| partition_extent(&global, dims, r))
                    .collect();
                write_manifest(&dir_w, step, &extents).expect("manifest");
            }
        }
        comm.barrier();
    });
    let write_time = t1.elapsed().as_secs_f64();

    let dir_r = dir.clone();
    let t2 = probe::time::Wall::now();
    let (posthoc_hist, report) = World::run(1, move |comm| {
        let hist = HistogramAnalysis::new("data", BINS);
        let handle = hist.results_handle();
        let (_, report) = posthoc_analysis(
            comm,
            &dir_r,
            STEPS as u64,
            RANKS,
            vec![Box::new(hist)],
            None,
        );
        let out = handle.lock().clone();
        (out.expect("post hoc histogram"), report)
    })
    .into_iter()
    .next()
    .unwrap();
    let posthoc_time = t2.elapsed().as_secs_f64();

    // --- Compare -------------------------------------------------------
    assert_eq!(
        insitu_hist.counts, posthoc_hist.counts,
        "both paths compute the identical histogram"
    );
    println!(
        "histograms identical: {} samples over [{:.3}, {:.3}]",
        insitu_hist.counts.iter().sum::<u64>(),
        insitu_hist.min,
        insitu_hist.max
    );
    println!("\n                    wall time");
    println!("in situ (sim+hist):   {insitu_time:8.3} s");
    println!("post hoc write:       {write_time:8.3} s");
    println!(
        "post hoc read+hist:   {posthoc_time:8.3} s  ({:.1} MB read by 1 of {RANKS} cores)",
        report.bytes_read as f64 / 1e6
    );
    println!(
        "\npost hoc total is {:.1}× the in situ run (the paper's Fig. 12 contrast)",
        (write_time + posthoc_time) / insitu_time.max(1e-9)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
