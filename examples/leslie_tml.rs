//! AVF-LESLIE temporal mixing layer with SENSEI/Libsim (§4.2.2): the
//! solver runs every step, SENSEI is invoked every step, and the Libsim
//! session (3 isosurfaces + slices of vorticity magnitude) renders
//! every 5th step — reporting the per-iteration SENSEI cost series of
//! Fig. 16.
//!
//! ```text
//! cargo run --release --example leslie_tml
//! ```

use minimpi::World;
use science::{Leslie, LeslieAdaptor, LeslieConfig};
use sensei::Bridge;

const STEPS: usize = 20;

fn main() {
    std::fs::create_dir_all("results").expect("results dir");
    World::run(4, |comm| {
        let mut sim = Leslie::new(
            comm,
            LeslieConfig {
                grid: [32, 33, 16],
                epsilon: 0.12,
                ..LeslieConfig::default()
            },
        );
        let session = libsim::Session::parse(
            "image 480 480\nfrequency 5\nplot isosurface vorticity levels=0.35,0.55,0.75\nplot pseudocolor vorticity axis=z index=4\n",
        )
        .expect("session");
        let libsim_analysis =
            libsim::LibsimAnalysis::new(session, std::path::Path::new("/nonexistent/.visitrc"))
                .with_output_dir(std::path::PathBuf::from("results"));
        let mut bridge = Bridge::new();
        bridge.register(Box::new(libsim_analysis));

        if comm.rank() == 0 {
            println!(
                "TML: {} ranks, per-iteration SENSEI cost (cf. Fig. 16):",
                comm.size()
            );
        }
        for step in 0..STEPS {
            let t = probe::time::Wall::now();
            sim.step(comm);
            let solver = t.elapsed().as_secs_f64();
            let t = probe::time::Wall::now();
            bridge.execute(&LeslieAdaptor::new(&sim), comm);
            let sensei_cost = t.elapsed().as_secs_f64();
            let energy = sim.kinetic_energy(comm);
            if comm.rank() == 0 {
                // The adaptor reports the post-step index, so renders
                // land where (step+1) % 5 == 0.
                let marker = if (step + 1) % 5 == 0 {
                    " <- libsim render"
                } else {
                    ""
                };
                println!(
                    "  step {step:3}: avf_timestep {solver:.4}s  avf_insitu::analyze {sensei_cost:.4}s  KE {energy:.2}{marker}"
                );
            }
        }
        bridge.finalize(comm);
        if comm.rank() == 0 {
            println!("rendered frames under results/libsim_*.png");
        }
    });
}
