//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: primitive
//! range and `any::<T>()` strategies, `collection::vec`, fixed-size
//! arrays, tuple composition, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Cases are generated from a seed derived from the test function's
//! name, so failures reproduce exactly run to run. There is no
//! shrinking: a failing case panics with the standard assertion message
//! and the deterministic stream makes it reproducible under a debugger.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Per-test configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator threaded through strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed from a test-identifying string (typically the fn name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a: stable across platforms and toolchains.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn gen_usize(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        self.rng.gen_range(range)
    }
}

/// A source of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128;
                (self.start as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Marker for types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size` lengths, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[T; 3]` from one element strategy.
    pub struct Uniform3<S> {
        element: S,
    }

    /// Three independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.element.sample(rng),
                self.element.sample(rng),
                self.element.sample(rng),
            ]
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property; accepts an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when a precondition fails.
///
/// Only valid inside a [`proptest!`] body (the body runs in a closure;
/// `return` abandons the case, not the whole test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Immediately-invoked closure so prop_assume! can abandon
                // one case without ending the whole test.
                (move || { $body })();
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_arrays(pair in (0usize..4, 0.0f32..1.0), triple in crate::array::uniform3(-5i64..5)) {
            prop_assert!(pair.0 < 4);
            prop_assert!(triple.iter().all(|&c| (-5..5).contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::sample(&s, &mut a),
                crate::Strategy::sample(&s, &mut b)
            );
        }
    }
}
