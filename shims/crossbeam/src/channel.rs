//! MPMC channels: `unbounded` and `bounded` flavors.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when a message is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signaled when a message is popped or the last receiver leaves.
    not_full: Condvar,
    /// `None` = unbounded.
    capacity: Option<usize>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded MPMC channel; sends block while `cap` messages are
/// queued. `cap == 0` is treated as capacity 1 (crossbeam's rendezvous
/// semantics are not needed by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// Empty and every sender has hung up.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// Empty and every sender has hung up.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(cap) = self.shared.capacity {
            while state.queue.len() >= cap {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender hangs up.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Block until a message arrives, every sender hangs up, or `timeout`
    /// elapses, whichever comes first.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(v) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of currently queued messages.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the consumer pops
            tx.send(4).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mpmc_from_many_threads() {
        let (tx, rx) = unbounded::<usize>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut n = 0;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }
}
