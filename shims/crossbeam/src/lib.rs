//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer channels the workspace
//! uses (`unbounded` and `bounded`), built on `Mutex` + `Condvar`.
//! Semantics match crossbeam where this workspace relies on them:
//! cloneable senders *and* receivers, FIFO delivery, and disconnect
//! errors once the opposite side has fully hung up.

pub mod channel;
