//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Bytes`] (cheaply
//! clonable immutable buffer), [`BytesMut`] (growable builder), and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (refcount, not memcpy).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

/// Growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Pre-allocate `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side cursor operations (little-endian variants only).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations (little-endian variants only).
///
/// # Panics
/// The `get_*` accessors and [`Buf::advance`] panic when the buffer has
/// fewer bytes than requested; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy out `dst.len()` bytes and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(-1.5);
        let frozen = b.freeze();
        let mut buf: &[u8] = &frozen;
        assert_eq!(buf.remaining(), 4 + 4 + 8 + 8);
        buf.advance(4);
        assert_eq!(buf.get_u32_le(), 7);
        assert_eq!(buf.get_u64_le(), u64::MAX - 3);
        assert_eq!(buf.get_f64_le(), -1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let a: Bytes = vec![1u8, 2, 3].into();
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
