//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly and poisoning is transparently ignored (a
//! panicked critical section does not wedge later lockers).

use std::sync::{self, TryLockError};

/// Guard types are the std guards; only acquisition differs.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`]: `wait` reacquires
/// through the same poison-transparent path as `lock`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is reacquired (poison ignored) before returning.
    /// parking_lot-style in-place signature: the guard stays borrowed
    /// by the caller across the wait.
    ///
    /// Each mutex must be paired with a single condvar (std
    /// restriction; `std::sync::Condvar::wait` panics otherwise).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the guard is moved out, consumed by `wait`, and the
        // guard it returns is written back before anyone can observe
        // the hole. `std::sync::Condvar::wait` does not unwind for a
        // mutex paired with exactly one condvar (documented above as a
        // usage requirement), so no path drops the moved-out guard
        // twice.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.inner.wait(owned).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
        }
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns
    /// `true` if the wait timed out (parking_lot's `WaitTimeoutResult`
    /// collapsed to its `timed_out()` bool — the only bit callers use).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        // SAFETY: identical move-out/write-back discipline as `wait`:
        // the hole in `guard` is filled before this returns, and
        // `wait_timeout` does not unwind under the one-condvar-per-
        // mutex pairing rule documented on `wait`.
        unsafe {
            let owned = std::ptr::read(guard);
            let (reacquired, result) = self
                .inner
                .wait_timeout(owned, timeout)
                .unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
            result.timed_out()
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_after_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poison propagation
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (5, 5));
    }
}
