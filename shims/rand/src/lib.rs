//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256** seeded via SplitMix64) and
//! the [`Rng::gen_range`] method over primitive `Range`s. Streams are
//! deterministic per seed but do **not** match upstream `rand`'s; all
//! in-repo consumers only rely on seeded reproducibility.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `SeedableRng` surface the workspace uses).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, implemented for primitive `Range` types.
pub trait SampleRange<T> {
    /// Draw one sample from `rng` within this range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, far below what any in-repo consumer resolves.
                let r = rng.next_u64() as u128;
                (self.start as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 effective mantissa bits; uniform in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Rounding can land exactly on `end`; fold back inside.
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let n = rng.gen_range(-50i64..-40);
            assert!((-50..-40).contains(&n));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
