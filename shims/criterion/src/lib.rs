//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with criterion's calling surface:
//! benchmark groups, per-group sample/warm-up/measurement knobs,
//! `Bencher::iter`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Reports median / mean / min per benchmark
//! on stdout. Statistical analysis, plotting, and baselines are out of
//! scope — timings here seed the repo's JSON baselines instead.

use std::time::{Duration, Instant};

/// Throughput annotation echoed in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Bench outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("adhoc");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total target measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &name, &mut b.samples, self.throughput);
        self
    }

    /// End the group (explicit, as in criterion).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly: warm up, then collect `sample_size`
    /// samples of batched iterations within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters == 0 {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;

        // Batch so that sample_size samples fill the measurement budget.
        let budget = self.measurement.as_secs_f64();
        let batch = ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn report(group: &str, name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!("  {:.1} MiB/s", per_sec(n) / (1 << 20) as f64),
                Throughput::Elements(n) => format!("  {:.0} elem/s", per_sec(n)),
            }
        })
        .unwrap_or_default();
    println!("{group}/{name}: median {median:.3?}  mean {mean:.3?}  min {min:.3?}{rate}");
}

/// Group benchmark functions under one runner fn, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
