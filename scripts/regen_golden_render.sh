#!/usr/bin/env bash
# Regenerate the golden render digests (tests/golden/render_digests.json)
# after an intentional rendering change. Inspect the diff, then commit
# the new goldens together with the change that caused them.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_REGEN=1 cargo test --test golden_render --quiet
git --no-pager diff -- tests/golden/render_digests.json
