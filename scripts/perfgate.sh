#!/usr/bin/env bash
# Hot-path performance gate: rerun the measured hot paths and compare
# the dimensionless metrics (speedups, auto-vs-best, sanitizer overhead,
# arena allocation delta, broker fan-out, offload overlap efficiency
# and transfer ratio, query serve fan-out) against the checked-in
# BENCH_hotpath.json, BENCH_broker.json, BENCH_offload.json, and
# BENCH_query.json. Only ratios are gated, so the baseline recorded on
# one machine still gates runs on another.
# Usage: scripts/perfgate.sh [extra perfgate args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> perf gate (baseline BENCH_hotpath.json)"
cargo run --release -p bench --features track-alloc --bin perfgate -- "$@"
