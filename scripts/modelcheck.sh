#!/usr/bin/env bash
# Model-check gate: the systematic checker's planted-bug corpus plus a
# DPOR sweep of the fuzz scenarios at a fixed, deterministic schedule
# budget. Mirrors the CI `model-check` job.
# Usage: scripts/modelcheck.sh  (from the repo root or anywhere inside it)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> checker unit suite (DPOR vs exhaustive, liveness, shrinker)"
cargo test --release -p minimpi --test dpor

echo "==> planted-bug corpus (broker/offload/steering protocols)"
SENSEI_SANITIZER=1 cargo test --release --test modelcheck_planted

echo "==> systematic explore (sanitized, fixed schedule budget)"
SENSEI_SANITIZER=1 EXPLORE_SCHEDULES="${EXPLORE_SCHEDULES:-3}" \
  MODELCHECK_SCHEDULES="${MODELCHECK_SCHEDULES:-64}" \
  EXPLORE_BUDGET_SECS="${EXPLORE_BUDGET_SECS:-60}" \
  cargo run --release --example explore_fuzz

echo "modelcheck: all green"
