#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
# Usage: scripts/tier1.sh  (from the repo root or anywhere inside it)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: all green"
