//! Stress and consistency tests: heavier rank counts, interleaved
//! collectives, repeated staging sessions, and determinism guarantees
//! that the figure regenerations rely on.

use minimpi::World;

/// Collectives stay correct under interleaving pressure on a wide
/// communicator (16 ranks, hundreds of operations).
#[test]
fn collective_storm_16_ranks() {
    World::run(16, |comm| {
        for round in 0..50u64 {
            let sum = comm.allreduce_scalar(comm.rank() as u64 + round, |a, b| a + b);
            assert_eq!(sum, (0..16).sum::<u64>() + 16 * round);
            let root = (round % 16) as usize;
            let payload = if comm.rank() == root {
                Some(vec![round; 100])
            } else {
                None
            };
            let got = comm.bcast(root, payload);
            assert_eq!(got.len(), 100);
            assert_eq!(got[0], round);
            let gathered = comm.gather(root, comm.rank() * 2);
            if comm.rank() == root {
                let g = gathered.unwrap();
                assert_eq!(g, (0..16).map(|r| r * 2).collect::<Vec<_>>());
            }
            let prefix = comm.scan(1u64, |a, b| a + b);
            assert_eq!(prefix, comm.rank() as u64 + 1);
        }
    });
}

/// Nested splits: split the world, then split the halves, and verify
/// every level communicates independently.
#[test]
fn nested_communicator_splits() {
    World::run(8, |comm| {
        let half = comm.split((comm.rank() / 4) as u32, comm.rank() as u32);
        assert_eq!(half.size(), 4);
        let quarter = half.split((half.rank() / 2) as u32, half.rank() as u32);
        assert_eq!(quarter.size(), 2);
        // Sums at each level.
        let world_sum = comm.allreduce_scalar(1u32, |a, b| a + b);
        let half_sum = half.allreduce_scalar(1u32, |a, b| a + b);
        let quarter_sum = quarter.allreduce_scalar(1u32, |a, b| a + b);
        assert_eq!((world_sum, half_sum, quarter_sum), (8, 4, 2));
        // Messages on one level don't leak to another.
        if quarter.rank() == 0 {
            quarter.send(1, 77, comm.rank());
        } else {
            let from: usize = quarter.recv(0, 77);
            assert_eq!(from + 1, comm.rank(), "partner is the world neighbor");
        }
    });
}

/// Repeated FlexPath sessions in one process: connect, stream, close,
/// reconnect (the dynamic disconnect/reconnect §4.1.4 mentions).
#[test]
fn staging_reconnect_cycles() {
    use adios::bp::{BpStep, BpVar};
    use adios::{pair, Role};
    World::run(2, |world| {
        for cycle in 0..3u64 {
            match pair(world, 1) {
                Role::Writer { mut writer, .. } => {
                    for s in 0..2u64 {
                        writer.advance(world);
                        let mut step = BpStep::new(cycle * 10 + s, 0.0);
                        step.vars.push(BpVar::new(
                            "x",
                            [1, 1, 1],
                            [0, 0, 0],
                            [1, 1, 1],
                            vec![cycle as f64],
                        ));
                        writer.write(world, &step);
                    }
                    writer.close(world);
                }
                Role::Endpoint { mut reader, .. } => {
                    let mut seen = 0;
                    while let Some(steps) = reader.begin_step(world) {
                        assert_eq!(steps[0].1.var("x").unwrap().data[0], cycle as f64);
                        reader.end_step(world, &steps);
                        seen += 1;
                    }
                    assert_eq!(seen, 2, "cycle {cycle}");
                }
            }
        }
    });
}

/// The modeled experiments are bit-for-bit deterministic: the seeded
/// noise source yields identical sequences, so regenerated figures
/// reproduce exactly run to run.
#[test]
fn figure_regeneration_is_deterministic() {
    use perfmodel::{storage, MachineSpec, SeededNoise};
    let m = MachineSpec::cori_haswell();
    let run = || {
        let mut noise = SeededNoise::new(0x5C16);
        (0..9)
            .map(|i| storage::posthoc_read(&m, 82 + i, 1e12, &mut noise))
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

/// Large payload movement: a 64 MB buffer moves through p2p, bcast and
/// the compositor without corruption.
#[test]
fn large_buffer_integrity() {
    World::run(2, |comm| {
        let big: Vec<u64> = (0..(8 << 20)).collect(); // 64 MB
        if comm.rank() == 0 {
            let checksum: u64 = big.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            comm.send(1, 9, big);
            let back: u64 = comm.recv(1, 10);
            assert_eq!(back, checksum);
        } else {
            let got: Vec<u64> = comm.recv(0, 9);
            assert_eq!(got.len(), 8 << 20);
            assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64));
            comm.send(0, 10, got.iter().fold(0u64, |a, &b| a.wrapping_add(b)));
        }
    });
}

/// Hybrid MPI+threads (the §4.2.3 extension) composes with the bridge:
/// a rayon-parallel simulation step feeding a SENSEI analysis produces
/// the same histogram as the serial path.
#[test]
fn hybrid_execution_matches_serial_through_bridge() {
    use oscillator::{
        demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation,
    };
    use sensei::analysis::histogram::HistogramAnalysis;
    use sensei::analysis::AnalysisAdaptor as _;

    let deck = format_deck(&demo_oscillators());
    let run = |hybrid: bool| {
        let d = deck.clone();
        World::run(2, move |comm| {
            let cfg = SimConfig {
                grid: [14, 14, 14],
                steps: 3,
                ..SimConfig::default()
            };
            let root = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root);
            let mut h = HistogramAnalysis::new("data", 16);
            let res = h.results_handle();
            for _ in 0..3 {
                if hybrid {
                    sim.step_hybrid(comm);
                } else {
                    sim.step(comm);
                }
                h.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            if comm.rank() == 0 {
                let out = res.lock().clone();
                out
            } else {
                None
            }
        })
        .remove(0)
    };
    let serial = run(false).expect("serial histogram");
    let hybrid = run(true).expect("hybrid histogram");
    assert_eq!(serial, hybrid);
}
