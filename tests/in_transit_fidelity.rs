//! In-transit fidelity: the histogram computed at a staging endpoint
//! must equal the in situ histogram **bitwise** — same counts, same
//! extrema, same step — on ghosted, multi-leaf data. This pins down the
//! staging data model end to end: per-leaf geometry, scalar-type (u8
//! ghost) preservation on the wire, and exact f64 payload transport.
//!
//! Both paths use the same per-rank partition (2 in situ ranks vs
//! 2 writers feeding 2 endpoints), so the collective reduction trees
//! match shape and the comparison is exact, not approximate.

#[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
use adios::staging::{adaptor_to_step, run_endpoint};
use adios::{pair, Role};
use datamodel::{DataArray, DataSet, Extent, ImageData, MultiBlock, GHOST_ARRAY_NAME};
use minimpi::World;
use science::{Leslie, LeslieAdaptor, LeslieConfig};
use sensei::analysis::histogram::{HistogramAnalysis, HistogramResult};
use sensei::{AnalysisAdaptor as _, InMemoryAdaptor};

const BINS: usize = 8;

fn leslie_config() -> LeslieConfig {
    LeslieConfig {
        grid: [16, 17, 8],
        ..LeslieConfig::default()
    }
}

/// AVF-LESLIE's ghosted vorticity field, analyzed in situ on 2 ranks
/// and in transit through 2 writers + 2 endpoints: bitwise equal.
#[test]
#[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
fn leslie_histogram_matches_in_situ_bitwise() {
    const STEPS: u64 = 3;

    // Path 1: in situ. The ghost z-planes are blanked by the analysis.
    let insitu = World::run(2, |comm| {
        let mut sim = Leslie::new(comm, leslie_config());
        let mut h = HistogramAnalysis::new("vorticity", BINS);
        let res = h.results_handle();
        for _ in 0..STEPS {
            sim.step(comm);
            h.execute(&LeslieAdaptor::new(&sim), comm);
        }
        let out = res.lock().clone();
        out
    })
    .remove(0)
    .expect("in situ histogram");

    // Path 2: in transit. The writers run the identical simulation on
    // their subgroup; every step crosses the staging transport (u8
    // ghosts and f64 vorticity serialized) before the endpoints analyze.
    let intransit = World::run(4, |world| match pair(world, 2) {
        Role::Writer { sub, mut writer } => {
            let mut sim = Leslie::new(&sub, leslie_config());
            for _ in 0..STEPS {
                sim.step(&sub);
                writer.advance(world);
                writer.write(world, &adaptor_to_step(&LeslieAdaptor::new(&sim)));
            }
            writer.close(world);
            None
        }
        Role::Endpoint { sub, mut reader } => {
            let h = HistogramAnalysis::new("vorticity", BINS);
            let res = h.results_handle();
            let (bridge, _report) = run_endpoint(world, &sub, &mut reader, vec![Box::new(h)]);
            assert_eq!(bridge.steps(), STEPS);
            assert!(bridge.failure_reports().is_empty(), "healthy run");
            let out = res.lock().clone();
            out
        }
    })
    .into_iter()
    .flatten()
    .next()
    .expect("in transit histogram");

    assert_bitwise_equal(&insitu, &intransit);
    assert_eq!(insitu.step, STEPS, "last step analyzed");
}

/// A rank carrying two mesh leaves, each with its own ghost mask whose
/// ghost points hold poison values: the ghosts must stay recognizable
/// (u8) across the wire and the per-leaf blocks must not collapse, or
/// the endpoint histogram diverges from in situ.
#[test]
#[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
fn multi_leaf_ghosted_deck_matches_in_situ_bitwise() {
    // Rank r carries leaves 2r and 2r+1; leaf L is the x-slab
    // [2L, 2L+1] of a global 8x3x3 grid. The upper x-plane of each leaf
    // is ghost, poisoned with a value that would shift the histogram
    // range if it ever leaked past the mask.
    fn deck(rank: usize, step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([8, 3, 3]);
        let mut mb = MultiBlock::new();
        for leaf in [2 * rank, 2 * rank + 1] {
            let local = Extent::new([2 * leaf as i64, 0, 0], [2 * leaf as i64 + 1, 2, 2]);
            let mut g = ImageData::new(local, global);
            let mut vals = Vec::new();
            let mut ghosts = Vec::new();
            for p in local.iter_points() {
                let ghost = p[0] == 2 * leaf as i64 + 1;
                ghosts.push(u8::from(ghost));
                vals.push(if ghost {
                    1e9
                } else {
                    (p[0] * 7 + p[1] * 3 + p[2]) as f64 + step as f64
                });
            }
            g.add_point_array(DataArray::owned("data", 1, vals));
            g.add_point_array(DataArray::owned(GHOST_ARRAY_NAME, 1, ghosts));
            mb.push(DataSet::Image(g));
        }
        InMemoryAdaptor::new(DataSet::Multi(mb), step as f64, step)
    }

    let insitu = World::run(2, |comm| {
        let mut h = HistogramAnalysis::new("data", BINS);
        let res = h.results_handle();
        for s in 0..2u64 {
            h.execute(&deck(comm.rank(), s), comm);
        }
        let out = res.lock().clone();
        out
    })
    .remove(0)
    .expect("in situ histogram");

    let intransit = World::run(4, |world| match pair(world, 2) {
        Role::Writer { mut writer, .. } => {
            for s in 0..2u64 {
                writer.advance(world);
                writer.write(world, &adaptor_to_step(&deck(world.rank(), s)));
            }
            writer.close(world);
            None
        }
        Role::Endpoint { sub, mut reader } => {
            let h = HistogramAnalysis::new("data", BINS);
            let res = h.results_handle();
            run_endpoint(world, &sub, &mut reader, vec![Box::new(h)]);
            let out = res.lock().clone();
            out
        }
    })
    .into_iter()
    .flatten()
    .next()
    .expect("in transit histogram");

    assert_bitwise_equal(&insitu, &intransit);
    // 4 leaves x (2x3x3 points - 3x3 ghost plane) survive the mask.
    assert_eq!(insitu.counts.iter().sum::<u64>(), 36);
    assert!(insitu.max < 1e9, "poison values never entered the range");
}

fn assert_bitwise_equal(a: &HistogramResult, b: &HistogramResult) {
    assert_eq!(a.counts, b.counts, "bin counts");
    assert_eq!(a.min.to_bits(), b.min.to_bits(), "min bitwise");
    assert_eq!(a.max.to_bits(), b.max.to_bits(), "max bitwise");
    assert_eq!(a.step, b.step, "step");
}
