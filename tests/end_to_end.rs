//! Cross-crate integration tests: full instrumented runs spanning the
//! miniapp, SENSEI, the infrastructures, the I/O paths, and the science
//! proxies — the paper's workflows end to end at thread scale.

use datamodel::{partition_extent, Extent};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::descriptive::DescriptiveStats;
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::{AnalysisAdaptor as _, Bridge};

fn deck() -> String {
    format_deck(&demo_oscillators())
}

/// The full §4.1 coupling: miniapp + every non-rendering analysis at
/// once through one bridge, over several steps, with timing capture.
#[test]
fn miniapp_with_all_direct_analyses() {
    let d = deck();
    World::run(8, move |comm| {
        let cfg = SimConfig {
            grid: [17, 17, 17],
            steps: 6,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root);

        let hist = HistogramAnalysis::new("data", 32);
        let hist_res = hist.results_handle();
        let ac = Autocorrelation::new("data", 5, 8);
        let ac_res = ac.results_handle();
        let stats = DescriptiveStats::new("data");
        let stats_res = stats.results_handle();

        let mut bridge = Bridge::new();
        bridge.register(Box::new(hist));
        bridge.register(Box::new(ac));
        bridge.register(Box::new(stats));

        for _ in 0..6 {
            sim.step(comm);
            assert!(bridge
                .execute(&OscillatorAdaptor::new(&sim), comm)
                .should_continue());
        }
        let report = bridge.finalize(comm);
        assert_eq!(report.steps, 6);
        // Rank 0 aggregates every rank's samples; other ranks see only
        // their own.
        let expect = if comm.rank() == 0 {
            6 * comm.size() as u64
        } else {
            6
        };
        assert_eq!(report.phase("per-step/histogram").unwrap().samples, expect);
        assert_eq!(
            report.phase("per-step/autocorrelation").unwrap().samples,
            expect
        );

        // Statistics agree between analyses: histogram range equals
        // descriptive-stats extrema.
        let s = (*stats_res.lock()).unwrap();
        if comm.rank() == 0 {
            let h = hist_res.lock().clone().unwrap();
            assert_eq!(h.min, s.min);
            assert_eq!(h.max, s.max);
            assert_eq!(h.counts.iter().sum::<u64>(), s.count);
            let peaks = ac_res.lock().clone().unwrap();
            assert_eq!(peaks.len(), 5, "one peak list per delay");
            assert!(!peaks[0].is_empty());
        }
    });
}

/// Catalyst and Libsim render the same field; both produce valid PNGs
/// on rank 0 through the common SENSEI path.
#[test]
fn both_infrastructures_render_same_run() {
    let d = deck();
    World::run(4, move |comm| {
        let cfg = SimConfig {
            grid: [17, 17, 17],
            steps: 2,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root);
        sim.step(comm);

        let mut pipe = catalyst::SlicePipeline::new("data", 2, 8);
        pipe.width = 64;
        pipe.height = 48;
        let catalyst_analysis = catalyst::CatalystSliceAnalysis::new(pipe);
        let catalyst_png = catalyst_analysis.png_handle();

        let session =
            libsim::Session::parse("image 64 64\nplot pseudocolor data axis=z index=8\n").unwrap();
        let libsim_analysis =
            libsim::LibsimAnalysis::new(session, std::path::Path::new("/nonexistent"));
        let libsim_png = libsim_analysis.png_handle();

        let mut bridge = Bridge::new();
        bridge.register(Box::new(catalyst_analysis));
        bridge.register(Box::new(libsim_analysis));
        bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        bridge.finalize(comm);

        if comm.rank() == 0 {
            let c = catalyst_png.lock().clone().expect("catalyst png");
            let l = libsim_png.lock().clone().expect("libsim png");
            assert!(render::png::decode_rgb(&c).is_ok());
            assert!(render::png::decode_rgb(&l).is_ok());
        }
    });
}

/// Write-once-use-everywhere: the same config text selects analyses
/// that then run against the miniapp adaptor unchanged.
#[test]
fn config_driven_analysis_selection() {
    let d = deck();
    World::run(2, move |comm| {
        let cfg_text = "[histogram]\narray = data\nbins = 16\n\n[descriptive-stats]\narray = data\n\n[catalyst-slice]\n";
        let cfg = sensei::config::Config::parse(cfg_text).unwrap();
        let (analyses, unknown) = match sensei::config::build_builtin_analyses(&cfg) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(unknown, vec!["catalyst-slice".to_string()]);
        let mut bridge = Bridge::new();
        for a in analyses {
            bridge.register(a);
        }
        assert_eq!(bridge.num_analyses(), 2);

        let sim_cfg = SimConfig {
            grid: [9, 9, 9],
            steps: 1,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, sim_cfg, root);
        sim.step(comm);
        bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        bridge.finalize(comm);
    });
}

/// The in situ / in transit / post hoc triple point: the histogram of
/// the same field computed three ways is identical.
#[test]
#[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
fn three_paths_one_histogram() {
    use adios::staging::{adaptor_to_step, run_endpoint};
    use adios::{pair, Role};

    let grid = 13usize;
    let make_field = move |comm: &minimpi::Comm, ranks: usize| {
        let global = Extent::whole([grid, grid, grid]);
        let local = partition_extent(&global, [ranks, 1, 1], comm.rank());
        let mut g = datamodel::ImageData::new(local, global);
        g.add_point_array(datamodel::DataArray::owned(
            "data",
            1,
            local
                .iter_points()
                .map(|p| (p[0] * p[1] + p[2]) as f64)
                .collect(),
        ));
        (local, global, g)
    };

    // Path 1: in situ on 2 ranks.
    let insitu = World::run(2, move |comm| {
        let (_, _, g) = make_field(comm, 2);
        let adaptor = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
        let mut h = HistogramAnalysis::new("data", 8);
        let res = h.results_handle();
        h.execute(&adaptor, comm);
        if comm.rank() == 0 {
            let out = res.lock().clone();
            out
        } else {
            None
        }
    })
    .remove(0)
    .expect("in situ histogram");

    // Path 2: in transit (2 writers + 1 endpoint).
    let intransit = World::run(3, move |world| match pair(world, 2) {
        Role::Writer { sub, mut writer } => {
            let (_, _, g) = make_field(&sub, 2);
            let adaptor = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
            writer.advance(world);
            writer.write(world, &adaptor_to_step(&adaptor));
            writer.close(world);
            None
        }
        Role::Endpoint { sub, mut reader } => {
            let h = HistogramAnalysis::new("data", 8);
            let res = h.results_handle();
            run_endpoint(world, &sub, &mut reader, vec![Box::new(h)]);
            let out = res.lock().clone();
            out
        }
    })
    .into_iter()
    .flatten()
    .next()
    .expect("in transit histogram");

    // Path 3: post hoc — write pieces, read back with one reader.
    let dir = std::env::temp_dir().join(format!("threepaths_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_w = dir.clone();
    World::run(2, move |comm| {
        let (local, global, g) = make_field(comm, 2);
        let arr = g.point_data.get("data").unwrap();
        let values: Vec<f64> = (0..arr.num_tuples()).map(|t| arr.get(t, 0)).collect();
        let piece = iosim::Piece {
            extent: local,
            global,
            spacing: [1.0; 3],
            arrays: vec![("data".to_string(), values)],
        };
        iosim::write_piece(&dir_w, 0, comm.rank(), &piece).unwrap();
        comm.barrier();
    });
    let dir_r = dir.clone();
    let posthoc = World::run(1, move |comm| {
        let h = HistogramAnalysis::new("data", 8);
        let res = h.results_handle();
        iosim::posthoc_analysis(comm, &dir_r, 1, 2, vec![Box::new(h)], None);
        let out = res.lock().clone();
        out.expect("post hoc histogram")
    })
    .remove(0);
    std::fs::remove_dir_all(&dir).unwrap();

    assert_eq!(insitu.counts, intransit.counts, "in situ == in transit");
    assert_eq!(insitu.counts, posthoc.counts, "in situ == post hoc");
    assert_eq!(insitu.min, posthoc.min);
    assert_eq!(insitu.max, intransit.max);
}

/// GLEAN as a fourth infrastructure: aggregate the miniapp's field and
/// verify the blobs reconstruct every rank's block.
#[test]
fn glean_aggregation_end_to_end() {
    let d = deck();
    let dir = std::env::temp_dir().join(format!("glean_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir2 = dir.clone();
    World::run(4, move |comm| {
        let cfg = SimConfig {
            grid: [9, 9, 9],
            steps: 2,
            ..SimConfig::default()
        };
        let root = if comm.rank() == 0 {
            Some(d.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root);
        let mut bridge = Bridge::new();
        bridge.register(Box::new(glean::GleanWriter::new(
            glean::Topology::new(2),
            "data",
            dir2.clone(),
        )));
        for _ in 0..2 {
            sim.step(comm);
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        bridge.finalize(comm);
    });
    let f0 = glean::read_blob_file(&glean::GleanWriter::blob_path(&dir, 0)).unwrap();
    let f2 = glean::read_blob_file(&glean::GleanWriter::blob_path(&dir, 2)).unwrap();
    assert_eq!(f0.len(), 2, "two steps aggregated");
    let ranks: Vec<usize> = f0[0]
        .1
        .iter()
        .chain(f2[0].1.iter())
        .map(|b| b.rank)
        .collect();
    assert_eq!(ranks.len(), 4, "all four ranks' blocks present");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The science proxies all drive the same bridge API.
#[test]
fn science_proxies_through_one_bridge_api() {
    World::run(2, |comm| {
        // Leslie.
        let mut leslie = science::Leslie::new(
            comm,
            science::LeslieConfig {
                grid: [12, 13, 4],
                ..science::LeslieConfig::default()
            },
        );
        leslie.step(comm);
        let mut bridge = Bridge::new();
        let stats = DescriptiveStats::new("vorticity");
        let res = stats.results_handle();
        bridge.register(Box::new(stats));
        bridge.execute(&science::LeslieAdaptor::new(&leslie), comm);
        bridge.finalize(comm);
        assert!((*res.lock()).unwrap().count > 0);

        // Nyx.
        let mut nyx = science::Nyx::new(
            comm,
            science::NyxConfig {
                grid: [8, 8, 8],
                ..science::NyxConfig::default()
            },
        );
        nyx.step(comm);
        let mut bridge = Bridge::new();
        let h = HistogramAnalysis::new("density", 8);
        let res = h.results_handle();
        bridge.register(Box::new(h));
        bridge.execute(&science::NyxAdaptor::new(&nyx), comm);
        bridge.finalize(comm);
        if comm.rank() == 0 {
            assert_eq!(
                res.lock().clone().unwrap().counts.iter().sum::<u64>(),
                8 * 8 * 8
            );
        }

        // PHASTA (stats over velocity magnitude on the unstructured mesh).
        let mut phasta = science::Phasta::new(
            comm,
            science::PhastaConfig {
                lattice: [9, 7, 7],
                ..science::PhastaConfig::default()
            },
        );
        phasta.step(comm);
        let mut bridge = Bridge::new();
        let stats = DescriptiveStats::new("velmag");
        let res = stats.results_handle();
        bridge.register(Box::new(stats));
        bridge.execute(&science::PhastaAdaptor::new(&phasta), comm);
        bridge.finalize(comm);
        let s = (*res.lock()).unwrap();
        assert!(s.count > 0);
        assert!(s.max > 0.0, "flow is moving");
    });
}
