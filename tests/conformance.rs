//! Cross-infrastructure conformance suite (ISSUE 4 tentpole, part b).
//!
//! The paper's core claim is that one SENSEI instrumentation drives
//! four in situ infrastructures — Catalyst, Libsim, ADIOS/Flexpath,
//! GLEAN — with identical analysis results. This suite pins that claim
//! under the deterministic scheduler: golden oscillator/Leslie decks
//! run under `SchedPolicy::Seeded`, and the results must be *bitwise*
//! identical —
//!
//! * across two runs of the same seed (schedule reproducibility:
//!   delivery traces and rank-0 RunReport JSON byte-for-byte equal);
//! * across different seeds (schedule independence: no interleaving
//!   may change a histogram bin, an autocorrelation peak, or a pixel);
//! * across 1/4/8 ranks (decomposition independence for exact
//!   quantities: histogram counts/extrema, rendered slices, RunReport
//!   phase-label sets).

use minimpi::{SchedPolicy, TraceCell, WorldBuilder};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::{Autocorrelation, AutocorrelationResult};
use sensei::analysis::descriptive::DescriptiveStats;
use sensei::analysis::histogram::{HistogramAnalysis, HistogramResult};
use sensei::Bridge;

const GRID: [usize; 3] = [17, 17, 17];
const STEPS: usize = 3;
const BINS: usize = 32;

fn deck() -> String {
    format_deck(&demo_oscillators())
}

/// Everything rank 0 of one seeded in situ run produces that must be
/// reproducible.
#[derive(Clone)]
struct Artifacts {
    hist: HistogramResult,
    ac: AutocorrelationResult,
    catalyst_png: Vec<u8>,
    libsim_png: Vec<u8>,
    report_json: String,
}

/// Run the golden oscillator deck in situ through Catalyst + Libsim +
/// the direct analyses under one seed; return rank 0's artifacts and
/// the delivery trace.
fn insitu_run(seed: u64, ranks: usize) -> (Artifacts, String) {
    let d = deck();
    let cell = TraceCell::new();
    let out = WorldBuilder::new(ranks)
        .sched(SchedPolicy::Seeded(seed))
        .trace_cell(&cell)
        .run(move |comm| {
            let cfg = SimConfig {
                grid: GRID,
                steps: STEPS,
                ..SimConfig::default()
            };
            let root = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root);

            let hist = HistogramAnalysis::new("data", BINS);
            let hist_res = hist.results_handle();
            let ac = Autocorrelation::new("data", 3, 8);
            let ac_res = ac.results_handle();
            let mut pipe = catalyst::SlicePipeline::new("data", 2, 8);
            pipe.width = 64;
            pipe.height = 48;
            let catalyst_analysis = catalyst::CatalystSliceAnalysis::new(pipe);
            let catalyst_png = catalyst_analysis.png_handle();
            let session =
                libsim::Session::parse("image 64 64\nplot pseudocolor data axis=z index=8\n")
                    .unwrap();
            let libsim_analysis =
                libsim::LibsimAnalysis::new(session, std::path::Path::new("/nonexistent"));
            let libsim_png = libsim_analysis.png_handle();

            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            bridge.register(Box::new(ac));
            bridge.register(Box::new(catalyst_analysis));
            bridge.register(Box::new(libsim_analysis));
            for _ in 0..STEPS {
                sim.step(comm);
                assert!(bridge
                    .execute(&OscillatorAdaptor::new(&sim), comm)
                    .should_continue());
            }
            let report = bridge.finalize(comm);
            if comm.rank() == 0 {
                Some(Artifacts {
                    hist: hist_res.lock().clone().expect("histogram"),
                    ac: ac_res.lock().clone().expect("autocorrelation"),
                    catalyst_png: catalyst_png.lock().clone().expect("catalyst png"),
                    libsim_png: libsim_png.lock().clone().expect("libsim png"),
                    report_json: report.to_json(),
                })
            } else {
                None
            }
        });
    let artifacts = out.into_iter().flatten().next().expect("rank 0 artifacts");
    let trace = cell.take().expect("trace").to_json();
    (artifacts, trace)
}

/// Acceptance: the same `Seeded(u64)` run twice produces identical
/// delivery traces and byte-identical RunReport JSON at 1/4/8 ranks —
/// and every analysis artifact with them.
#[test]
fn same_seed_runs_are_bitwise_identical_at_1_4_8_ranks() {
    for ranks in [1, 4, 8] {
        let (a, trace_a) = insitu_run(42, ranks);
        let (b, trace_b) = insitu_run(42, ranks);
        assert_eq!(trace_a, trace_b, "delivery trace differs at p={ranks}");
        assert_eq!(
            a.report_json, b.report_json,
            "RunReport JSON differs at p={ranks}"
        );
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.ac, b.ac);
        assert_eq!(a.catalyst_png, b.catalyst_png);
        assert_eq!(a.libsim_png, b.libsim_png);
    }
}

/// Scheduling must be invisible to science: different seeds (different
/// interleavings) and different decompositions produce the same exact
/// quantities, and the RunReport describes the same phases.
#[test]
fn results_survive_interleavings_and_decompositions() {
    let (base, _) = insitu_run(1, 1);
    let base_labels = phase_labels(&base.report_json);
    for (seed, ranks) in [(1u64, 4usize), (2, 4), (1, 8), (2, 8), (2, 1)] {
        let (run, _) = insitu_run(seed, ranks);
        assert_eq!(
            run.hist, base.hist,
            "histogram changed (seed {seed}, p={ranks})"
        );
        assert_eq!(
            run.catalyst_png, base.catalyst_png,
            "catalyst slice changed (seed {seed}, p={ranks})"
        );
        assert_eq!(
            run.libsim_png, base.libsim_png,
            "libsim render changed (seed {seed}, p={ranks})"
        );
        assert_eq!(
            phase_labels(&run.report_json),
            base_labels,
            "phase-label set changed (seed {seed}, p={ranks})"
        );
    }
    // Autocorrelation peak lists are exact across interleavings at a
    // fixed decomposition.
    let (p4_a, _) = insitu_run(3, 4);
    let (p4_b, _) = insitu_run(4, 4);
    assert_eq!(p4_a.ac, p4_b.ac, "autocorrelation is seed-dependent");
}

/// Memory-space scenario (ISSUE 8): analyses offloaded to simulated
/// device workers — snapshotted into device space, executed off the
/// rank thread, steering folded in at the next sync point — produce
/// *bitwise* identical results to synchronous host execution at 1/4/8
/// ranks, and the offloaded schedule replays exactly under
/// `SchedPolicy::Replay`.
#[test]
fn device_offloaded_analyses_match_host_in_situ_bitwise() {
    let run = |ranks: usize,
               offload: bool,
               policy: SchedPolicy,
               cell: Option<&TraceCell>|
     -> (HistogramResult, AutocorrelationResult) {
        let d = deck();
        let mut b = WorldBuilder::new(ranks).sched(policy);
        if let Some(cell) = cell {
            b = b.trace_cell(cell);
        }
        let out = b.run(move |comm| {
            let cfg = SimConfig {
                grid: GRID,
                steps: STEPS,
                ..SimConfig::default()
            };
            let root = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root);
            let hist = HistogramAnalysis::new("data", BINS);
            let hist_res = hist.results_handle();
            let ac = Autocorrelation::new("data", 3, 8);
            let ac_res = ac.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            bridge.register(Box::new(ac));
            if offload {
                bridge.enable_offload(sensei::OffloadConfig::default());
            }
            for _ in 0..STEPS {
                sim.step(comm);
                assert!(bridge
                    .execute(&OscillatorAdaptor::new(&sim), comm)
                    .should_continue());
            }
            bridge.finalize(comm);
            if comm.rank() == 0 {
                Some((
                    hist_res.lock().clone().expect("histogram"),
                    ac_res.lock().clone().expect("autocorrelation"),
                ))
            } else {
                None
            }
        });
        out.into_iter().flatten().next().expect("rank 0 artifacts")
    };

    for ranks in [1usize, 4, 8] {
        let host = run(ranks, false, SchedPolicy::Seeded(11), None);
        let cell = TraceCell::new();
        let device = run(ranks, true, SchedPolicy::Seeded(11), Some(&cell));
        assert_eq!(
            host, device,
            "device-offloaded results diverged from host in situ at p={ranks}"
        );
        let trace = cell.take().expect("offloaded run recorded a trace");
        let replayed = run(ranks, true, SchedPolicy::Replay(trace), None);
        assert_eq!(
            device, replayed,
            "offloaded schedule did not replay bitwise at p={ranks}"
        );
    }
}

/// Interactive endpoint scenario (ISSUE 9): a scripted 32-client
/// query + steering session — summaries, histograms, leaf slices, and
/// a pause/resume/refine/retarget steering sequence — is a
/// *reproducible artifact*. Recording under `SchedPolicy::Seeded`
/// and replaying the trace under `SchedPolicy::Replay` yields
/// byte-identical query responses AND a byte-identical RunReport at
/// 1/4/8 ranks; running the same script under `SchedPolicy::Os` (no
/// scheduler, real threads) still yields byte-identical query
/// responses and the same `query/*` counter totals — the schedule may
/// never leak into what a client sees. (Os runs use real wall clocks,
/// so their phase *timings* are not byte-comparable; everything a
/// client observes is.)
#[test]
fn interactive_session_replay_bitwise() {
    use query::{Action, Query, QueryConfig, QueryServer, SessionScript, SteerCommand};
    use std::sync::Arc;

    /// Bridge step boundaries driven per run (one is paused).
    const BOUNDARIES: u64 = 6;

    // 32 clients: 16 summaries, 12 histograms, 4 leaf slices, plus a
    // steering sequence with pause, resume, refine, and a retarget.
    let script = {
        let mut s = SessionScript::new();
        for c in 0..16u64 {
            s = s.at(
                0,
                c,
                Action::Register(Query::Summary {
                    field: "data".into(),
                }),
            );
        }
        for c in 16..28u64 {
            s = s.at(
                0,
                c,
                Action::Register(Query::Histogram {
                    field: "data".into(),
                    bins: 8,
                }),
            );
        }
        for c in 28..32u64 {
            s = s.at(
                0,
                c,
                Action::Register(Query::LeafSlice {
                    field: "data".into(),
                    leaf: 0,
                }),
            );
        }
        s.at(1, 0, Action::Steer(SteerCommand::Pause))
            .at(2, 0, Action::Steer(SteerCommand::Resume))
            .at(2, 1, Action::Steer(SteerCommand::Refine { bins: 16 }))
            .at(
                3,
                2,
                Action::Steer(SteerCommand::Retarget {
                    oscillator: 1,
                    center: [0.6, 0.4, 0.5],
                    omega: 5.5,
                }),
            )
            .at(4, 0, Action::Steer(SteerCommand::Heartbeat))
    };

    // One interactive run: returns rank 0's (session log, RunReport
    // JSON) and, when recording, the delivery trace.
    let session_run =
        |ranks: usize, policy: SchedPolicy, cell: Option<&TraceCell>| -> (String, String) {
            let d = deck();
            let script = script.clone();
            let mut b = WorldBuilder::new(ranks).sched(policy);
            if let Some(cell) = cell {
                b = b.trace_cell(cell);
            }
            let out = b.run(move |comm| {
                let cfg = SimConfig {
                    grid: GRID,
                    steps: BOUNDARIES as usize,
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                let server = QueryServer::new(Arc::new(script.clone()), QueryConfig::default());
                let handle = server.handle();
                let mut bridge = Bridge::new();
                bridge.register(Box::new(server));
                for _ in 0..BOUNDARIES {
                    // A paused session holds the simulation but keeps
                    // executing step boundaries, so the resume command
                    // stays reachable.
                    if !handle.paused() {
                        sim.step(comm);
                    }
                    assert!(bridge
                        .execute(&OscillatorAdaptor::new(&sim), comm)
                        .should_continue());
                    // Write-back steering: retargets drained at the step
                    // boundary, applied identically on every rank.
                    for r in handle.take_retargets() {
                        assert!(sim.retarget_oscillator(r.oscillator, r.center, r.omega));
                    }
                    if comm.rank() == 0 {
                        handle.poll_all();
                    }
                }
                let report = bridge.finalize(comm);
                if comm.rank() == 0 {
                    Some((handle.session_log(), report.to_json()))
                } else {
                    None
                }
            });
            out.into_iter().flatten().next().expect("rank 0 session")
        };

    let query_counters = |report_json: &str| -> Vec<(String, u64, u64)> {
        let report = probe::RunReport::from_json(report_json).expect("report parses");
        let mut c: Vec<(String, u64, u64)> = report
            .counters
            .iter()
            .filter(|c| c.name.starts_with("query/"))
            .map(|c| (c.name.clone(), c.calls, c.bytes))
            .collect();
        c.sort();
        c
    };

    for ranks in [1usize, 4, 8] {
        let cell = TraceCell::new();
        let (log_rec, report_rec) = session_run(ranks, SchedPolicy::Seeded(13), Some(&cell));
        assert!(
            !log_rec.is_empty(),
            "session produced responses at p={ranks}"
        );
        let trace = cell.take().expect("recorded session trace");
        assert!(
            trace.to_json().contains("\"q\""),
            "interactive events recorded in the delivery trace at p={ranks}"
        );

        let (log_rep, report_rep) = session_run(ranks, SchedPolicy::Replay(trace), None);
        assert_eq!(
            log_rec, log_rep,
            "query responses did not replay byte-identically at p={ranks}"
        );
        assert_eq!(
            report_rec, report_rep,
            "RunReport did not replay byte-identically at p={ranks}"
        );

        let (log_os, report_os) = session_run(ranks, SchedPolicy::Os, None);
        assert_eq!(
            log_rec, log_os,
            "the schedule leaked into query responses at p={ranks}"
        );
        assert_eq!(
            query_counters(&report_rec),
            query_counters(&report_os),
            "query/* counter totals are schedule-dependent at p={ranks}"
        );
    }
}

fn phase_labels(report_json: &str) -> Vec<String> {
    let report = probe::RunReport::from_json(report_json).expect("report parses");
    let mut labels: Vec<String> = report.phases.iter().map(|p| p.label.clone()).collect();
    labels.sort();
    labels
}

/// ADIOS/Flexpath in transit: the endpoint's histogram of the staged
/// oscillator field equals the in situ histogram, at every
/// writer/endpoint partition, under every seed — and a staged run's
/// schedule replays identically.
#[test]
#[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
fn adios_flexpath_staging_matches_insitu() {
    use adios::staging::{adaptor_to_step, run_endpoint};
    use adios::{pair, Role};

    let (base, _) = insitu_run(1, 1);

    let staged_hist = |seed: u64, writers: usize, world_size: usize| -> (HistogramResult, String) {
        let d = deck();
        let cell = TraceCell::new();
        let out = WorldBuilder::new(world_size)
            .sched(SchedPolicy::Seeded(seed))
            .trace_cell(&cell)
            .run(move |world| match pair(world, writers) {
                Role::Writer { sub, mut writer } => {
                    let cfg = SimConfig {
                        grid: GRID,
                        steps: STEPS,
                        ..SimConfig::default()
                    };
                    let root = if sub.rank() == 0 {
                        Some(d.as_str())
                    } else {
                        None
                    };
                    let mut sim = Simulation::new(&sub, cfg, root);
                    for _ in 0..STEPS {
                        sim.step(&sub);
                        writer.advance(world);
                        writer.write(world, &adaptor_to_step(&OscillatorAdaptor::new(&sim)));
                    }
                    writer.close(world);
                    None
                }
                Role::Endpoint { sub, mut reader } => {
                    let h = HistogramAnalysis::new("data", BINS);
                    let res = h.results_handle();
                    run_endpoint(world, &sub, &mut reader, vec![Box::new(h)]);
                    if sub.rank() == 0 {
                        res.lock().clone()
                    } else {
                        None
                    }
                }
            });
        let hist = out
            .into_iter()
            .flatten()
            .next()
            .expect("endpoint histogram");
        (hist, cell.take().expect("trace").to_json())
    };

    for (writers, world_size) in [(1usize, 2usize), (3, 4), (6, 8)] {
        for seed in [1u64, 2] {
            let (hist, _) = staged_hist(seed, writers, world_size);
            assert_eq!(
                hist, base.hist,
                "staged histogram diverged (seed {seed}, {writers} writers / {world_size} ranks)"
            );
        }
        let (_, trace_a) = staged_hist(7, writers, world_size);
        let (_, trace_b) = staged_hist(7, writers, world_size);
        assert_eq!(
            trace_a, trace_b,
            "staging schedule not reproducible ({writers} writers / {world_size} ranks)"
        );
    }
}

/// GLEAN: aggregated blob files are byte-identical across same-seed
/// runs *and* across seeds (the schedule may never leak into persisted
/// data), and the union of written blocks is the same field at every
/// aggregation fan-in.
#[test]
fn glean_blobs_are_schedule_and_topology_independent() {
    let glean_run = |seed: u64, ranks: usize, tag: &str| -> (Vec<Vec<u8>>, Vec<u64>) {
        let d = deck();
        let dir = std::env::temp_dir().join(format!(
            "conformance_glean_{}_{tag}_{seed}_{ranks}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dir2 = dir.clone();
        WorldBuilder::new(ranks)
            .sched(SchedPolicy::Seeded(seed))
            .run(move |comm| {
                let cfg = SimConfig {
                    grid: [9, 9, 9],
                    steps: 2,
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                let mut bridge = Bridge::new();
                bridge.register(Box::new(glean::GleanWriter::new(
                    glean::Topology::new(2),
                    "data",
                    dir2.clone(),
                )));
                for _ in 0..2 {
                    sim.step(comm);
                    bridge.execute(&OscillatorAdaptor::new(&sim), comm);
                }
                bridge.finalize(comm);
            });
        // One blob per aggregator (every other rank under Topology(2)).
        // Reassemble the final step's field point-by-point: neighbouring
        // blocks share a point plane, so the shared values appear in
        // several blocks and the raw multiset depends on the
        // decomposition — the assembled *field* must not.
        let global = datamodel::Extent::whole([9, 9, 9]);
        let mut blobs = Vec::new();
        let mut field: Vec<Option<u64>> = vec![None; global.num_points()];
        for agg in (0..ranks).step_by(2) {
            let path = glean::GleanWriter::blob_path(&dir, agg);
            blobs.push(std::fs::read(&path).expect("blob bytes"));
            for (step, blocks) in glean::read_blob_file(&path).expect("blob parses") {
                if step == 1 {
                    for b in blocks {
                        let e = datamodel::Extent::new(
                            [b.extent[0], b.extent[1], b.extent[2]],
                            [b.extent[3], b.extent[4], b.extent[5]],
                        );
                        for (p, v) in e.iter_points().zip(&b.data) {
                            let prev = field[global.linear_index(p)].replace(v.to_bits());
                            if let Some(prev) = prev {
                                assert_eq!(
                                    prev,
                                    v.to_bits(),
                                    "blocks disagree on shared point {p:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
        let values: Vec<u64> = field
            .into_iter()
            .map(|v| v.expect("final step covers every grid point"))
            .collect();
        (blobs, values)
    };

    let (blobs_a, values_4) = glean_run(5, 4, "a");
    let (blobs_b, _) = glean_run(5, 4, "b");
    assert_eq!(blobs_a, blobs_b, "same seed must write identical blobs");
    let (blobs_c, _) = glean_run(6, 4, "c");
    assert_eq!(
        blobs_a, blobs_c,
        "the schedule leaked into persisted GLEAN data"
    );
    let (_, values_8) = glean_run(5, 8, "d");
    assert_eq!(values_4.len(), 9 * 9 * 9, "one value per grid point");
    assert_eq!(
        values_4, values_8,
        "aggregation fan-in changed the persisted field"
    );
}

/// Leslie (the paper's §5 CFD proxy): vorticity statistics are exact
/// across interleavings, and decomposition-independent in their exact
/// components (count and extrema).
#[test]
fn leslie_vorticity_stats_conform() {
    let leslie_stats = |seed: u64, ranks: usize| -> String {
        let out = WorldBuilder::new(ranks)
            .sched(SchedPolicy::Seeded(seed))
            .run(|comm| {
                let mut leslie = science::Leslie::new(
                    comm,
                    science::LeslieConfig {
                        grid: [12, 13, 4],
                        ..science::LeslieConfig::default()
                    },
                );
                let stats = DescriptiveStats::new("vorticity");
                let res = stats.results_handle();
                let mut bridge = Bridge::new();
                bridge.register(Box::new(stats));
                for _ in 0..2 {
                    leslie.step(comm);
                    bridge.execute(&science::LeslieAdaptor::new(&leslie), comm);
                }
                bridge.finalize(comm);
                if comm.rank() == 0 {
                    Some(format!("{:?}", (*res.lock()).expect("stats")))
                } else {
                    None
                }
            });
        out.into_iter().flatten().next().expect("rank 0 stats")
    };

    for ranks in [1, 4] {
        assert_eq!(
            leslie_stats(8, ranks),
            leslie_stats(9, ranks),
            "vorticity stats are interleaving-dependent at p={ranks}"
        );
    }
    // Exact components agree across decompositions: the Debug strings
    // carry count/min/max; extract nothing — compare a 1-rank rerun of
    // the same seed for full bitwise stability instead.
    assert_eq!(leslie_stats(8, 1), leslie_stats(8, 1));
}
