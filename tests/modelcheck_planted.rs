//! Planted-bug corpus for the systematic model checker (ISSUE 10).
//!
//! Each test plants one concurrency or protocol bug in a real
//! infrastructure path — the broker's eviction/backpressure protocol,
//! the offload dispatch/drain protocol, the publish-window obligation,
//! steering command application — and asserts the [`minimpi::Checker`]
//! finds it within a deterministic schedule budget, minimizes the
//! failing schedule with the ddmin shrinker, and replays the shrunk
//! trace bitwise under `SchedPolicy::Replay`. The clean twins of the
//! same protocols run under the same checker with zero findings.

use std::sync::Arc;
use std::time::Duration;

use adios::{Broker, BrokerConfig, TopicKey};
use datamodel::{DataArray, DataSet, Extent, ImageData};
use minimpi::{Checker, Comm, LivenessSpec};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::{Bridge, InMemoryAdaptor};

/// A per-rank image with one zero-copy (shared) point array, built
/// inside the world so the rank's sanitizer context shadows it.
fn shared_image(n: [usize; 3]) -> DataSet {
    let whole = Extent::whole(n);
    let mut img = ImageData::new(whole, whole);
    let pts = img.num_points();
    img.point_data
        .insert(DataArray::shared("u", 1, Arc::new(vec![0.0f64; pts])));
    DataSet::Image(img)
}

/// The broker eviction/backpressure protocol with a publisher whose
/// one consumer never drains. With an effectively infinite eviction
/// deadline the second publish spins forever in the backpressure
/// loop — the planted livelock; with a zero deadline the slow
/// consumer is evicted and the protocol terminates — the clean twin.
fn broker_backpressure(_comm: &Comm, deadline: Duration) {
    let broker: Broker<u64> = Broker::new(BrokerConfig {
        queue_depth: 1,
        max_subscribers: 4,
        eviction_deadline: deadline,
    });
    let topic = TopicKey::new("planted/backpressure", 0);
    let sub = broker.subscribe(topic.clone()).expect("admitted");
    broker.publish(&topic, 1);
    // Queue is full and `sub` never drains: this publish sits in the
    // backpressure loop until the deadline (or the spin limit) trips.
    broker.publish(&topic, 2);
    drop(sub);
}

#[test]
fn broker_backpressure_livelock_is_found_minimized_and_replayed() {
    let report = Checker::new()
        .max_schedules(8)
        .liveness(LivenessSpec {
            max_decisions: 100_000,
            spin_limit: 64,
            starvation_window: 0,
        })
        .run(2, |comm| {
            if comm.rank() == 0 {
                broker_backpressure(comm, Duration::from_secs(3600));
            }
        });
    let failure = report.failure.expect("the planted livelock must be found");
    assert!(
        failure.message.contains("livelock: world rank 0 spun"),
        "spin-limit breach names the spinning rank: {}",
        failure.message
    );
    assert!(
        failure.message.contains("backpressure"),
        "the report points at the backpressure shape: {}",
        failure.message
    );
    assert!(failure.replayed_bitwise, "shrunk schedule replays bitwise");
    assert!(
        failure.prefix.is_empty(),
        "a schedule-independent livelock shrinks to the empty prefix"
    );
}

#[test]
fn broker_backpressure_with_eviction_is_clean() {
    let report = Checker::new()
        .max_schedules(8)
        .liveness(LivenessSpec {
            max_decisions: 100_000,
            spin_limit: 64,
            starvation_window: 0,
        })
        .run(2, |comm| {
            if comm.rank() == 0 {
                // Zero deadline: the stalled consumer is evicted on the
                // first backpressure poll and the publisher proceeds.
                broker_backpressure(comm, Duration::ZERO);
            }
        });
    assert!(
        report.failure.is_none(),
        "eviction drains the backpressure loop: {:?}",
        report.failure.map(|f| f.message)
    );
    assert!(!report.stats.budget_exhausted);
}

// The offload dispatch/drain protocol, modeled over point-to-point
// messages the way `Bridge::drain_offload` pins it: results must be
// collected in dispatch order.
const JOB: u32 = 31;
const RES: u32 = 40;
const ACK: u32 = 50;

#[test]
fn offload_drain_order_deadlock_is_found_minimized_and_replayed() {
    let report = Checker::new().max_schedules(16).run(2, |comm| {
        match comm.rank() {
            0 => {
                comm.send(1, JOB, 0u64);
                comm.send(1, JOB, 1u64);
                // BUG: drains results in reverse dispatch order, but
                // the worker acks each job before starting the next —
                // rank 0 waits for a result the worker will never
                // produce while the worker waits for rank 0's ack.
                let _late: u64 = comm.recv(1, RES + 1);
                comm.send(1, ACK + 1, 0u64);
                let _early: u64 = comm.recv(1, RES);
                comm.send(1, ACK, 0u64);
            }
            _ => {
                for _ in 0..2 {
                    let job: u64 = comm.recv(0, JOB);
                    comm.send(0, RES + job as u32, job);
                    let _: u64 = comm.recv(0, ACK + job as u32);
                }
            }
        }
    });
    let failure = report
        .failure
        .expect("the drain-order deadlock must be found");
    assert!(
        failure.message.contains("deterministic deadlock detected"),
        "{}",
        failure.message
    );
    assert!(failure.replayed_bitwise, "shrunk schedule replays bitwise");
    assert!(
        failure.prefix.is_empty(),
        "the deadlock is schedule-independent; ddmin reaches the empty prefix"
    );
}

#[test]
fn offload_drain_in_dispatch_order_is_clean() {
    let report = Checker::new()
        .max_schedules(64)
        .run(2, |comm| match comm.rank() {
            0 => {
                comm.send(1, JOB, 0u64);
                comm.send(1, JOB, 1u64);
                for job in 0..2u32 {
                    let _res: u64 = comm.recv(1, RES + job);
                    comm.send(1, ACK + job, 0u64);
                }
            }
            _ => {
                for _ in 0..2 {
                    let job: u64 = comm.recv(0, JOB);
                    comm.send(0, RES + job as u32, job);
                    let _: u64 = comm.recv(0, ACK + job as u32);
                }
            }
        });
    assert!(
        report.failure.is_none(),
        "dispatch-order drain terminates: {:?}",
        report.failure.map(|f| f.message)
    );
    assert!(
        !report.stats.budget_exhausted,
        "the schedule tree completes"
    );
}

#[test]
fn unclosed_publish_window_is_found_and_replayed() {
    let report = Checker::new().max_schedules(8).sanitize().run(2, |comm| {
        if comm.rank() == 0 {
            let data = shared_image([4, 4, 1]);
            // BUG: the window guard is leaked — the zero-copy view
            // stays staged past the end of the step, and nothing can
            // ever close it.
            std::mem::forget(datamodel::publish_dataset(&data, "planted"));
        }
        comm.barrier();
    });
    let failure = report.failure.expect("the leaked window must be found");
    assert!(
        failure.message.contains("view-leak"),
        "sanitizer finding promoted to a checker failure: {}",
        failure.message
    );
    assert!(failure.replayed_bitwise, "shrunk schedule replays bitwise");
}

#[test]
fn undrained_offload_pool_is_an_obligation_leak() {
    let report = Checker::new().max_schedules(8).sanitize().run(1, |_comm| {
        let mut bridge = Bridge::new();
        bridge.register(Box::new(HistogramAnalysis::new("data", 8)));
        bridge.enable_offload(sensei::OffloadConfig::default());
        // BUG: the bridge is dropped without `finalize` — the worker
        // pool obligation opened by `enable_offload` is never
        // discharged by `shutdown_offload`.
    });
    let failure = report.failure.expect("the undrained pool must be found");
    assert!(
        failure.message.contains("obligation-leak"),
        "{}",
        failure.message
    );
    assert!(
        failure.message.contains("offload-workers"),
        "the finding names the protocol: {}",
        failure.message
    );
    assert!(failure.replayed_bitwise, "shrunk schedule replays bitwise");
}

// Steering command application: the client plane starves when the
// serving rank polls the data plane forever.
const STEER: u32 = 71;
const STEER_ACK: u32 = 72;
const DATA: u32 = 73;

#[test]
fn steering_starvation_is_classified_and_replayed() {
    let report = Checker::new()
        .max_schedules(1)
        .liveness(LivenessSpec {
            max_decisions: 400,
            spin_limit: 0,
            starvation_window: 100,
        })
        .run(3, |comm| match comm.rank() {
            1 => {
                // The steering client: one command, then wait for the
                // acknowledgement that never comes.
                comm.send(0, STEER, 7u64);
                let _: u64 = comm.recv(0, STEER_ACK);
            }
            r => {
                // BUG: the serving rank (0) services rank 2's data
                // plane in an infinite loop and never applies the
                // steer command sitting in its queue.
                let peer = 2 - r;
                loop {
                    if r == 0 {
                        comm.send(peer, DATA, 0u64);
                        let _: u64 = comm.recv(peer, DATA);
                    } else {
                        let _: u64 = comm.recv(peer, DATA);
                        comm.send(peer, DATA, 0u64);
                    }
                }
            }
        });
    let failure = report.failure.expect("the starved client must be found");
    assert!(
        failure.message.contains("starvation: world rank(s) [1]"),
        "classification names the starved steering client: {}",
        failure.message
    );
    assert!(
        failure.message.contains("last progress at decision"),
        "the report carries the per-rank progress dump: {}",
        failure.message
    );
    assert!(failure.replayed_bitwise, "liveness aborts replay bitwise");
}

/// The clean pipeline — bridge steps with offloaded analyses, publish
/// windows opened and closed per step, the executor drained and shut
/// down at finalize, and a broker round with a draining consumer —
/// produces zero findings across every explored schedule.
#[test]
fn clean_pipeline_is_silent_under_systematic_exploration() {
    let report = Checker::new().max_schedules(6).sanitize().run(2, |comm| {
        let mut bridge = Bridge::new();
        bridge.register(Box::new(HistogramAnalysis::new("data", 8)));
        bridge.enable_offload(sensei::OffloadConfig::default());
        for step in 0..3u64 {
            let whole = Extent::whole([8, 1, 1]);
            let mut img = ImageData::new(whole, whole);
            let base = (comm.rank() as u64 * 100 + step) as f64;
            img.add_point_array(DataArray::owned(
                "data",
                1,
                (0..8).map(|i| base + i as f64).collect::<Vec<f64>>(),
            ));
            let adaptor = InMemoryAdaptor::new(DataSet::Image(img), step as f64, step);
            assert!(bridge.execute(&adaptor, comm).should_continue());
        }
        bridge.finalize(comm);
        if comm.rank() == 0 {
            let broker: Broker<u64> = Broker::new(BrokerConfig {
                queue_depth: 2,
                max_subscribers: 4,
                eviction_deadline: Duration::from_millis(50),
            });
            let topic = TopicKey::new("clean/round", 0);
            let sub = broker.subscribe(topic.clone()).expect("admitted");
            broker.publish(&topic, 1);
            broker.publish(&topic, 2);
            assert!(sub.try_next().is_some());
            assert!(sub.try_next().is_some());
            broker.finish_all();
        }
    });
    assert!(
        report.failure.is_none(),
        "clean pipeline must stay silent: {:?}",
        report.failure.map(|f| f.message)
    );
    assert!(!report.stats.budget_exhausted || report.stats.schedules_explored >= 6);
    assert!(report.stats.schedules_explored >= 1);
}
