//! Golden-image regression test for the distributed render pipeline:
//! a seeded oscillator run renders one pseudocolor slice and one shaded
//! isosurface, and the framebuffer digests must match the checked-in
//! goldens in `tests/golden/render_digests.json`.
//!
//! A digest mismatch means a rendering change — rasterization,
//! colormap, compositing, or the simulation field itself. When the
//! change is intentional, regenerate the goldens with
//! `scripts/regen_golden_render.sh` (equivalently
//! `GOLDEN_REGEN=1 cargo test --test golden_render`) and commit the
//! diff.

use minimpi::{SchedPolicy, WorldBuilder};
use oscillator::{demo_oscillators, osc::format_deck, SimConfig, Simulation};
use render::camera::Camera;
use render::color::Colormap;
use render::composite::Compositor;
use render::framebuffer::Framebuffer;
use render::pipeline::{pseudocolor_slice, shaded_isosurface, IsosurfaceRender, SliceRender};

const GRID: [usize; 3] = [17, 17, 17];

fn digest_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/render_digests.json")
}

/// FNV-1a 64-bit: tiny, stable, dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of everything a framebuffer holds: RGBA bytes and the exact
/// bit patterns of the depth buffer.
fn framebuffer_digest(fb: &Framebuffer) -> u64 {
    let mut bytes = Vec::with_capacity(fb.color.len() * 8);
    for px in &fb.color {
        bytes.extend_from_slice(px);
    }
    for d in &fb.depth {
        bytes.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Render the golden oscillator deck at 4 ranks under a fixed schedule
/// seed; return rank 0's (slice digest, isosurface digest).
fn render_goldens() -> (u64, u64) {
    let d = format_deck(&demo_oscillators());
    let out = WorldBuilder::new(4)
        .sched(SchedPolicy::Seeded(11))
        .run(move |comm| {
            let cfg = SimConfig {
                grid: GRID,
                steps: 2,
                ..SimConfig::default()
            };
            let root = (comm.rank() == 0).then_some(d.as_str());
            let mut sim = Simulation::new(comm, cfg, root);
            for _ in 0..2 {
                sim.step(comm);
            }
            let local = sim.local_extent();
            let global = sim.global_extent();
            let field = sim.field();

            let slice = pseudocolor_slice(
                comm,
                &local,
                &global,
                &field[..],
                &SliceRender {
                    axis: 2,
                    global_index: 8,
                    width: 96,
                    height: 72,
                    compositor: Compositor::BinarySwap,
                    cmap: Colormap::cool_warm(),
                },
            );

            // Isovalues placed inside the global data range so the
            // surfaces always exist.
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in field.iter() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let glo = comm.allreduce_scalar(lo, f64::min);
            let ghi = comm.allreduce_scalar(hi, f64::max);
            let iso = shaded_isosurface(
                comm,
                &local,
                &field[..],
                &IsosurfaceRender {
                    isovalues: vec![glo + 0.35 * (ghi - glo), glo + 0.7 * (ghi - glo)],
                    camera: Camera::look_at(
                        [8.0, 8.0, -22.0],
                        [8.0, 8.0, 8.0],
                        [0.0, 1.0, 0.0],
                        0.9,
                    ),
                    width: 96,
                    height: 96,
                    compositor: Compositor::BinarySwap,
                    cmap: Colormap::viridis(),
                    origin: [0.0; 3],
                    spacing: sim.spacing(),
                },
            );

            match (slice, iso) {
                (Some(s), Some(i)) => {
                    assert_eq!(s.covered_pixels(), 96 * 72, "slice plane fully painted");
                    assert!(i.covered_pixels() > 0, "isosurface rendered something");
                    Some((framebuffer_digest(&s), framebuffer_digest(&i)))
                }
                _ => None,
            }
        });
    out.into_iter().flatten().next().expect("rank 0 digests")
}

fn parse_digest(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\"");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("golden file has no \"{key}\" entry"));
    let rest = &json[at + pat.len()..];
    let hex: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_hexdigit())
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u64::from_str_radix(&hex, 16).expect("golden digest is hex")
}

#[test]
fn rendered_images_match_checked_in_digests() {
    let (slice, iso) = render_goldens();
    let path = digest_path();
    if std::env::var("GOLDEN_REGEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            format!("{{\n  \"slice\": \"{slice:016x}\",\n  \"isosurface\": \"{iso:016x}\"\n}}\n"),
        )
        .unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run scripts/regen_golden_render.sh to create it",
            path.display()
        )
    });
    assert_eq!(
        slice,
        parse_digest(&json, "slice"),
        "slice render changed; if intentional, run scripts/regen_golden_render.sh"
    );
    assert_eq!(
        iso,
        parse_digest(&json, "isosurface"),
        "isosurface render changed; if intentional, run scripts/regen_golden_render.sh"
    );
}

/// The golden render itself is reproducible: two seeded runs digest
/// identically, so a golden mismatch always means a code change, never
/// schedule noise.
#[test]
fn golden_render_is_deterministic() {
    assert_eq!(render_goldens(), render_goldens());
}
