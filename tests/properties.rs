//! Property-based tests (proptest) on the core data structures and
//! invariants across crates.

use proptest::prelude::*;

use datamodel::{dims_create, partition_extent, DataArray, Extent};
use render::deflate::{deflate, inflate, zlib_compress, zlib_decompress, Mode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DEFLATE round-trips arbitrary byte strings in both modes.
    #[test]
    fn deflate_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for mode in [Mode::Stored, Mode::Fixed] {
            let back = inflate(&deflate(&data, mode)).expect("inflate");
            prop_assert_eq!(&back, &data);
        }
    }

    /// zlib wrapper round-trips and validates its checksum.
    #[test]
    fn zlib_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let z = zlib_compress(&data, Mode::Fixed);
        prop_assert_eq!(zlib_decompress(&z).expect("decode"), data);
    }

    /// dims_create always factors exactly and stays sorted.
    #[test]
    fn dims_create_factors(p in 1usize..5000) {
        let d = dims_create(p);
        prop_assert_eq!(d[0] * d[1] * d[2], p);
        prop_assert!(d[0] >= d[1] && d[1] >= d[2]);
    }

    /// Partitioned extents cover every cell exactly once, for any grid
    /// and rank-count that fits.
    #[test]
    fn partition_covers_cells(
        nx in 4usize..20,
        ny in 4usize..20,
        nz in 4usize..20,
        p in 1usize..9,
    ) {
        let global = Extent::whole([nx, ny, nz]);
        let dims = dims_create(p);
        let cells = global.cell_dims();
        prop_assume!(dims[0] <= cells[0].max(1) && dims[1] <= cells[1].max(1) && dims[2] <= cells[2].max(1));
        let mut owners = vec![0u32; global.num_cells()];
        for r in 0..p {
            let e = partition_extent(&global, dims, r);
            for k in e.lo[2]..e.hi[2] {
                for j in e.lo[1]..e.hi[1] {
                    for i in e.lo[0]..e.hi[0] {
                        let idx = ((k as usize) * cells[1] + j as usize) * cells[0] + i as usize;
                        owners[idx] += 1;
                    }
                }
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1));
    }

    /// Extent linear indexing is a bijection.
    #[test]
    fn extent_linear_index_bijective(
        lo in proptest::array::uniform3(-10i64..10),
        d in proptest::array::uniform3(1i64..6),
    ) {
        let e = Extent::new(lo, [lo[0] + d[0], lo[1] + d[1], lo[2] + d[2]]);
        for (n, p) in e.iter_points().enumerate() {
            prop_assert_eq!(e.linear_index(p), n);
            prop_assert_eq!(e.point_at(n), p);
        }
    }

    /// DataArray range is min/max of the data, regardless of layout.
    #[test]
    fn data_array_range(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let expect_lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let expect_hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let owned = DataArray::owned("v", 1, values.clone());
        prop_assert_eq!(owned.range(0), Some((expect_lo, expect_hi)));
        let shared = DataArray::shared("v", 1, std::sync::Arc::new(values));
        prop_assert_eq!(shared.range(0), Some((expect_lo, expect_hi)));
    }

    /// BP-lite steps round-trip any payload.
    #[test]
    fn bp_roundtrip(
        n in 1u64..6,
        step in any::<u64>(),
        time in -1e9f64..1e9,
        attr in -1e3f64..1e3,
    ) {
        let mut s = adios::BpStep::new(step, time);
        s.set_attr("spacing_0", attr);
        let count = (n * n * n) as usize;
        s.vars.push(adios::BpVar::new(
            "data",
            [n, n, n],
            [0, 0, 0],
            [n, n, n],
            (0..count).map(|i| i as f64 * attr).collect(),
        ));
        let back = adios::BpStep::decode(&s.encode()).expect("decode");
        prop_assert_eq!(back, s);
    }

    /// The BPL2 framing round-trips arbitrary multi-leaf steps — any
    /// supported scalar type, any leaf assignment, ghost arrays riding
    /// along — and encoding is byte-stable.
    #[test]
    fn bpl2_roundtrip_any_dtype_and_leaf_count(
        step in any::<u64>(),
        time in -1e9f64..1e9,
        leaves in 1u32..5,
        specs in proptest::collection::vec(
            (0u8..5, proptest::array::uniform3(1u64..4), any::<u64>()),
            1..8,
        ),
        attrs in proptest::collection::vec(-1e3f64..1e3, 0..6),
    ) {
        use datamodel::ScalarType;
        let mut s = adios::BpStep::new(step, time);
        for (i, &v) in attrs.iter().enumerate() {
            s.set_attr(format!("attr_{i}"), v);
        }
        for (i, &(code, dims, seed)) in specs.iter().enumerate() {
            let dtype = match code {
                0 => ScalarType::F32,
                1 => ScalarType::F64,
                2 => ScalarType::I32,
                3 => ScalarType::I64,
                _ => ScalarType::U8,
            };
            let n = (dims[0] * dims[1] * dims[2]) as usize;
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            // Values drawn from the declared type's domain, so the
            // widened-to-f64 payload is exact.
            let data: Vec<f64> = (0..n)
                .map(|_| match dtype {
                    ScalarType::F32 => (next() as i32 % 1000) as f32 as f64,
                    ScalarType::F64 => f64::from_bits(next() & !(0x7ffu64 << 52)),
                    ScalarType::I32 => next() as i32 as f64,
                    ScalarType::I64 => (next() as i64 % (1i64 << 52)) as f64,
                    ScalarType::U8 => (next() as u8) as f64,
                })
                .collect();
            let leaf = i as u32 % leaves;
            s.vars.push(
                adios::BpVar::new(format!("v{i}"), dims, [0, 0, 0], dims, data)
                    .with_dtype(dtype)
                    .with_leaf(leaf),
            );
            // A ghost deck: every variable travels with u8 duplicate
            // flags on its leaf.
            let flags: Vec<f64> = (0..n).map(|_| (next() & 1) as f64).collect();
            s.vars.push(
                adios::BpVar::new(datamodel::GHOST_ARRAY_NAME, dims, [0, 0, 0], dims, flags)
                    .with_dtype(ScalarType::U8)
                    .with_leaf(leaf),
            );
        }
        let bytes = s.encode();
        prop_assert_eq!(&s.encode()[..], &bytes[..], "encoding is byte-stable");
        let back = adios::BpStep::decode(&bytes).expect("decode");
        prop_assert_eq!(back, s);
    }

    /// Staging reconstruction is lossless: an arbitrary multi-leaf
    /// ghosted deck pushed through `adaptor_to_step` and rebuilt by the
    /// endpoint adaptor keeps every leaf extent, every f64 bit pattern,
    /// and every u8 ghost flag.
    #[test]
    fn staging_reconstruction_preserves_leaves_and_ghosts(
        leaf_specs in proptest::collection::vec(
            (
                proptest::array::uniform3(1i64..4),
                proptest::array::uniform3(0i64..3),
                any::<u64>(),
            ),
            1..4,
        ),
        time in -1e3f64..1e3,
        stepno in any::<u64>(),
    ) {
        use adios::staging::{adaptor_to_step, BpAdaptor};
        use datamodel::{DataSet, ImageData, MultiBlock, ScalarType, GHOST_ARRAY_NAME};
        use sensei::DataAdaptor as _;
        let mut mb = MultiBlock::new();
        let mut expect = Vec::new();
        for &(d, lo, seed) in &leaf_specs {
            let local = Extent::new(lo, [lo[0] + d[0] - 1, lo[1] + d[1] - 1, lo[2] + d[2] - 1]);
            let global = Extent::new([0, 0, 0], local.hi);
            let mut g = ImageData::new(local, global);
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let vals: Vec<f64> = (0..local.num_points())
                .map(|_| (next() as i64 % (1i64 << 52)) as f64)
                .collect();
            let ghosts: Vec<u8> = (0..local.num_points()).map(|_| (next() & 1) as u8).collect();
            g.add_point_array(DataArray::owned("data", 1, vals.clone()));
            g.add_point_array(DataArray::owned(GHOST_ARRAY_NAME, 1, ghosts.clone()));
            mb.push(DataSet::Image(g));
            expect.push((local, vals, ghosts));
        }
        let adaptor = sensei::InMemoryAdaptor::new(DataSet::Multi(mb), time, stepno);
        let back = BpAdaptor::new(&[(0, adaptor_to_step(&adaptor))]);
        prop_assert_eq!(back.step(), stepno);
        prop_assert_eq!(back.time().to_bits(), time.to_bits());
        let mesh = back.full_mesh();
        let leaves: Vec<_> = mesh.leaves().collect();
        prop_assert_eq!(leaves.len(), expect.len());
        for (leaf, (local, vals, ghosts)) in leaves.iter().zip(&expect) {
            let DataSet::Image(g) = leaf else {
                panic!("leaf is not an image grid");
            };
            prop_assert_eq!(g.extent, *local);
            let data = g.point_data.get("data").expect("data array survives");
            prop_assert_eq!(data.scalar_type(), ScalarType::F64);
            for (t, v) in vals.iter().enumerate() {
                prop_assert_eq!(data.get(t, 0).to_bits(), v.to_bits());
            }
            let gh = g.point_data.get(GHOST_ARRAY_NAME).expect("ghosts survive");
            prop_assert_eq!(gh.scalar_type(), ScalarType::U8);
            for (t, &f) in ghosts.iter().enumerate() {
                prop_assert_eq!(g.point_data.is_ghost(t), f != 0);
            }
        }
    }

    /// PNG encode/decode round-trips arbitrary small RGB images.
    #[test]
    fn png_roundtrip(
        w in 1usize..24,
        h in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let rgb: Vec<u8> = (0..w * h * 3)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for mode in [Mode::Stored, Mode::Fixed] {
            let png = render::png::encode_rgb(w, h, &rgb, mode);
            let (dw, dh, back) = render::png::decode_rgb(&png).expect("decode");
            prop_assert_eq!((dw, dh), (w, h));
            prop_assert_eq!(&back, &rgb);
        }
    }

    /// The histogram analysis counts every non-ghost value exactly once
    /// and its range brackets the data, for arbitrary fields.
    #[test]
    fn histogram_counts_and_range(
        values in proptest::collection::vec(-1e3f64..1e3, 1..100),
        bins in 1usize..32,
    ) {
        use sensei::analysis::histogram::HistogramAnalysis;
        use sensei::analysis::AnalysisAdaptor as _;
        let n = values.len();
        let expect_lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let expect_hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let out = minimpi::World::run(1, move |comm| {
            let e = Extent::whole([n, 1, 1]);
            let mut g = datamodel::ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, values.clone()));
            let a = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
            let mut hist = HistogramAnalysis::new("data", bins);
            let res = hist.results_handle();
            hist.execute(&a, comm);
            let r = res.lock().clone();
            r.unwrap()
        }).remove(0);
        prop_assert_eq!(out.counts.iter().sum::<u64>() as usize, n);
        prop_assert_eq!(out.min, expect_lo);
        prop_assert_eq!(out.max, expect_hi);
    }

    /// The support-culled, slab-threaded oscillator kernel reproduces
    /// the naive all-pairs kernel **bitwise**, for arbitrary decks,
    /// grids, rank counts, and thread counts.
    #[test]
    fn culled_kernel_matches_naive_bitwise(
        oscs in proptest::collection::vec(
            (0usize..3, proptest::array::uniform3(-0.2f64..1.2), 0.003f64..0.4, 0.5f64..20.0, 0.0f64..0.9),
            1..10,
        ),
        grid in proptest::array::uniform3(3usize..12),
        p in 1usize..5,
        threads in 1usize..5,
    ) {
        use oscillator::{format_deck, Oscillator, OscillatorKind, SimConfig, Simulation};
        let dims = dims_create(p);
        // The decomposition must fit the cell grid.
        prop_assume!(dims[0] < grid[0] && dims[1] < grid[1] && dims[2] < grid[2]);
        let deck: Vec<Oscillator> = oscs
            .iter()
            .map(|&(k, center, radius, omega, zeta)| Oscillator {
                kind: match k {
                    0 => OscillatorKind::Periodic,
                    1 => OscillatorKind::Damped,
                    _ => OscillatorKind::Decaying,
                },
                center,
                radius,
                omega,
                zeta,
            })
            .collect();
        let text = format_deck(&deck);
        let fields = minimpi::World::run(p, move |comm| {
            let cfg = SimConfig { grid, steps: 2, ..SimConfig::default() };
            let root = if comm.rank() == 0 { Some(text.as_str()) } else { None };
            let mut naive = Simulation::new(comm, cfg.clone(), root);
            let root = if comm.rank() == 0 { Some(text.as_str()) } else { None };
            let mut culled = Simulation::new(comm, cfg, root);
            for _ in 0..2 {
                naive.step_naive(comm);
                culled.step_with_threads(comm, threads);
            }
            (naive.field().as_ref().clone(), culled.field().as_ref().clone())
        });
        for (naive, culled) in &fields {
            prop_assert_eq!(naive, culled);
        }
    }

    /// The chunk-parallel streaming histogram equals the serial one for
    /// any field, bin count, thread count, and rank count (counts are
    /// integer, min/max fold order-independently).
    #[test]
    fn histogram_parallel_matches_serial(
        values in proptest::collection::vec(-1e3f64..1e3, 3..120),
        bins in 1usize..24,
        threads in 2usize..6,
        p in 1usize..4,
    ) {
        use sensei::analysis::histogram::HistogramAnalysis;
        use sensei::analysis::AnalysisAdaptor as _;
        prop_assume!(values.len() >= p);
        let results = minimpi::World::run(p, move |comm| {
            let mine: Vec<f64> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % p == comm.rank())
                .map(|(_, &v)| v)
                .collect();
            let e = Extent::whole([mine.len(), 1, 1]);
            let mut g = datamodel::ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, mine));
            let a = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
            let mut serial = HistogramAnalysis::new("data", bins);
            let mut parallel = HistogramAnalysis::new("data", bins).with_threads(threads);
            let rs = serial.results_handle();
            let rp = parallel.results_handle();
            serial.execute(&a, comm);
            parallel.execute(&a, comm);
            let out = (rs.lock().clone(), rp.lock().clone());
            out
        });
        let (serial, parallel) = &results[0];
        prop_assert!(serial.is_some());
        prop_assert_eq!(serial, parallel);
        for (s, q) in &results[1..] {
            prop_assert!(s.is_none() && q.is_none(), "non-root ranks hold no result");
        }
    }

    /// The reduce-scatter/allgather vector allreduce agrees with the
    /// binomial-tree one under exact operators, for any size and length
    /// (including non-power-of-two ranks and lengths not divisible by p).
    #[test]
    fn rsag_allreduce_matches_tree(
        vals in proptest::collection::vec(any::<u64>(), 0..48),
        p in 1usize..10,
    ) {
        let out = minimpi::World::run(p, move |comm| {
            let mine: Vec<u64> = vals
                .iter()
                .map(|&v| v.wrapping_mul(comm.rank() as u64 + 1))
                .collect();
            let sums = (
                comm.allreduce_vec(mine.clone(), |a, b| a.wrapping_add(*b)),
                comm.allreduce_vec_rsag(mine.clone(), |a, b| a.wrapping_add(*b)),
            );
            let fine: Vec<f64> = mine.iter().map(|&v| (v % 1000) as f64 - 500.0).collect();
            let minmax = (
                comm.allreduce_vec(fine.clone(), |a, b| a.min(*b)),
                comm.allreduce_vec_rsag(fine, |a, b| a.min(*b)),
            );
            (sums, minmax)
        });
        for ((tree_sum, rsag_sum), (tree_min, rsag_min)) in &out {
            prop_assert_eq!(tree_sum, rsag_sum);
            prop_assert_eq!(tree_min, rsag_min);
        }
    }

    /// Arc broadcast delivers the same value as the by-value broadcast,
    /// from any root.
    #[test]
    fn bcast_arc_matches_bcast(
        data in proptest::collection::vec(any::<u64>(), 0..64),
        p in 1usize..9,
        root_sel in any::<u64>(),
    ) {
        let root = (root_sel % p as u64) as usize;
        let expect = data.clone();
        let out = minimpi::World::run(p, move |comm| {
            let v1 = comm.bcast(root, (comm.rank() == root).then(|| data.clone()));
            let v2 = comm.bcast_arc(
                root,
                (comm.rank() == root).then(|| std::sync::Arc::new(data.clone())),
            );
            (v1, v2)
        });
        for (plain, shared) in &out {
            prop_assert_eq!(plain, &expect);
            prop_assert_eq!(shared.as_ref(), &expect);
        }
    }

    /// Framebuffer depth compositing is commutative for any two pixel
    /// sets (the property binary swap relies on).
    #[test]
    fn compositing_commutes(
        pixels_a in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..10.0), 0..20),
        pixels_b in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..10.0), 0..20),
    ) {
        use render::color::Color;
        use render::framebuffer::Framebuffer;
        let paint = |pixels: &[(usize, usize, f32)], tint: u8| {
            let mut fb = Framebuffer::new(8, 8);
            for &(x, y, z) in pixels {
                fb.set_pixel(x, y, z, Color::rgb(tint, (z * 10.0) as u8, 0));
            }
            fb
        };
        let a = paint(&pixels_a, 1);
        let b = paint(&pixels_b, 2);
        let mut ab = a.clone();
        ab.composite_from(&b);
        let mut ba = b.clone();
        ba.composite_from(&a);
        // Ties broken by depth only when depths differ; identical depths
        // at the same pixel may keep either color, so compare depths.
        prop_assert_eq!(ab.depth, ba.depth);
    }
}
