//! Property-based tests (proptest) on the core data structures and
//! invariants across crates.

use proptest::prelude::*;

use datamodel::{dims_create, partition_extent, DataArray, Extent};
use render::deflate::{deflate, inflate, zlib_compress, zlib_decompress, Mode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DEFLATE round-trips arbitrary byte strings in both modes.
    #[test]
    fn deflate_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for mode in [Mode::Stored, Mode::Fixed] {
            let back = inflate(&deflate(&data, mode)).expect("inflate");
            prop_assert_eq!(&back, &data);
        }
    }

    /// zlib wrapper round-trips and validates its checksum.
    #[test]
    fn zlib_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let z = zlib_compress(&data, Mode::Fixed);
        prop_assert_eq!(zlib_decompress(&z).expect("decode"), data);
    }

    /// dims_create always factors exactly and stays sorted.
    #[test]
    fn dims_create_factors(p in 1usize..5000) {
        let d = dims_create(p);
        prop_assert_eq!(d[0] * d[1] * d[2], p);
        prop_assert!(d[0] >= d[1] && d[1] >= d[2]);
    }

    /// Partitioned extents cover every cell exactly once, for any grid
    /// and rank-count that fits.
    #[test]
    fn partition_covers_cells(
        nx in 4usize..20,
        ny in 4usize..20,
        nz in 4usize..20,
        p in 1usize..9,
    ) {
        let global = Extent::whole([nx, ny, nz]);
        let dims = dims_create(p);
        let cells = global.cell_dims();
        prop_assume!(dims[0] <= cells[0].max(1) && dims[1] <= cells[1].max(1) && dims[2] <= cells[2].max(1));
        let mut owners = vec![0u32; global.num_cells()];
        for r in 0..p {
            let e = partition_extent(&global, dims, r);
            for k in e.lo[2]..e.hi[2] {
                for j in e.lo[1]..e.hi[1] {
                    for i in e.lo[0]..e.hi[0] {
                        let idx = ((k as usize) * cells[1] + j as usize) * cells[0] + i as usize;
                        owners[idx] += 1;
                    }
                }
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1));
    }

    /// Extent linear indexing is a bijection.
    #[test]
    fn extent_linear_index_bijective(
        lo in proptest::array::uniform3(-10i64..10),
        d in proptest::array::uniform3(1i64..6),
    ) {
        let e = Extent::new(lo, [lo[0] + d[0], lo[1] + d[1], lo[2] + d[2]]);
        for (n, p) in e.iter_points().enumerate() {
            prop_assert_eq!(e.linear_index(p), n);
            prop_assert_eq!(e.point_at(n), p);
        }
    }

    /// DataArray range is min/max of the data, regardless of layout.
    #[test]
    fn data_array_range(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let expect_lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let expect_hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let owned = DataArray::owned("v", 1, values.clone());
        prop_assert_eq!(owned.range(0), Some((expect_lo, expect_hi)));
        let shared = DataArray::shared("v", 1, std::sync::Arc::new(values));
        prop_assert_eq!(shared.range(0), Some((expect_lo, expect_hi)));
    }

    /// BP-lite steps round-trip any payload.
    #[test]
    fn bp_roundtrip(
        n in 1u64..6,
        step in any::<u64>(),
        time in -1e9f64..1e9,
        attr in -1e3f64..1e3,
    ) {
        let mut s = adios::BpStep::new(step, time);
        s.set_attr("spacing_0", attr);
        let count = (n * n * n) as usize;
        s.vars.push(adios::BpVar::new(
            "data",
            [n, n, n],
            [0, 0, 0],
            [n, n, n],
            (0..count).map(|i| i as f64 * attr).collect(),
        ));
        let back = adios::BpStep::decode(&s.encode()).expect("decode");
        prop_assert_eq!(back, s);
    }

    /// PNG encode/decode round-trips arbitrary small RGB images.
    #[test]
    fn png_roundtrip(
        w in 1usize..24,
        h in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let rgb: Vec<u8> = (0..w * h * 3)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for mode in [Mode::Stored, Mode::Fixed] {
            let png = render::png::encode_rgb(w, h, &rgb, mode);
            let (dw, dh, back) = render::png::decode_rgb(&png).expect("decode");
            prop_assert_eq!((dw, dh), (w, h));
            prop_assert_eq!(&back, &rgb);
        }
    }

    /// The histogram analysis counts every non-ghost value exactly once
    /// and its range brackets the data, for arbitrary fields.
    #[test]
    fn histogram_counts_and_range(
        values in proptest::collection::vec(-1e3f64..1e3, 1..100),
        bins in 1usize..32,
    ) {
        use sensei::analysis::histogram::HistogramAnalysis;
        use sensei::analysis::AnalysisAdaptor as _;
        let n = values.len();
        let expect_lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let expect_hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let out = minimpi::World::run(1, move |comm| {
            let e = Extent::whole([n, 1, 1]);
            let mut g = datamodel::ImageData::new(e, e);
            g.add_point_array(DataArray::owned("data", 1, values.clone()));
            let a = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
            let mut hist = HistogramAnalysis::new("data", bins);
            let res = hist.results_handle();
            hist.execute(&a, comm);
            let r = res.lock().clone();
            r.unwrap()
        }).remove(0);
        prop_assert_eq!(out.counts.iter().sum::<u64>() as usize, n);
        prop_assert_eq!(out.min, expect_lo);
        prop_assert_eq!(out.max, expect_hi);
    }

    /// Framebuffer depth compositing is commutative for any two pixel
    /// sets (the property binary swap relies on).
    #[test]
    fn compositing_commutes(
        pixels_a in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..10.0), 0..20),
        pixels_b in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..10.0), 0..20),
    ) {
        use render::color::Color;
        use render::framebuffer::Framebuffer;
        let paint = |pixels: &[(usize, usize, f32)], tint: u8| {
            let mut fb = Framebuffer::new(8, 8);
            for &(x, y, z) in pixels {
                fb.set_pixel(x, y, z, Color::rgb(tint, (z * 10.0) as u8, 0));
            }
            fb
        };
        let a = paint(&pixels_a, 1);
        let b = paint(&pixels_b, 2);
        let mut ab = a.clone();
        ab.composite_from(&b);
        let mut ba = b.clone();
        ba.composite_from(&a);
        // Ties broken by depth only when depths differ; identical depths
        // at the same pixel may keep either color, so compare depths.
        prop_assert_eq!(ab.depth, ba.depth);
    }
}
