//! Planted-bug suite for the happens-before sanitizer.
//!
//! Each test plants one of the hazards the sanitizer exists to catch —
//! mutating a leaf array while it is staged to an endpoint, writing a
//! ghost point, dropping an in-flight message — and asserts the
//! sanitizer reports it with the involved ranks, vector-clock
//! evidence, and a replayable seed. A final test replays a finding's
//! recorded schedule with `SchedPolicy::Replay` and gets the same
//! finding again, and the conformance-style clean pipeline runs
//! sanitizer-enabled with zero findings.

use std::sync::Arc;

use datamodel::{DataArray, DataSet, Extent, ImageData, GHOST_ARRAY_NAME};
use minimpi::{FaultHandle, SchedPolicy, TraceCell, WorldBuilder};
use sanitizer::{FindingKind, Mode, Session};

const SEED: u64 = 42;

/// A per-rank image with one zero-copy (shared) point array. Must be
/// built inside the world so the rank's sanitizer context is active
/// and the array picks up a shadow.
fn shared_image(n: [usize; 3]) -> DataSet {
    let whole = Extent::whole(n);
    let mut img = ImageData::new(whole, whole);
    let pts = img.num_points();
    img.point_data
        .insert(DataArray::shared("u", 1, Arc::new(vec![0.0f64; pts])));
    DataSet::Image(img)
}

/// Planted bug 1: a rank mutates a leaf array while a zero-copy view
/// of it is staged to an endpoint (the publish window is still open).
#[test]
fn mutate_mid_publish_is_reported_with_clocks_and_seed() {
    let session = Session::new(2, Mode::Collect);
    let s2 = Arc::clone(&session);
    WorldBuilder::new(2)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .run(|comm| {
            let mut data = shared_image([4, 4, 1]);
            let guard = datamodel::publish_dataset(&data, "catalyst");
            assert_eq!(guard.len(), 1, "the shared array is shadowed");
            // BUG: the simulation advances the field while the
            // endpoint still holds the staged view.
            if comm.rank() == 0 {
                if let DataSet::Image(g) = &mut data {
                    let arr = g.point_data.get_mut("u").unwrap();
                    arr.set(0, 0, 1.0);
                }
            }
            drop(guard);
        });
    let findings = session.findings();
    let hit = findings
        .iter()
        .find(|f| f.kind == FindingKind::UseAfterPublish)
        .expect("use-after-publish reported");
    assert_eq!(hit.slots.0, 0, "the writer is rank 0");
    assert_eq!(hit.slots.1, Some(0), "rank 0 also opened the window");
    assert!(
        hit.subject.contains("u@catalyst"),
        "subject: {}",
        hit.subject
    );
    assert!(
        hit.clocks.0.is_some() && hit.clocks.1.is_some(),
        "both clocks attached as evidence"
    );
    assert_eq!(hit.seed, Some(SEED), "finding carries the replay seed");
    let rendered = hit.to_string();
    assert!(
        rendered.contains("SchedPolicy::Seeded(42)"),
        "rendered finding names the replay seed: {rendered}"
    );
}

/// Planted bug 2: a rank writes a point its decomposition marks as a
/// ghost copy (`vtkGhostType` non-zero).
#[test]
fn ghost_write_is_reported_with_tuple_evidence() {
    let session = Session::new(1, Mode::Collect);
    let s2 = Arc::clone(&session);
    WorldBuilder::new(1)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .run(|_comm| {
            let whole = Extent::whole([4, 1, 1]);
            let mut img = ImageData::new(whole, whole);
            let pts = img.num_points();
            img.point_data
                .insert(DataArray::shared("u", 1, Arc::new(vec![0.0f64; pts])));
            // Mark the last point as a ghost copy of a neighbor's.
            let mut flags = vec![0u8; pts];
            flags[pts - 1] = 1;
            img.point_data
                .insert(DataArray::owned(GHOST_ARRAY_NAME, 1, flags));
            // BUG: writing the ghost point — the owning rank's value
            // is authoritative, this write diverges silently.
            let arr = img.point_data.get_mut("u").unwrap();
            arr.set(pts - 1, 0, 9.0);
        });
    let findings = session.findings();
    let hit = findings
        .iter()
        .find(|f| f.kind == FindingKind::GhostWrite)
        .expect("ghost write reported");
    assert_eq!(hit.slots.0, 0);
    assert_eq!(hit.subject, "u");
    assert!(hit.detail.contains("tuple 3"), "detail: {}", hit.detail);
    assert_eq!(hit.seed, Some(SEED));
    // Non-ghost writes in the same run are clean: only the planted
    // tuple fired.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.kind == FindingKind::GhostWrite)
            .count(),
        1
    );
}

/// Planted bug 3: the transport drops an in-flight message (fault
/// injection) and nobody ever receives it. At world teardown the
/// vector-clock ledger still holds the un-received send.
#[test]
fn dropped_in_flight_message_leaks_at_teardown() {
    let session = Session::new(2, Mode::Collect);
    let s2 = Arc::clone(&session);
    let faults = FaultHandle::new();
    faults.drop_link(0, 1);
    WorldBuilder::new(2)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .fault_handle(faults.clone())
        .run(|comm| {
            // BUG: fire-and-forget notification on a lossy link; the
            // receiver never posts a matching recv, so the loss goes
            // unnoticed by the application.
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64; 8]);
            }
        });
    assert_eq!(faults.dropped(), 1, "the link dropped the message");
    let findings = session.findings();
    let hit = findings
        .iter()
        .find(|f| f.kind == FindingKind::MessageLeak)
        .expect("message leak reported");
    assert_eq!(hit.slots.0, 0, "sender rank");
    assert_eq!(hit.slots.1, Some(1), "intended receiver rank");
    assert!(hit.subject.contains("user:7"), "subject: {}", hit.subject);
    assert!(hit.clocks.0.is_some(), "send clock attached");
    assert_eq!(hit.seed, Some(SEED));
}

/// Planted bug: code running in a device execution space reads a
/// host-resident array through a legacy accessor — the missing
/// explicit transfer a real machine would need. The sanitizer reports
/// it as a wrong-space access naming both spaces.
#[test]
fn wrong_space_access_is_reported_as_a_missing_transfer() {
    let session = Session::new(1, Mode::Collect);
    let s2 = Arc::clone(&session);
    WorldBuilder::new(1)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .run(|_comm| {
            let data = shared_image([4, 1, 1]);
            // BUG: the "device" analysis reads the simulation's
            // host-resident field in place instead of snapshotting it
            // into device space first.
            let _device = datamodel::enter_space(datamodel::MemorySpace::DeviceSim(0));
            if let DataSet::Image(img) = &data {
                let arr = img.point_data.get("u").unwrap();
                let _v = arr.get(0, 0);
            }
        });
    let findings = session.findings();
    let hit = findings
        .iter()
        .find(|f| f.kind == FindingKind::WrongSpaceAccess)
        .expect("wrong-space access reported");
    assert_eq!(hit.subject, "u");
    assert!(
        hit.detail.contains("host") && hit.detail.contains("device"),
        "detail names both spaces: {}",
        hit.detail
    );
    assert!(
        hit.detail.contains("move_to/snapshot_in"),
        "detail points at the explicit-transfer API: {}",
        hit.detail
    );
    // The explicit transfer makes the identical read clean: snapshot
    // into device space first, read the snapshot, zero findings.
    let clean = Session::new(1, Mode::Collect);
    let c2 = Arc::clone(&clean);
    WorldBuilder::new(1)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(c2)
        .run(|_comm| {
            let data = shared_image([4, 1, 1]);
            let staged = data.snapshot_in(datamodel::MemorySpace::DeviceSim(0));
            let _device = datamodel::enter_space(datamodel::MemorySpace::DeviceSim(0));
            if let DataSet::Image(img) = &staged {
                let arr = img.point_data.get("u").unwrap();
                let _v = arr.get(0, 0);
            }
        });
    assert!(
        clean.findings().is_empty(),
        "snapshotted device read must be clean, got: {:#?}",
        clean
            .findings()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );
}

/// An endpoint that never closes its staged view: `Bridge::finalize`'s
/// leak check (via `Session::finish_world`) reports the open window.
#[test]
fn unreturned_view_leaks_at_teardown() {
    let session = Session::new(1, Mode::Collect);
    let s2 = Arc::clone(&session);
    WorldBuilder::new(1)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .run(|_comm| {
            let data = shared_image([4, 1, 1]);
            let guard = datamodel::publish_dataset(&data, "adios");
            // BUG: the guard never drops before the world ends.
            std::mem::forget(guard);
        });
    let findings = session.findings();
    let hit = findings
        .iter()
        .find(|f| f.kind == FindingKind::ViewLeak)
        .expect("view leak reported");
    assert!(hit.subject.contains("u@adios"), "subject: {}", hit.subject);
}

/// The mutate-mid-publish schedule replays: feeding the recorded trace
/// back through `SchedPolicy::Replay` reproduces the identical finding.
#[test]
fn replaying_the_recorded_schedule_reproduces_the_finding() {
    let run = |policy: SchedPolicy, cell: Option<&TraceCell>| {
        let session = Session::new(2, Mode::Collect);
        let s2 = Arc::clone(&session);
        let mut b = WorldBuilder::new(2).sched(policy).sanitizer(s2);
        if let Some(cell) = cell {
            b = b.trace_cell(cell);
        }
        b.run(|comm| {
            let mut data = shared_image([4, 4, 1]);
            let _guard = datamodel::publish_dataset(&data, "libsim");
            if comm.rank() == 1 {
                if let DataSet::Image(g) = &mut data {
                    g.point_data.get_mut("u").unwrap().set(2, 0, 3.0);
                }
            }
        });
        session.findings()
    };

    let cell = TraceCell::new();
    let first = run(SchedPolicy::Seeded(SEED), Some(&cell));
    let trace = cell.take().expect("seeded run recorded a trace");
    let replayed = run(SchedPolicy::Replay(trace), None);

    let pick = |fs: &[sanitizer::Finding]| {
        fs.iter()
            .find(|f| f.kind == FindingKind::UseAfterPublish)
            .map(|f| (f.slots, f.subject.clone(), f.seed))
            .expect("use-after-publish present")
    };
    assert_eq!(
        pick(&first),
        pick(&replayed),
        "replay reproduces the finding"
    );
}

/// Clean-pipeline conformance: a full bridge + analysis + endpoint run
/// under the sanitizer produces zero findings (the suite's "no false
/// positives" anchor; CI re-runs the whole conformance suite with
/// `SENSEI_SANITIZER=1` at 1/4/8 ranks on top of this).
#[test]
fn clean_pipeline_is_sanitizer_silent() {
    use sensei::{Bridge, InMemoryAdaptor};
    let session = Session::new(4, Mode::Collect);
    let s2 = Arc::clone(&session);
    WorldBuilder::new(4)
        .sched(SchedPolicy::Seeded(SEED))
        .sanitizer(s2)
        .run(|comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(
                sensei::analysis::descriptive::DescriptiveStats::new("u"),
            ));
            for step in 0..3u64 {
                // Fresh data each step, mutated only while unpublished.
                let mut data = shared_image([4, 4, 1]);
                if let DataSet::Image(g) = &mut data {
                    let arr = g.point_data.get_mut("u").unwrap();
                    for t in 0..arr.num_tuples() {
                        arr.set(t, 0, (t as f64) + step as f64);
                    }
                }
                let adaptor = InMemoryAdaptor::new(data, step as f64, step);
                bridge.execute(&adaptor, comm);
            }
            bridge.finalize(comm);
        });
    let findings = session.findings();
    assert!(
        findings.is_empty(),
        "clean pipeline must be silent, got: {:#?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}
