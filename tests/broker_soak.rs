//! Staging-broker soak (ISSUE 7 tentpole acceptance).
//!
//! One oscillator producer ships steps over FlexPath to an endpoint
//! that tees every step onto the sharded staging broker, where **1000+
//! simulated analysis clients** subscribe to the `data#0` topic with
//! mid-run connect/disconnect churn and a batch of deliberately
//! stalled consumers. The pins:
//!
//! * live subscribers lose **zero** steps — every client's consumed
//!   sequence numbers are contiguous from its admission point;
//! * every stalled consumer is evicted (bounded queues + eviction
//!   deadline, never an unbounded stall) and surfaces by label in
//!   [`sensei::Bridge::failure_reports`];
//! * the probe gauges prove the queue bound was never exceeded;
//! * the whole run is deterministic: recording under
//!   `SchedPolicy::Seeded` and replaying the trace under
//!   `SchedPolicy::Replay` produces byte-identical RunReport JSON.
//!
//! The interactive endpoint (ISSUE 9) soaks alongside: **256 query
//! clients** connect/disconnect mid-run on the same bridge, a batch of
//! them never polls, and each slow query client must be evicted via
//! an [`adios::EvictionRecord`] — surfacing through the same typed
//! failure path — without ever stalling the publisher, while the
//! per-topic fairness gauges stay bounded.

use std::sync::Arc;
use std::time::Duration;

use adios::staging::{run_endpoint_with_broker, AdiosWriterAnalysis};
use adios::{pair, BpVar, Broker, BrokerConfig, Role, StagingBroker, Subscription, TopicKey};
use minimpi::{Comm, SchedPolicy, TraceCell, WorldBuilder};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use parking_lot::Mutex;
use sensei::{AnalysisAdaptor, DataAdaptor, Steering};

const GRID: [usize; 3] = [9, 9, 9];
const STEPS: usize = 8;
/// Subscribed before the run starts.
const INITIAL_CLIENTS: usize = 600;
/// Connect per round (mid-run churn): 600 + 8×64 = 1112 total clients.
const JOIN_PER_ROUND: usize = 64;
/// Deliberately disconnected per round (mid-run churn).
const DROP_PER_ROUND: usize = 24;
/// Clients that never drain — the broker must evict each one.
const STALLED: usize = 16;
const QUEUE_DEPTH: usize = 2;
/// Interactive query clients joined before the run starts.
const QUERY_INITIAL: usize = 32;
/// Query clients joining per round: 32 + 8x28 = 256 total.
const QUERY_JOIN_PER_ROUND: usize = 28;
/// Query clients deliberately leaving per round.
const QUERY_DROP_PER_ROUND: usize = 8;
/// Query clients that never poll — each must be evicted.
const QUERY_STALLED: usize = 8;

/// One simulated analysis client.
struct Client {
    label: String,
    sub: Subscription<BpVar>,
    /// Sequence numbers drained, in drain order.
    seen: Vec<u64>,
    /// Never drains; must be evicted.
    stalled: bool,
    /// Deliberately disconnected mid-run.
    dropped: bool,
}

/// One simulated interactive query client (subscription state lives in
/// the query server; this tracks identity and churn intent).
struct QueryClient {
    id: u64,
    label: String,
    /// Never polls; must be evicted.
    stalled: bool,
    /// Deliberately left mid-run.
    dropped: bool,
}

struct SoakState {
    clients: Vec<Client>,
    broker: StagingBroker,
    query: query::QueryHandle,
    query_clients: Vec<QueryClient>,
    rng: u64,
}

/// Deterministic churn source (xorshift64*): no wall-clock or OS
/// entropy anywhere, so record and replay pick identical victims.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// The churn driver rides in the endpoint bridge as a SENSEI analysis:
/// once per round (after the broker tee published the step) it
/// connects new clients, drains the live ones, and disconnects a
/// deterministic subset.
struct ChurnAnalysis {
    state: Arc<Mutex<SoakState>>,
}

impl AnalysisAdaptor for ChurnAnalysis {
    fn name(&self) -> &str {
        "soak-churn"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, _comm: &Comm) -> Steering {
        let mut guard = self.state.lock();
        let st = &mut *guard;
        let step = data.step();
        let topic = TopicKey::new("data", 0);
        // Mid-run connects: these clients join after this round's
        // publish, so their admission seq is `step + 1`.
        let broker = st.broker.clone();
        for i in 0..JOIN_PER_ROUND {
            let label = format!("join-s{step}-{i:02}");
            let sub = broker
                .subscribe_labeled(topic.clone(), label.as_str())
                .expect("soak client admitted");
            st.clients.push(Client {
                label,
                sub,
                seen: Vec::new(),
                stalled: false,
                dropped: false,
            });
        }
        // Drain every live client (stalled ones deliberately never
        // drain; dropped ones already hung up).
        for c in st.clients.iter_mut() {
            if c.stalled || c.dropped {
                continue;
            }
            while let Some(msg) = c.sub.try_next() {
                c.seen.push(msg.seq);
            }
        }
        // Mid-run disconnects of a deterministic random subset.
        let n = st.clients.len();
        let mut dropped = 0;
        let mut attempts = 0;
        while dropped < DROP_PER_ROUND && attempts < 10_000 {
            attempts += 1;
            let pick = (xorshift(&mut st.rng) as usize) % n;
            let c = &mut st.clients[pick];
            if c.stalled || c.dropped {
                continue;
            }
            c.sub.disconnect();
            c.dropped = true;
            dropped += 1;
        }
        // Interactive-client churn on the same bridge: joins, polls,
        // and leaves against the query server's handle.
        for i in 0..QUERY_JOIN_PER_ROUND {
            let id = 10_000 + st.query_clients.len() as u64;
            let label = format!("query-join-s{step}-{i:02}");
            st.query
                .join(
                    id,
                    query::Query::Summary {
                        field: "data".into(),
                    },
                    label.as_str(),
                )
                .expect("query client admitted");
            st.query_clients.push(QueryClient {
                id,
                label,
                stalled: false,
                dropped: false,
            });
        }
        for c in st.query_clients.iter() {
            if !c.stalled && !c.dropped {
                st.query.poll(c.id);
            }
        }
        let qn = st.query_clients.len();
        let mut q_dropped = 0;
        let mut attempts = 0;
        while q_dropped < QUERY_DROP_PER_ROUND && attempts < 10_000 {
            attempts += 1;
            let pick = (xorshift(&mut st.rng) as usize) % qn;
            let c = &mut st.query_clients[pick];
            if c.stalled || c.dropped {
                continue;
            }
            c.dropped = true;
            q_dropped += 1;
            let id = c.id;
            st.query.leave(id);
        }
        Steering::Continue
    }
}

/// Run the full soak under `policy`; returns the endpoint's RunReport
/// JSON (the replay-determinism subject). All structural assertions
/// run inside, on the endpoint rank.
fn soak_run(policy: SchedPolicy, cell: Option<&TraceCell>) -> String {
    let deck = format_deck(&demo_oscillators());
    let mut builder = WorldBuilder::new(2).sched(policy);
    if let Some(cell) = cell {
        builder = builder.trace_cell(cell);
    }
    let out =
        builder.run(move |world| match pair(world, 1) {
            Role::Writer { sub, writer } => {
                let cfg = SimConfig {
                    grid: GRID,
                    steps: STEPS,
                    ..SimConfig::default()
                };
                let mut sim = Simulation::new(&sub, cfg, Some(deck.as_str()));
                let mut ship = AdiosWriterAnalysis::new(writer);
                for _ in 0..STEPS {
                    sim.step(&sub);
                    // The transport addresses endpoint ranks globally.
                    ship.execute(&OscillatorAdaptor::new(&sim), world);
                }
                ship.finalize(world);
                None
            }
            Role::Endpoint { sub, mut reader } => {
                sub.attach_probe(probe::enabled());
                let broker = StagingBroker::new(BrokerConfig {
                    queue_depth: QUEUE_DEPTH,
                    max_subscribers: 4096,
                    // Virtual-clock budget: each deadline poll advances the
                    // endpoint thread's clock by 0.1 µs, so 20 µs bounds the
                    // stall loop at ~200 polls before eviction.
                    eviction_deadline: Duration::from_micros(20),
                });
                let topic = TopicKey::new("data", 0);
                // The interactive endpoint rides the same bridge: an empty
                // script (all churn is dynamic via the handle), bounded
                // response queues, and the same virtual-clock eviction
                // budget as the staging broker.
                let server = query::QueryServer::new(
                    Arc::new(query::SessionScript::new()),
                    query::QueryConfig {
                        queue_depth: QUEUE_DEPTH,
                        max_clients: 4096,
                        eviction_deadline: Duration::from_micros(20),
                        ..query::QueryConfig::default()
                    },
                );
                let qhandle = server.handle();
                let state = Arc::new(Mutex::new(SoakState {
                    clients: Vec::new(),
                    broker: broker.clone(),
                    query: qhandle.clone(),
                    query_clients: Vec::new(),
                    rng: 0x9E37_79B9_7F4A_7C15,
                }));
                {
                    let mut st = state.lock();
                    for i in 0..QUERY_INITIAL {
                        let stalled = i < QUERY_STALLED;
                        let id = 10_000 + i as u64;
                        let label = if stalled {
                            format!("query-stall-{i:02}")
                        } else {
                            format!("query-init-{i:02}")
                        };
                        st.query
                            .join(
                                id,
                                query::Query::Summary {
                                    field: "data".into(),
                                },
                                label.as_str(),
                            )
                            .expect("initial query client admitted");
                        st.query_clients.push(QueryClient {
                            id,
                            label,
                            stalled,
                            dropped: false,
                        });
                    }
                    for i in 0..INITIAL_CLIENTS {
                        let stalled = i < STALLED;
                        let label = if stalled {
                            format!("stall-{i:02}")
                        } else {
                            format!("init-{i:03}")
                        };
                        let sub = broker
                            .subscribe_labeled(topic.clone(), label.as_str())
                            .expect("initial client admitted");
                        st.clients.push(Client {
                            label,
                            sub,
                            seen: Vec::new(),
                            stalled,
                            dropped: false,
                        });
                    }
                }
                let churn = ChurnAnalysis {
                    state: Arc::clone(&state),
                };
                let (bridge, report) = run_endpoint_with_broker(
                    world,
                    &sub,
                    &mut reader,
                    vec![Box::new(server), Box::new(churn)],
                    &broker,
                );
                assert_eq!(bridge.steps(), STEPS as u64);
                assert_eq!(broker.published(&topic), STEPS as u64);

                let st = state.lock();
                assert!(
                    st.clients.len() >= 1000,
                    "soak needs 1k+ clients, got {}",
                    st.clients.len()
                );
                let mut evicted = 0;
                for c in &st.clients {
                    let stats = c.sub.stats();
                    if c.stalled {
                        assert!(c.sub.is_evicted(), "stalled client {} not evicted", c.label);
                        assert!(c.seen.is_empty());
                        evicted += 1;
                        continue;
                    }
                    // Zero lost steps: consumed seqs are contiguous from the
                    // admission point; clients alive at the end saw every
                    // step through the last one published.
                    let end = if c.dropped {
                        stats.joined_seq + c.seen.len() as u64
                    } else {
                        STEPS as u64
                    };
                    let want: Vec<u64> = (stats.joined_seq..end).collect();
                    assert_eq!(c.seen, want, "client {} lost/reordered steps", c.label);
                    if !c.dropped {
                        assert!(c.sub.is_eos(), "live client {} missed EOS", c.label);
                    }
                }
                assert_eq!(evicted, STALLED);

                // Interactive-client pins: all 256 query clients churned
                // through, every never-polling one was evicted via an
                // EvictionRecord, and the per-topic fairness gauge of the
                // surviving clients stays at its bound (one bounded queue
                // per client, drained whole).
                let qc = &st.query_clients;
                assert_eq!(qc.len(), QUERY_INITIAL + STEPS * QUERY_JOIN_PER_ROUND);
                assert_eq!(qc.len(), 256, "soak covers 256 query clients");
                let qevicted = qhandle.evictions();
                assert_eq!(
                    qevicted.len(),
                    QUERY_STALLED,
                    "each slow query client evicted exactly once: {qevicted:?}"
                );
                for c in qc.iter().filter(|c| c.stalled) {
                    assert!(
                        qevicted.iter().any(|r| r.label == c.label),
                        "missing eviction record for {}",
                        c.label
                    );
                }
                assert_eq!(
                    qhandle.fairness(),
                    Some(1.0),
                    "query fan-out fairness must stay at its bound"
                );

                // Every evicted consumer — staging subscriber or query
                // client — surfaces by label in the bridge's failure
                // reports, and nothing else does (the writer closed
                // cleanly).
                let failures = bridge.failure_reports();
                assert_eq!(
                    failures.len(),
                    STALLED + QUERY_STALLED,
                    "one eviction report per stalled consumer: {failures:?}"
                );
                let eviction_labels: Vec<String> = (0..STALLED)
                    .map(|i| format!("stall-{i:02}"))
                    .chain((0..QUERY_STALLED).map(|i| format!("query-stall-{i:02}")))
                    .collect();
                for label in &eviction_labels {
                    assert!(
                        failures.iter().any(|f| {
                            f.kind() == "eviction"
                                && matches!(f, sensei::FailureReport::Eviction { consumer, .. }
                                if consumer == label)
                        }),
                        "missing eviction report for {label}: {failures:?}"
                    );
                }

                // Queue bound held: the dispatcher's high-water gauge never
                // exceeded the configured depth, and the eviction counter
                // matches the stalled population.
                let gauge = report
                    .gauges
                    .iter()
                    .find(|g| g.name == "broker/data#0/queue_peak")
                    .expect("queue-peak gauge in the endpoint report");
                assert!(
                    gauge.max <= QUEUE_DEPTH as u64,
                    "queue bound violated: {} > {QUEUE_DEPTH}",
                    gauge.max
                );
                // Staging and query evictions share the counter surface.
                let ev = report
                    .counter("broker/evictions")
                    .expect("eviction counter in the endpoint report");
                assert_eq!(ev.calls, (STALLED + QUERY_STALLED) as u64);
                // Query response queues honored the same bound.
                for g in report.gauges.iter().filter(|g| {
                    g.name.starts_with("broker/query/") && g.name.ends_with("queue_peak")
                }) {
                    assert!(
                        g.max <= QUEUE_DEPTH as u64,
                        "query queue bound violated by {}: {} > {QUEUE_DEPTH}",
                        g.name,
                        g.max
                    );
                }

                Some(report.to_json())
            }
        });
    out.into_iter().flatten().next().expect("endpoint report")
}

/// The soak itself, plus the determinism pin: replaying the recorded
/// schedule reproduces the endpoint RunReport byte-for-byte — same
/// evictions, same failure strings, same (virtual-clock) timings.
#[test]
fn soak_1k_subscribers_with_churn_is_replay_deterministic() {
    let cell = TraceCell::new();
    let recorded = soak_run(SchedPolicy::Seeded(0x50AC_B20C), Some(&cell));
    let trace = cell.take().expect("seeded run recorded a trace");
    let replayed = soak_run(SchedPolicy::Replay(trace), None);
    // CI uploads both reports as artifacts; equality is the pin.
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/broker_soak_recorded.json", &recorded);
    let _ = std::fs::write("results/broker_soak_replayed.json", &replayed);
    assert_eq!(
        recorded, replayed,
        "endpoint RunReport must be byte-identical under replay"
    );
}

/// Backpressure without eviction (wall clock): a slow-but-draining
/// consumer throttles the publisher through the bounded queue and is
/// never evicted; the queue gauge proves the bound held.
#[test]
fn backpressure_blocks_publisher_without_evicting_draining_consumer() {
    let broker: Broker<u64> = Broker::new(BrokerConfig {
        queue_depth: QUEUE_DEPTH,
        max_subscribers: 4,
        eviction_deadline: Duration::from_secs(10),
    });
    let probe = probe::enabled();
    broker.attach_probe(probe.clone());
    let topic = TopicKey::new("field", 0);
    let sub = broker
        .subscribe_labeled(topic.clone(), "slow-but-alive")
        .expect("admitted");
    let consumer = std::thread::spawn(move || {
        let mut sum = 0u64;
        let mut n = 0u64;
        loop {
            match sub.recv_deadline(Duration::from_secs(5)) {
                Ok(Some(msg)) => {
                    sum += *msg.payload;
                    n += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(None) => break,
                Err(()) => panic!("consumer starved behind a live publisher"),
            }
        }
        (sum, n)
    });
    let mut evicted = 0;
    for v in 0..50u64 {
        evicted += broker.publish(&topic, v).evicted;
    }
    broker.finish(&topic);
    let (sum, n) = consumer.join().expect("consumer thread");
    assert_eq!(evicted, 0, "a draining consumer is never evicted");
    assert_eq!(n, 50, "every published message was consumed");
    assert_eq!(sum, (0..50).sum::<u64>());
    assert!(broker.take_evictions().is_empty());
    let snap = probe.snapshot();
    let peak = snap
        .gauge("broker/field#0/queue_peak")
        .expect("queue gauge recorded");
    assert!(peak <= QUEUE_DEPTH as u64, "queue bound violated: {peak}");
}
