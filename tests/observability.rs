//! The observability layer end to end: aggregation determinism across
//! rank counts, bitwise non-perturbation of analysis results by the
//! probes, and JSON round-tripping of a real bridge run's report.

use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::{Autocorrelation, AutocorrelationResult};
use sensei::analysis::histogram::{HistogramAnalysis, HistogramResult};
use sensei::{Bridge, Probe, RunReport};

const STEPS: usize = 4;
const GRID: usize = 9;

/// One probed run: oscillator + histogram + autocorrelation on `ranks`
/// thread-backed ranks, returning rank 0's aggregated report.
fn probed_run(ranks: usize) -> RunReport {
    let deck = format_deck(&demo_oscillators());
    World::run(ranks, move |comm| {
        let cfg = SimConfig {
            grid: [GRID, GRID, GRID],
            steps: STEPS,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root_deck);
        let mut bridge = Bridge::with_probe(Probe::enabled());
        comm.attach_probe(bridge.probe().clone());
        bridge.register(Box::new(HistogramAnalysis::new("data", 16)));
        bridge.register(Box::new(Autocorrelation::new("data", 3, 4)));
        for _ in 0..STEPS {
            sim.step(comm);
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        bridge.finalize(comm)
    })
    .remove(0)
}

/// The *shape* of the report — which phases exist, which counters exist
/// — is a property of the code paths, not of the rank count. Counter
/// names are recorded at collective entry (before any small-world fast
/// path), so even 1 rank reports the same instrument set as 8.
#[test]
fn aggregation_is_deterministic_across_rank_counts() {
    let reports: Vec<RunReport> = [1usize, 4, 8].iter().map(|&r| probed_run(r)).collect();

    let labels: Vec<Vec<String>> = reports
        .iter()
        .map(|r| r.phases.iter().map(|p| p.label.clone()).collect())
        .collect();
    assert_eq!(labels[0], labels[1], "1 vs 4 ranks: same span labels");
    assert_eq!(labels[1], labels[2], "4 vs 8 ranks: same span labels");

    let counters: Vec<Vec<String>> = reports
        .iter()
        .map(|r| r.counters.iter().map(|c| c.name.clone()).collect())
        .collect();
    assert_eq!(counters[0], counters[1], "1 vs 4 ranks: same counters");
    assert_eq!(counters[1], counters[2], "4 vs 8 ranks: same counters");

    for (report, &ranks) in reports.iter().zip(&[1usize, 4, 8]) {
        assert_eq!(report.ranks, ranks);
        assert_eq!(report.steps, STEPS as u64);
        assert_eq!(report.memory.len(), ranks, "one memory row per rank");
        let hist = report.phase("per-step/histogram").expect("histogram phase");
        assert_eq!(hist.samples, (STEPS * ranks) as u64);
        assert!(hist.min_s <= hist.mean_s && hist.mean_s <= hist.max_s);
    }
}

/// Run the same sim + analyses with the probe enabled and disabled; the
/// histogram and autocorrelation outputs must match bitwise — the
/// observability layer observes, it never perturbs.
#[test]
fn probes_do_not_perturb_results_bitwise() {
    fn run(probed: bool) -> (HistogramResult, AutocorrelationResult) {
        let deck = format_deck(&demo_oscillators());
        World::run(4, move |comm| {
            let cfg = SimConfig {
                grid: [GRID, GRID, GRID],
                steps: STEPS,
                ..SimConfig::default()
            };
            let root_deck = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            let hist = HistogramAnalysis::new("data", 16);
            let hist_res = hist.results_handle();
            let ac = Autocorrelation::new("data", 3, 4);
            let ac_res = ac.results_handle();
            let mut bridge = if probed {
                let b = Bridge::with_probe(Probe::enabled());
                comm.attach_probe(b.probe().clone());
                b
            } else {
                Bridge::new()
            };
            bridge.register(Box::new(hist));
            bridge.register(Box::new(ac));
            for _ in 0..STEPS {
                sim.step(comm);
                bridge.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            bridge.finalize(comm);
            if comm.rank() == 0 {
                Some((
                    hist_res.lock().clone().expect("histogram"),
                    ac_res.lock().clone().expect("autocorrelation"),
                ))
            } else {
                None
            }
        })
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 results")
    }

    let (h_off, ac_off) = run(false);
    let (h_on, ac_on) = run(true);

    assert_eq!(h_off.counts, h_on.counts, "histogram bins bitwise");
    assert_eq!(h_off.min.to_bits(), h_on.min.to_bits(), "min bitwise");
    assert_eq!(h_off.max.to_bits(), h_on.max.to_bits(), "max bitwise");
    assert_eq!(ac_off.len(), ac_on.len(), "one peak list per delay");
    for (a, b) in ac_off.iter().zip(&ac_on) {
        for (pa, pb) in a.iter().zip(b) {
            assert_eq!(pa.cell, pb.cell, "peak cell");
            assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "peak value bitwise");
        }
    }
}

/// A report from a real instrumented run survives the serde-free JSON
/// writer and parser unchanged.
#[test]
fn run_report_round_trips_through_json() {
    let report = probed_run(4);
    let json = report.to_json();
    let back = RunReport::from_json(&json).expect("parse run report");
    assert_eq!(report, back, "report == parse(to_json(report))");
    // And the round trip is a fixed point.
    assert_eq!(json, back.to_json());
}
