//! Steering-channel fault injection (ISSUE 9 satellite).
//!
//! The write-back steering channel must never hold the simulation
//! hostage: when the steering client dies mid-run — modeled here by
//! severing its link on the fault switchboard — the bridge degrades to
//! run-to-completion with a `dead-steering` [`sensei::FailureReport`]
//! entry in the final RunReport, instead of blocking at the step
//! boundary waiting for a command that will never arrive.

use std::sync::Arc;

use minimpi::{FaultHandle, SchedPolicy, WorldBuilder};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use query::{Action, Query, QueryConfig, QueryServer, SessionScript, SteerCommand, SteeringWatch};
use sensei::Bridge;

const GRID: [usize; 3] = [9, 9, 9];
const STEPS: usize = 5;
/// The steering client's pseudo-slot on the fault switchboard: outside
/// the 2-rank world, so severing it never touches rank-to-rank links.
const CLIENT_SLOT: usize = 2;
/// Step boundary after which the client's link is severed.
const SEVER_AFTER: u64 = 1;

#[test]
fn dead_steering_client_degrades_to_run_to_completion() {
    let deck = format_deck(&demo_oscillators());
    let faults = FaultHandle::new();
    let faults2 = faults.clone();
    // The client heartbeats through the boundaries before the cut; the
    // generous grace window proves death is attributed to the severed
    // link, not to scripted silence.
    let script = SessionScript::new()
        .at(
            0,
            7,
            Action::Register(Query::Summary {
                field: "data".into(),
            }),
        )
        .at(0, 7, Action::Steer(SteerCommand::Heartbeat))
        .at(1, 7, Action::Steer(SteerCommand::Heartbeat));
    let out = WorldBuilder::new(2)
        .sched(SchedPolicy::Seeded(21))
        .fault_handle(faults.clone())
        .run(move |comm| {
            let cfg = SimConfig {
                grid: GRID,
                steps: STEPS,
                ..SimConfig::default()
            };
            let root = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root);
            // Only the serving rank watches the steering channel.
            let watch = (comm.rank() == 0).then(|| SteeringWatch {
                client: 7,
                peer_slot: CLIENT_SLOT,
                home_slot: 0,
                grace_steps: 100,
                faults: Some(faults2.clone()),
            });
            let server = QueryServer::new(
                Arc::new(script.clone()),
                QueryConfig {
                    steering_watch: watch,
                    ..QueryConfig::default()
                },
            );
            let handle = server.handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(server));
            for step in 0..STEPS as u64 {
                sim.step(comm);
                // The dead client must not block the boundary: every
                // execute returns promptly with a Continue verdict.
                assert!(bridge
                    .execute(&OscillatorAdaptor::new(&sim), comm)
                    .should_continue());
                if comm.rank() == 0 {
                    handle.poll_all();
                    if step == SEVER_AFTER {
                        faults2.drop_link(CLIENT_SLOT, 0);
                    }
                }
            }
            let report = bridge.finalize(comm);
            if comm.rank() == 0 {
                Some((report, handle.responses_published()))
            } else {
                None
            }
        });
    let (report, responses) = out.into_iter().flatten().next().expect("rank 0 report");

    // Run-to-completion: every step boundary executed and the query
    // fan-out kept serving after the steering client died.
    assert_eq!(report.steps, STEPS as u64);
    assert_eq!(responses, STEPS as u64, "one summary per step, all steps");

    // The death is forensic, not fatal: exactly one dead-steering
    // failure entry, recorded by the serving rank, naming the client.
    let dead: Vec<_> = report
        .failures
        .iter()
        .filter(|f| f.kind == "dead-steering")
        .collect();
    assert_eq!(dead.len(), 1, "{:?}", report.failures);
    assert_eq!(dead[0].rank, 0);
    assert!(
        dead[0].detail.contains("steering client 7")
            && dead[0].detail.contains("running to completion"),
        "detail: {}",
        dead[0].detail
    );
}
