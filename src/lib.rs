//! # sensei-repro — umbrella crate for the SC16 SENSEI reproduction
//!
//! Re-exports every workspace crate so examples and downstream users
//! can depend on a single package. See the README for the map and
//! DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
//!
//! ```
//! use sensei_repro::minimpi::World;
//!
//! let ranks = World::run(2, |comm| comm.rank());
//! assert_eq!(ranks, vec![0, 1]);
//! ```

pub use adios;
pub use catalyst;
pub use datamodel;
pub use glean;
pub use iosim;
pub use libsim;
pub use minimpi;
pub use oscillator;
pub use perfmodel;
pub use render;
pub use science;
pub use sensei;
