//! The performance regression gate over `BENCH_hotpath.json`.
//!
//! CI reruns the hot-path suite and compares the fresh numbers against
//! the checked-in baseline. Absolute seconds do not transfer between
//! machines, so the gate compares the **dimensionless** metrics — the
//! speedups of each optimized path over its in-tree baseline, the
//! adaptive collective's distance from the better underlying algorithm,
//! and the sanitizer overhead percentage — which only regress when the
//! code gets slower relative to itself. A fresh speedup more than the
//! tolerance below the recorded one fails the gate; so does any heap
//! growth on the warm BPL2 arena path while the tracking allocator is
//! installed.

use crate::hotpath::HotpathReport;

/// Default allowed relative regression (15%).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// The gated subset of the hot-path report: every entry is a ratio or a
/// percentage, portable across machines of different absolute speed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Naive step loop over culled+threaded.
    pub step_speedup: f64,
    /// Reference histogram kernel over the blocked kernel.
    pub histogram_speedup: f64,
    /// Tree allreduce over the adaptive path at the headline point.
    pub allreduce_speedup: f64,
    /// Worst-case `best/auto` across the (ranks × size) matrix.
    pub auto_vs_best_min: f64,
    /// Allocating BPL2 encode over the warm arena path.
    pub bp_encode_speedup: f64,
    /// Heap growth across the warm arena encode loop, bytes.
    pub bp_arena_alloc_delta: f64,
    /// Whether the tracking allocator was installed for the run (a zero
    /// delta is vacuous without it).
    pub bp_alloc_tracked: bool,
    /// Sanitizer-on time over sanitizer-off, as a percentage.
    pub sanitizer_overhead_pct: f64,
}

impl Metrics {
    /// Extract the gated metrics from a freshly measured report.
    pub fn from_report(r: &HotpathReport) -> Metrics {
        Metrics {
            step_speedup: r.step.speedup(),
            histogram_speedup: r.histogram.speedup(),
            allreduce_speedup: r.allreduce.speedup(),
            auto_vs_best_min: r.auto_vs_best_min(),
            bp_encode_speedup: r.bp_encode.speedup(),
            bp_arena_alloc_delta: r.bp_arena_alloc_delta as f64,
            bp_alloc_tracked: r.bp_alloc_tracked,
            sanitizer_overhead_pct: (r.sanitizer.optimized_s / r.sanitizer.baseline_s - 1.0)
                * 100.0,
        }
    }

    /// Extract the gated metrics from a `BENCH_hotpath.json` document
    /// (the exact format [`HotpathReport::to_json`] writes; this is not
    /// a general JSON parser).
    pub fn from_json(doc: &str) -> Result<Metrics, String> {
        let sect = |name: &str, key: &str| -> Result<f64, String> {
            section(doc, name)
                .and_then(|body| field(body, key))
                .ok_or_else(|| format!("baseline is missing \"{name}\".\"{key}\""))
        };
        Ok(Metrics {
            step_speedup: sect("step", "speedup")?,
            histogram_speedup: sect("histogram", "speedup")?,
            allreduce_speedup: sect("allreduce", "speedup")?,
            auto_vs_best_min: top_field(doc, "auto_vs_best_min")
                .ok_or("baseline is missing \"auto_vs_best_min\"")?,
            bp_encode_speedup: sect("bp_encode", "speedup")?,
            bp_arena_alloc_delta: sect("bp_encode", "arena_alloc_delta_bytes")?,
            bp_alloc_tracked: section(doc, "bp_encode")
                .is_some_and(|b| b.contains("\"alloc_tracked\": true")),
            sanitizer_overhead_pct: sect("sanitizer", "overhead_pct")?,
        })
    }
}

/// The gated subset of the broker fan-out report (`BENCH_broker.json`):
/// a copy-vs-share speedup, a fairness ratio, and two invariants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrokerMetrics {
    /// Per-consumer deep-copy fan-out over the Arc-shared broker path.
    pub fanout_speedup: f64,
    /// min/max messages delivered across subscribers (1.0 = fair).
    pub fairness: f64,
    /// A stalled consumer was evicted within its deadline.
    pub eviction_works: bool,
    /// The probed queue high-water stayed within the configured depth.
    pub queue_bounded: bool,
}

impl BrokerMetrics {
    /// Extract the gated metrics from a freshly measured broker report.
    pub fn from_report(r: &crate::brokerbench::BrokerReport) -> BrokerMetrics {
        BrokerMetrics {
            fanout_speedup: r.fanout_speedup(),
            fairness: r.fairness,
            eviction_works: r.eviction_works,
            queue_bounded: r.queue_bounded,
        }
    }

    /// Extract the gated metrics from a `BENCH_broker.json` document
    /// (the exact format `BrokerReport::to_json` writes).
    pub fn from_json(doc: &str) -> Result<BrokerMetrics, String> {
        let sect = |name: &str, key: &str| -> Result<f64, String> {
            section(doc, name)
                .and_then(|body| field(body, key))
                .ok_or_else(|| format!("broker baseline is missing \"{name}\".\"{key}\""))
        };
        let flag = |name: &str, key: &str| -> bool {
            section(doc, name).is_some_and(|b| b.contains(&format!("\"{key}\": true")))
        };
        Ok(BrokerMetrics {
            fanout_speedup: sect("fanout", "speedup")?,
            fairness: sect("fairness", "min_over_max_delivered")?,
            eviction_works: flag("robustness", "eviction_works"),
            queue_bounded: flag("robustness", "queue_bounded"),
        })
    }
}

/// The gated subset of the offload report (`BENCH_offload.json`): the
/// measured overlap efficiency, the H2D transfer-bytes ratio, and the
/// bitwise-results invariant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffloadMetrics {
    /// Worker-busy seconds hidden behind the simulation over total
    /// busy seconds (0 = no overlap, 1 = analyses fully hidden).
    pub efficiency: f64,
    /// H2D bytes over the ideal one-snapshot-per-step transfer.
    pub transfer_ratio: f64,
    /// Offloaded artifacts equal the synchronous host run's.
    pub bitwise_identical: bool,
}

impl OffloadMetrics {
    /// Extract the gated metrics from a freshly measured offload report.
    pub fn from_report(r: &crate::offloadbench::OffloadReport) -> OffloadMetrics {
        OffloadMetrics {
            efficiency: r.efficiency,
            transfer_ratio: r.transfer_ratio(),
            bitwise_identical: r.bitwise_identical,
        }
    }

    /// Extract the gated metrics from a `BENCH_offload.json` document
    /// (the exact format `OffloadReport::to_json` writes).
    pub fn from_json(doc: &str) -> Result<OffloadMetrics, String> {
        let sect = |name: &str, key: &str| -> Result<f64, String> {
            section(doc, name)
                .and_then(|body| field(body, key))
                .ok_or_else(|| format!("offload baseline is missing \"{name}\".\"{key}\""))
        };
        Ok(OffloadMetrics {
            efficiency: sect("overlap", "efficiency")?,
            transfer_ratio: sect("transfer", "bytes_ratio")?,
            bitwise_identical: section(doc, "results")
                .is_some_and(|b| b.contains("\"bitwise_identical\": true")),
        })
    }
}

/// Gate the offload metrics: efficiency must stay positive and may
/// drop at most `tolerance` (absolute) below the baseline; the
/// transfer ratio may grow at most `tolerance` (relative) above the
/// baseline — a jump means a second copy crept into the snapshot
/// path; bitwise identity must hold outright.
pub fn gate_offload(
    baseline: &OffloadMetrics,
    fresh: &OffloadMetrics,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    let floor = (baseline.efficiency - tolerance).max(0.0);
    report.checked.push(format!(
        "offload overlap efficiency: baseline {:.3}, fresh {:.3}, floor {floor:.3}",
        baseline.efficiency, fresh.efficiency
    ));
    if fresh.efficiency <= 0.0 {
        report
            .failures
            .push("offload hides no simulation time: overlap efficiency is 0".into());
    } else if fresh.efficiency < floor {
        report.failures.push(format!(
            "offload overlap efficiency regressed: {:.3} < {floor:.3} (baseline {:.3})",
            fresh.efficiency, baseline.efficiency
        ));
    }
    let ceil = baseline.transfer_ratio * (1.0 + tolerance);
    report.checked.push(format!(
        "offload transfer ratio: baseline {:.3}, fresh {:.3}, ceiling {ceil:.3}",
        baseline.transfer_ratio, fresh.transfer_ratio
    ));
    if fresh.transfer_ratio > ceil {
        report.failures.push(format!(
            "offload transfer bytes grew: ratio {:.3} > {ceil:.3} — an extra cross-space \
             copy entered the snapshot path",
            fresh.transfer_ratio
        ));
    }
    report.checked.push(format!(
        "offload results bitwise identical: {}",
        fresh.bitwise_identical
    ));
    if !fresh.bitwise_identical {
        report
            .failures
            .push("offloaded analysis results diverged from the synchronous host run".into());
    }
    report
}

/// Gate the broker metrics: the fan-out speedup may drop at most
/// `tolerance` below the baseline, fairness may not fall below the
/// baseline minus the tolerance, and the two robustness invariants must
/// hold outright (they are correctness facts, not timings).
pub fn gate_broker(baseline: &BrokerMetrics, fresh: &BrokerMetrics, tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let floor = baseline.fanout_speedup * (1.0 - tolerance);
    report.checked.push(format!(
        "broker fanout speedup: baseline {:.2}, fresh {:.2}, floor {floor:.2}",
        baseline.fanout_speedup, fresh.fanout_speedup
    ));
    if fresh.fanout_speedup < floor {
        report.failures.push(format!(
            "broker fanout speedup regressed: {:.2} < {floor:.2} (baseline {:.2}, tolerance {:.0}%)",
            fresh.fanout_speedup,
            baseline.fanout_speedup,
            tolerance * 100.0
        ));
    }
    let fair_floor = (baseline.fairness - tolerance).max(0.0);
    report.checked.push(format!(
        "broker fairness: baseline {:.3}, fresh {:.3}, floor {fair_floor:.3}",
        baseline.fairness, fresh.fairness
    ));
    if fresh.fairness < fair_floor {
        report.failures.push(format!(
            "broker fairness regressed: {:.3} < {fair_floor:.3}",
            fresh.fairness
        ));
    }
    report.checked.push(format!(
        "broker robustness: eviction_works {}, queue_bounded {}",
        fresh.eviction_works, fresh.queue_bounded
    ));
    if !fresh.eviction_works {
        report
            .failures
            .push("broker eviction no longer fires for a stalled consumer".into());
    }
    if !fresh.queue_bounded {
        report
            .failures
            .push("broker queue high-water exceeded the configured depth".into());
    }
    report
}

/// The gated subset of the interactive-query report
/// (`BENCH_query.json`): an evaluate-once-vs-per-client speedup, a
/// fairness ratio, and two invariants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryMetrics {
    /// Re-evaluate-per-client fan-out over the evaluate-once broker
    /// path.
    pub serve_speedup: f64,
    /// min/max responses delivered across clients (1.0 = fair).
    pub fairness: f64,
    /// A non-polling client was evicted within its deadline.
    pub eviction_works: bool,
    /// The probed queue high-water stayed within the configured depth.
    pub queue_bounded: bool,
}

impl QueryMetrics {
    /// Extract the gated metrics from a freshly measured query report.
    pub fn from_report(r: &crate::querybench::QueryReport) -> QueryMetrics {
        QueryMetrics {
            serve_speedup: r.serve_speedup(),
            fairness: r.fairness,
            eviction_works: r.eviction_works,
            queue_bounded: r.queue_bounded,
        }
    }

    /// Extract the gated metrics from a `BENCH_query.json` document
    /// (the exact format `QueryReport::to_json` writes).
    pub fn from_json(doc: &str) -> Result<QueryMetrics, String> {
        let sect = |name: &str, key: &str| -> Result<f64, String> {
            section(doc, name)
                .and_then(|body| field(body, key))
                .ok_or_else(|| format!("query baseline is missing \"{name}\".\"{key}\""))
        };
        let flag = |name: &str, key: &str| -> bool {
            section(doc, name).is_some_and(|b| b.contains(&format!("\"{key}\": true")))
        };
        Ok(QueryMetrics {
            serve_speedup: sect("serve", "speedup")?,
            fairness: sect("fairness", "min_over_max_delivered")?,
            eviction_works: flag("robustness", "eviction_works"),
            queue_bounded: flag("robustness", "queue_bounded"),
        })
    }
}

/// Gate the query metrics: the serve speedup may drop at most
/// `tolerance` below the baseline, fairness may not fall below the
/// baseline minus the tolerance, and the two robustness invariants
/// must hold outright (they are correctness facts, not timings).
pub fn gate_query(baseline: &QueryMetrics, fresh: &QueryMetrics, tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let floor = baseline.serve_speedup * (1.0 - tolerance);
    report.checked.push(format!(
        "query serve speedup: baseline {:.2}, fresh {:.2}, floor {floor:.2}",
        baseline.serve_speedup, fresh.serve_speedup
    ));
    if fresh.serve_speedup < floor {
        report.failures.push(format!(
            "query serve speedup regressed: {:.2} < {floor:.2} (baseline {:.2}, tolerance {:.0}%)",
            fresh.serve_speedup,
            baseline.serve_speedup,
            tolerance * 100.0
        ));
    }
    let fair_floor = (baseline.fairness - tolerance).max(0.0);
    report.checked.push(format!(
        "query fairness: baseline {:.3}, fresh {:.3}, floor {fair_floor:.3}",
        baseline.fairness, fresh.fairness
    ));
    if fresh.fairness < fair_floor {
        report.failures.push(format!(
            "query fairness regressed: {:.3} < {fair_floor:.3}",
            fresh.fairness
        ));
    }
    report.checked.push(format!(
        "query robustness: eviction_works {}, queue_bounded {}",
        fresh.eviction_works, fresh.queue_bounded
    ));
    if !fresh.eviction_works {
        report
            .failures
            .push("query eviction no longer fires for a client that stops polling".into());
    }
    if !fresh.queue_bounded {
        report
            .failures
            .push("query response queue high-water exceeded the configured depth".into());
    }
    report
}

/// The body of a flat (single-line, brace-free) JSON section.
fn section<'a>(doc: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":");
    let start = doc.find(&key)? + key.len();
    let rest = &doc[start..];
    let open = rest.find('{')?;
    let close = rest[open..].find('}')? + open;
    Some(&rest[open + 1..close])
}

/// A numeric field inside a section body.
fn field(body: &str, key: &str) -> Option<f64> {
    let k = format!("\"{key}\":");
    let start = body.find(&k)? + k.len();
    parse_number(&body[start..])
}

/// A top-level numeric field (whose key appears nowhere inside earlier
/// sections).
fn top_field(doc: &str, key: &str) -> Option<f64> {
    field(doc, key)
}

fn parse_number(rest: &str) -> Option<f64> {
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The outcome of one gate evaluation.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Human-readable description of every metric that regressed.
    pub failures: Vec<String>,
    /// One line per metric checked (for the CI log).
    pub checked: Vec<String>,
}

impl GateReport {
    /// Did every metric pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare fresh metrics against the baseline with a relative
/// `tolerance` (0.15 = a fresh speedup may be at most 15% below the
/// recorded one). Returns every regression found, not just the first.
pub fn gate(baseline: &Metrics, fresh: &Metrics, tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let mut ratio = |name: &str, base: f64, now: f64| {
        let floor = base * (1.0 - tolerance);
        report.checked.push(format!(
            "{name}: baseline {base:.2}, fresh {now:.2}, floor {floor:.2}"
        ));
        if now < floor {
            report.failures.push(format!(
                "{name} regressed: {now:.2} < {floor:.2} (baseline {base:.2}, tolerance {:.0}%)",
                tolerance * 100.0
            ));
        }
    };
    ratio("step speedup", baseline.step_speedup, fresh.step_speedup);
    ratio(
        "histogram speedup",
        baseline.histogram_speedup,
        fresh.histogram_speedup,
    );
    ratio(
        "allreduce auto speedup",
        baseline.allreduce_speedup,
        fresh.allreduce_speedup,
    );
    ratio(
        "allreduce auto-vs-best (worst point)",
        baseline.auto_vs_best_min,
        fresh.auto_vs_best_min,
    );
    ratio(
        "bp encode arena speedup",
        baseline.bp_encode_speedup,
        fresh.bp_encode_speedup,
    );

    // Sanitizer overhead is additive, not a speedup: allow the baseline
    // overhead (clamped at 0 — a negative record was the old
    // methodology bug) plus the tolerance in percentage points.
    let ceil = baseline.sanitizer_overhead_pct.max(0.0) + tolerance * 100.0;
    report.checked.push(format!(
        "sanitizer overhead: baseline {:.2}%, fresh {:.2}%, ceiling {ceil:.2}%",
        baseline.sanitizer_overhead_pct, fresh.sanitizer_overhead_pct
    ));
    if fresh.sanitizer_overhead_pct > ceil {
        report.failures.push(format!(
            "sanitizer overhead regressed: {:.2}% > {ceil:.2}%",
            fresh.sanitizer_overhead_pct
        ));
    }

    // The arena path's zero-allocation contract (only enforceable when
    // the tracking allocator is installed).
    report.checked.push(format!(
        "bp arena alloc delta: {} bytes (tracked: {})",
        fresh.bp_arena_alloc_delta, fresh.bp_alloc_tracked
    ));
    if fresh.bp_alloc_tracked && fresh.bp_arena_alloc_delta > 0.0 {
        report.failures.push(format!(
            "BPL2 arena encode allocated {} bytes per warm loop; the arena path must be zero-alloc",
            fresh.bp_arena_alloc_delta
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            step_speedup: 21.0,
            histogram_speedup: 1.4,
            allreduce_speedup: 1.05,
            auto_vs_best_min: 0.98,
            bp_encode_speedup: 1.5,
            bp_arena_alloc_delta: 0.0,
            bp_alloc_tracked: true,
            sanitizer_overhead_pct: 4.0,
        }
    }

    #[test]
    fn unchanged_metrics_pass() {
        let m = sample();
        let r = gate(&m, &m, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.checked.len(), 7);
    }

    #[test]
    fn small_noise_within_tolerance_passes() {
        let base = sample();
        let mut fresh = base;
        fresh.step_speedup *= 0.90; // -10%, inside the 15% band
        fresh.histogram_speedup *= 0.95;
        fresh.sanitizer_overhead_pct += 5.0;
        assert!(gate(&base, &fresh, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn planted_20pct_slowdown_fails_each_metric() {
        // The acceptance check: a 20% regression must demonstrably trip
        // the default 15% gate — on every ratio metric independently.
        let base = sample();
        for plant in 0..5 {
            let mut fresh = base;
            let slot: &mut f64 = match plant {
                0 => &mut fresh.step_speedup,
                1 => &mut fresh.histogram_speedup,
                2 => &mut fresh.allreduce_speedup,
                3 => &mut fresh.auto_vs_best_min,
                _ => &mut fresh.bp_encode_speedup,
            };
            *slot *= 0.80; // a 20% slowdown of the optimized path
            let r = gate(&base, &fresh, DEFAULT_TOLERANCE);
            assert_eq!(r.failures.len(), 1, "plant {plant}: {:?}", r.failures);
        }
    }

    #[test]
    fn sanitizer_overhead_blowup_fails() {
        let base = sample();
        let mut fresh = base;
        fresh.sanitizer_overhead_pct = 25.0; // > 4% + 15 points
        let r = gate(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("sanitizer"));
    }

    #[test]
    fn arena_allocation_fails_when_tracked() {
        let base = sample();
        let mut fresh = base;
        fresh.bp_arena_alloc_delta = 4096.0;
        let r = gate(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("zero-alloc"));
        // Without the tracking allocator the delta is meaningless noise.
        fresh.bp_alloc_tracked = false;
        assert!(gate(&base, &fresh, DEFAULT_TOLERANCE).passed());
    }

    fn broker_sample() -> BrokerMetrics {
        BrokerMetrics {
            fanout_speedup: 20.0,
            fairness: 1.0,
            eviction_works: true,
            queue_bounded: true,
        }
    }

    #[test]
    fn broker_gate_passes_unchanged_and_fails_regressions() {
        let base = broker_sample();
        assert!(gate_broker(&base, &base, DEFAULT_TOLERANCE).passed());

        let mut fresh = base;
        fresh.fanout_speedup *= 0.80; // 20% slowdown trips the 15% gate
        let r = gate_broker(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("fanout"));

        let mut fresh = base;
        fresh.fairness = 0.5;
        let r = gate_broker(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("fairness"));

        let mut fresh = base;
        fresh.eviction_works = false;
        fresh.queue_bounded = false;
        let r = gate_broker(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 2);
    }

    #[test]
    fn broker_metrics_parse_from_generated_json() {
        let doc = crate::brokerbench::BrokerReport {
            clone_fanout_s: 0.040,
            broker_fanout_s: 0.002,
            fairness: 1.0,
            eviction_works: true,
            queue_bounded: true,
        }
        .to_json();
        let m = BrokerMetrics::from_json(&doc).expect("parse");
        assert_eq!(m.fanout_speedup, 20.0);
        assert_eq!(m.fairness, 1.0);
        assert!(m.eviction_works && m.queue_bounded);
        let err = BrokerMetrics::from_json("{}").unwrap_err();
        assert!(err.contains("fanout"), "{err}");
    }

    fn query_sample() -> QueryMetrics {
        QueryMetrics {
            serve_speedup: 12.0,
            fairness: 1.0,
            eviction_works: true,
            queue_bounded: true,
        }
    }

    #[test]
    fn query_gate_passes_unchanged_and_fails_regressions() {
        let base = query_sample();
        assert!(gate_query(&base, &base, DEFAULT_TOLERANCE).passed());

        let mut fresh = base;
        fresh.serve_speedup *= 0.80; // 20% slowdown trips the 15% gate
        let r = gate_query(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("serve speedup"));

        let mut fresh = base;
        fresh.fairness = 0.5;
        let r = gate_query(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("fairness"));

        let mut fresh = base;
        fresh.eviction_works = false;
        fresh.queue_bounded = false;
        let r = gate_query(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 2);
    }

    #[test]
    fn query_metrics_parse_from_generated_json() {
        let doc = crate::querybench::QueryReport {
            per_client_s: 0.024,
            shared_s: 0.002,
            fairness: 1.0,
            eviction_works: true,
            queue_bounded: true,
        }
        .to_json();
        let m = QueryMetrics::from_json(&doc).expect("parse");
        assert_eq!(m.serve_speedup, 12.0);
        assert_eq!(m.fairness, 1.0);
        assert!(m.eviction_works && m.queue_bounded);
        let err = QueryMetrics::from_json("{}").unwrap_err();
        assert!(err.contains("serve"), "{err}");
    }

    fn offload_sample() -> OffloadMetrics {
        OffloadMetrics {
            efficiency: 0.85,
            transfer_ratio: 1.0,
            bitwise_identical: true,
        }
    }

    #[test]
    fn offload_gate_passes_unchanged_and_fails_regressions() {
        let base = offload_sample();
        assert!(gate_offload(&base, &base, DEFAULT_TOLERANCE).passed());

        let mut fresh = base;
        fresh.efficiency = 0.0;
        let r = gate_offload(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("hides no simulation time"));

        let mut fresh = base;
        fresh.efficiency = 0.5; // below 0.85 - 0.15
        let r = gate_offload(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("efficiency regressed"));

        let mut fresh = base;
        fresh.transfer_ratio = 2.0; // a second copy appeared
        let r = gate_offload(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("transfer bytes grew"));

        let mut fresh = base;
        fresh.bitwise_identical = false;
        let r = gate_offload(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("diverged"));
    }

    #[test]
    fn offload_metrics_parse_from_generated_json() {
        let doc = crate::offloadbench::OffloadReport {
            sync_s: 0.100,
            offload_s: 0.060,
            efficiency: 0.85,
            h2d_bytes: 4096,
            ideal_bytes: 4096,
            bitwise_identical: true,
        }
        .to_json();
        let m = OffloadMetrics::from_json(&doc).expect("parse");
        assert_eq!(m.efficiency, 0.85);
        assert_eq!(m.transfer_ratio, 1.0);
        assert!(m.bitwise_identical);
        let err = OffloadMetrics::from_json("{}").unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn metrics_parse_from_generated_json() {
        let doc = r#"{
  "config": {"grid": [64, 64, 64], "oscillators": 48, "steps": 8, "threads": 0, "warmup_rounds": 1, "timed_rounds": 5},
  "step": {"naive_s": 1.500000, "culled_serial_s": 0.070000, "culled_threaded_s": 0.070000, "speedup": 21.43},
  "histogram": {"bins": 64, "reference_s": 0.022000, "blocked_s": 0.015000, "speedup": 1.47},
  "allreduce": {"ranks": 8, "elements": 32768, "rounds": 16, "tree_s": 0.011900, "rsag_s": 0.018100, "auto_s": 0.011500, "speedup": 1.03},
  "allreduce_points": [
    {"ranks": 2, "elements": 256, "bytes": 2048, "tree_s": 0.000100, "rsag_s": 0.000200, "auto_s": 0.000101, "auto_vs_best": 0.990}
  ],
  "crossover": [
    {"ranks": 2, "rsag_from_bytes": null}
  ],
  "auto_vs_best_min": 0.990,
  "bp_encode": {"payload_bytes": 2097454, "rounds": 32, "alloc_s": 0.050000, "arena_s": 0.030000, "speedup": 1.67, "arena_alloc_delta_bytes": 0, "alloc_tracked": true},
  "sanitizer": {"ranks": 8, "off_s": 0.120000, "on_s": 0.126000, "overhead_pct": 5.00, "bitwise_identical": true}
}
"#;
        let m = Metrics::from_json(doc).expect("parse");
        assert_eq!(m.step_speedup, 21.43);
        assert_eq!(m.histogram_speedup, 1.47);
        assert_eq!(m.allreduce_speedup, 1.03);
        assert_eq!(m.auto_vs_best_min, 0.990);
        assert_eq!(m.bp_encode_speedup, 1.67);
        assert_eq!(m.bp_arena_alloc_delta, 0.0);
        assert!(m.bp_alloc_tracked);
        assert_eq!(m.sanitizer_overhead_pct, 5.00);
        // A document in the old (pre-methodology-fix) format fails with
        // a diagnostic rather than gating against garbage.
        let err = Metrics::from_json("{\"step\": {\"speedup\": 1.0}}").unwrap_err();
        assert!(err.contains("histogram"), "{err}");
    }
}
