//! Broker fan-out microbench: the dimensionless metrics the perf gate
//! tracks for the sharded staging broker.
//!
//! The interesting comparison is the one the broker replaced: the
//! thread-per-link staging model hands each consumer its **own copy**
//! of every step, so serving N consumers costs N payload memcpys per
//! publish. The broker fans one `Arc`-shared payload out to N bounded
//! queues — the per-consumer cost is a refcount bump. The gated
//! numbers:
//!
//! * `fanout.speedup` — per-consumer-copy baseline over the broker's
//!   shared-payload publish, same payload / subscriber count / steps;
//! * `fairness.min_over_max_delivered` — min/max messages delivered
//!   across all live subscribers (1.0 = perfectly fair dispatch);
//! * `robustness.eviction_works` / `robustness.queue_bounded` — a
//!   stalled consumer is evicted within its deadline, and the probed
//!   queue high-water never exceeds the configured depth.

use std::collections::VecDeque;
use std::time::Duration;

use adios::{BpVar, Broker, BrokerConfig, TopicKey};
use probe::time::Wall;

use crate::hotpath::{median_of, TIMED_ROUNDS, WARMUP_ROUNDS};

/// Subscribers served by one producer in the fan-out legs.
pub const SUBSCRIBERS: usize = 64;
/// Steps published per timed round.
pub const STEPS: usize = 32;
/// Payload size per step, in f64 elements (64 KiB).
pub const PAYLOAD_DOUBLES: usize = 8192;

fn payload() -> BpVar {
    let n = PAYLOAD_DOUBLES as u64;
    BpVar::new(
        "data",
        [n, 1, 1],
        [0, 0, 0],
        [n, 1, 1],
        (0..PAYLOAD_DOUBLES).map(|i| i as f64).collect(),
    )
}

/// The measured broker report; every gated entry is dimensionless.
#[derive(Clone, Debug)]
pub struct BrokerReport {
    /// Per-consumer deep-copy fan-out (the replaced model), seconds.
    pub clone_fanout_s: f64,
    /// Arc-shared broker fan-out over the same work, seconds.
    pub broker_fanout_s: f64,
    /// min/max delivered across subscribers after the broker leg.
    pub fairness: f64,
    /// A stalled consumer was evicted within its deadline.
    pub eviction_works: bool,
    /// The probed queue high-water stayed within the configured depth.
    pub queue_bounded: bool,
}

impl BrokerReport {
    /// Copy-per-consumer baseline over the shared-payload broker path.
    pub fn fanout_speedup(&self) -> f64 {
        self.clone_fanout_s / self.broker_fanout_s
    }

    /// Serialize in the flat one-line-per-section layout the perf gate
    /// scrapes (same conventions as `BENCH_hotpath.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"subscribers\": {SUBSCRIBERS}, \"steps\": {STEPS}, \
             \"payload_doubles\": {PAYLOAD_DOUBLES}, \"warmup_rounds\": {WARMUP_ROUNDS}, \
             \"timed_rounds\": {TIMED_ROUNDS}}},\n",
        ));
        s.push_str(&format!(
            "  \"fanout\": {{\"clone_s\": {:.6}, \"broker_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.clone_fanout_s,
            self.broker_fanout_s,
            self.fanout_speedup()
        ));
        s.push_str(&format!(
            "  \"fairness\": {{\"min_over_max_delivered\": {:.3}}},\n",
            self.fairness
        ));
        s.push_str(&format!(
            "  \"robustness\": {{\"eviction_works\": {}, \"queue_bounded\": {}}}\n",
            self.eviction_works, self.queue_bounded
        ));
        s.push('}');
        s.push('\n');
        s
    }
}

/// Time the replaced model: every publish deep-copies the payload into
/// each consumer's private queue.
fn time_clone_fanout() -> f64 {
    median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let step = payload();
        let mut queues: Vec<VecDeque<BpVar>> = (0..SUBSCRIBERS).map(|_| VecDeque::new()).collect();
        let t0 = Wall::now();
        for _ in 0..STEPS {
            for q in queues.iter_mut() {
                q.push_back(step.clone());
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(queues.iter().all(|q| q.len() == STEPS));
        dt
    })
}

/// Time the broker: one publish fans an `Arc`-shared payload out to
/// every subscriber's bounded queue. Returns `(seconds, fairness)`.
fn time_broker_fanout() -> (f64, f64) {
    let mut fairness = 0.0;
    let topic = TopicKey::new("data", 0);
    let secs = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let broker: Broker<BpVar> = Broker::new(BrokerConfig {
            queue_depth: STEPS,
            max_subscribers: SUBSCRIBERS,
            eviction_deadline: Duration::from_secs(10),
        });
        let subs: Vec<_> = (0..SUBSCRIBERS)
            .map(|i| {
                broker
                    .subscribe_labeled(topic.clone(), format!("bench-{i:02}"))
                    .expect("admitted")
            })
            .collect();
        let t0 = Wall::now();
        for _ in 0..STEPS {
            let report = broker.publish(&topic, payload());
            debug_assert_eq!(report.delivered, SUBSCRIBERS);
        }
        let dt = t0.elapsed().as_secs_f64();
        fairness = broker.fairness(&topic).expect("live subscribers");
        drop(subs);
        dt
    });
    (secs, fairness)
}

/// Untimed robustness probe: a stalled consumer next to a draining one
/// must be evicted within its deadline, while the queue high-water
/// gauge respects the configured depth.
fn check_robustness() -> (bool, bool) {
    const DEPTH: usize = 2;
    let broker: Broker<BpVar> = Broker::new(BrokerConfig {
        queue_depth: DEPTH,
        max_subscribers: 4,
        eviction_deadline: Duration::from_millis(5),
    });
    let probe = probe::enabled();
    broker.attach_probe(probe.clone());
    let topic = TopicKey::new("data", 0);
    let stalled = broker
        .subscribe_labeled(topic.clone(), "stalled")
        .expect("admitted");
    let live = broker
        .subscribe_labeled(topic.clone(), "live")
        .expect("admitted");
    for _ in 0..DEPTH + 1 {
        broker.publish(&topic, payload());
        while live.try_next().is_some() {}
    }
    let eviction_works = stalled.is_evicted() && broker.take_evictions().len() == 1;
    let queue_bounded = probe
        .snapshot()
        .gauge("broker/data#0/queue_peak")
        .is_some_and(|peak| peak <= DEPTH as u64);
    (eviction_works, queue_bounded)
}

/// Measure everything.
pub fn run() -> BrokerReport {
    let clone_fanout_s = time_clone_fanout();
    let (broker_fanout_s, fairness) = time_broker_fanout();
    let (eviction_works, queue_bounded) = check_robustness();
    BrokerReport {
        clone_fanout_s,
        broker_fanout_s,
        fairness,
        eviction_works,
        queue_bounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_measures_and_serializes() {
        let r = run();
        assert!(r.clone_fanout_s > 0.0 && r.broker_fanout_s > 0.0);
        assert!(r.fanout_speedup() > 1.0, "sharing beats copying");
        assert!(
            (r.fairness - 1.0).abs() < 1e-9,
            "all subscribers drained equally"
        );
        assert!(r.eviction_works);
        assert!(r.queue_bounded);
        let json = r.to_json();
        assert!(json.contains("\"fanout\""));
        assert!(json.contains("\"eviction_works\": true"));
    }
}
