//! Offload-executor microbench: the dimensionless metrics the perf
//! gate tracks for the async analysis offload path (ISSUE 8).
//!
//! The measured comparison is the paper's central trade: synchronous
//! in situ analysis blocks the simulation for the full analysis cost,
//! while the offload executor snapshots the published mesh into
//! device space and runs the analyses on workers overlapping the next
//! simulation step. The gated numbers:
//!
//! * `overlap.efficiency` — worker-busy seconds hidden behind the
//!   simulation over total busy seconds (`Bridge::overlap_efficiency`;
//!   1.0 = the analyses were free, 0.0 = no overlap at all);
//! * `transfer.bytes_ratio` — H2D transfer bytes over the ideal
//!   `steps × Σ_ranks mesh_payload` (1.0 = exactly one device snapshot
//!   per published step; growth means a double-copy crept in);
//! * `results.bitwise_identical` — the offloaded histogram and
//!   autocorrelation artifacts equal the synchronous host run's,
//!   bit for bit (correctness fact, gated outright).

use minimpi::{SchedPolicy, WorldBuilder};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use probe::time::Wall;
use sensei::analysis::autocorrelation::{Autocorrelation, AutocorrelationResult};
use sensei::analysis::histogram::{HistogramAnalysis, HistogramResult};
use sensei::{Bridge, DataAdaptor as _, OffloadConfig};

/// Ranks per measured world.
pub const RANKS: usize = 4;
/// Per-rank oscillator grid.
pub const GRID: [usize; 3] = [40, 40, 40];
/// Steps per run.
pub const STEPS: usize = 8;
/// Histogram bins.
pub const BINS: usize = 64;
/// Warmup worlds before the timed ones.
pub const WARMUP_ROUNDS: usize = 1;
/// Timed worlds; the report keeps the median wall time.
pub const TIMED_ROUNDS: usize = 3;

/// What one world run produces: rank 0's analysis artifacts plus the
/// run's measured costs.
struct RunOutcome {
    hist: HistogramResult,
    ac: AutocorrelationResult,
    /// Max over ranks of the step-loop wall seconds.
    loop_s: f64,
    /// Rank 0's `Bridge::overlap_efficiency` (None when synchronous).
    efficiency: Option<f64>,
    /// `space/h2d` bytes summed over ranks (0 when synchronous).
    h2d_bytes: u64,
    /// `steps × Σ_ranks full-mesh payload bytes` — the ideal transfer.
    ideal_bytes: u64,
}

/// Drive the golden oscillator deck through histogram +
/// autocorrelation under one seed, synchronously or offloaded.
fn world_run(offload: bool) -> RunOutcome {
    let deck = format_deck(&demo_oscillators());
    let out = WorldBuilder::new(RANKS)
        .sched(SchedPolicy::Seeded(1))
        .run(move |comm| {
            let cfg = SimConfig {
                grid: GRID,
                steps: STEPS,
                ..SimConfig::default()
            };
            let root = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root);
            let hist = HistogramAnalysis::new("data", BINS);
            let hist_res = hist.results_handle();
            let ac = Autocorrelation::new("data", 3, 8);
            let ac_res = ac.results_handle();
            let mut bridge = Bridge::with_probe(probe::enabled());
            bridge.register(Box::new(hist));
            bridge.register(Box::new(ac));
            if offload {
                bridge.enable_offload(OffloadConfig::default());
            }
            let per_rank_payload = OscillatorAdaptor::new(&sim).full_mesh().payload_bytes() as u64;
            let t0 = Wall::now();
            for _ in 0..STEPS {
                sim.step(comm);
                bridge.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            let report = bridge.finalize(comm);
            let loop_s = t0.elapsed().as_secs_f64();
            let loop_max = comm.allreduce_scalar(loop_s.to_bits(), |a, b| {
                if f64::from_bits(a) >= f64::from_bits(b) {
                    a
                } else {
                    b
                }
            });
            let ideal = comm.allreduce_scalar(per_rank_payload, |a, b| a + b) * STEPS as u64;
            if comm.rank() == 0 {
                Some(RunOutcome {
                    hist: hist_res.lock().clone().expect("histogram"),
                    ac: ac_res.lock().clone().expect("autocorrelation"),
                    loop_s: f64::from_bits(loop_max),
                    efficiency: bridge.overlap_efficiency(),
                    h2d_bytes: report
                        .counter(sensei::bridge::COUNTER_H2D)
                        .map(|c| c.bytes)
                        .unwrap_or(0),
                    ideal_bytes: ideal,
                })
            } else {
                None
            }
        });
    out.into_iter().flatten().next().expect("rank 0 outcome")
}

/// The measured offload report; every gated entry is dimensionless.
#[derive(Clone, Debug)]
pub struct OffloadReport {
    /// Synchronous step-loop wall seconds (median of timed rounds).
    pub sync_s: f64,
    /// Offloaded step-loop wall seconds (median of timed rounds).
    pub offload_s: f64,
    /// Rank 0's measured overlap efficiency (hidden / busy).
    pub efficiency: f64,
    /// H2D transfer bytes summed over ranks, one timed round.
    pub h2d_bytes: u64,
    /// Ideal transfer: `steps × Σ_ranks mesh_payload` bytes.
    pub ideal_bytes: u64,
    /// Offloaded artifacts equal the synchronous run's, bit for bit.
    pub bitwise_identical: bool,
}

impl OffloadReport {
    /// Synchronous loop over the offloaded loop (>1 = overlap paid off).
    pub fn step_speedup(&self) -> f64 {
        self.sync_s / self.offload_s
    }

    /// Measured H2D bytes over the ideal one-snapshot-per-step cost.
    pub fn transfer_ratio(&self) -> f64 {
        self.h2d_bytes as f64 / self.ideal_bytes as f64
    }

    /// Serialize in the flat one-line-per-section layout the perf gate
    /// scrapes (same conventions as `BENCH_hotpath.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"ranks\": {RANKS}, \"grid\": [{}, {}, {}], \"steps\": {STEPS}, \
             \"bins\": {BINS}, \"warmup_rounds\": {WARMUP_ROUNDS}, \
             \"timed_rounds\": {TIMED_ROUNDS}}},\n",
            GRID[0], GRID[1], GRID[2]
        ));
        s.push_str(&format!(
            "  \"overlap\": {{\"sync_s\": {:.6}, \"offload_s\": {:.6}, \"step_speedup\": {:.3}, \
             \"efficiency\": {:.4}}},\n",
            self.sync_s,
            self.offload_s,
            self.step_speedup(),
            self.efficiency
        ));
        s.push_str(&format!(
            "  \"transfer\": {{\"h2d_bytes\": {}, \"ideal_bytes\": {}, \"bytes_ratio\": {:.4}}},\n",
            self.h2d_bytes,
            self.ideal_bytes,
            self.transfer_ratio()
        ));
        s.push_str(&format!(
            "  \"results\": {{\"bitwise_identical\": {}}}\n",
            self.bitwise_identical
        ));
        s.push('}');
        s.push('\n');
        s
    }
}

/// Measure everything: warmup + timed rounds of both modes, medians of
/// the wall times, last offloaded round's efficiency and transfer.
pub fn run() -> OffloadReport {
    for _ in 0..WARMUP_ROUNDS {
        let _ = world_run(false);
        let _ = world_run(true);
    }
    let mut sync_walls = Vec::new();
    let mut offload_walls = Vec::new();
    let mut sync_last = None;
    let mut offload_last = None;
    for _ in 0..TIMED_ROUNDS {
        let s = world_run(false);
        sync_walls.push(s.loop_s);
        sync_last = Some(s);
        let o = world_run(true);
        offload_walls.push(o.loop_s);
        offload_last = Some(o);
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let sync = sync_last.expect("timed sync round");
    let off = offload_last.expect("timed offload round");
    OffloadReport {
        sync_s: median(sync_walls),
        offload_s: median(offload_walls),
        efficiency: off.efficiency.unwrap_or(0.0),
        h2d_bytes: off.h2d_bytes,
        ideal_bytes: off.ideal_bytes,
        bitwise_identical: sync.hist == off.hist && sync.ac == off.ac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_measures_and_serializes() {
        let r = run();
        assert!(r.sync_s > 0.0 && r.offload_s > 0.0);
        assert!(
            r.efficiency > 0.0 && r.efficiency <= 1.0,
            "overlap efficiency in (0, 1]: {}",
            r.efficiency
        );
        assert!(r.bitwise_identical, "offload must not change results");
        // One device snapshot per published step, nothing more: the
        // measured bytes match the ideal exactly (same code computes
        // both sides, so this is a double-copy tripwire, not a timing).
        assert_eq!(r.h2d_bytes, r.ideal_bytes);
        let json = r.to_json();
        assert!(json.contains("\"overlap\""));
        assert!(json.contains("\"bitwise_identical\": true"));
    }
}
