//! Real (threaded) measurements at workstation scale. These validate
//! the shapes the models assert — zero-copy overhead, the zlib ablation,
//! the VTK-vs-collective ordering, the staging penalty — and are also
//! the bodies of the criterion benches.

use probe::time::Wall;

use datamodel::Extent;
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::AnalysisAdaptor as _;
use sensei::Bridge;

/// Seconds of wall clock for `f`.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Wall::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Fig. 3 in real mode: run the miniapp + autocorrelation twice — once
/// via direct subroutine calls, once through the SENSEI bridge — and
/// return `(original_seconds, sensei_seconds)`.
pub fn measure_sensei_overhead(ranks: usize, grid: usize, steps: usize) -> (f64, f64) {
    let deck = format_deck(&demo_oscillators());
    let run = |use_bridge: bool| -> f64 {
        let deck = deck.clone();
        let times = World::run(ranks, move |comm| {
            let cfg = SimConfig {
                grid: [grid, grid, grid],
                steps,
                ..SimConfig::default()
            };
            let root_deck = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            let t0 = Wall::now();
            if use_bridge {
                let mut bridge = Bridge::new();
                bridge.register(Box::new(Autocorrelation::new("data", 4, 4)));
                for _ in 0..steps {
                    sim.step(comm);
                    bridge.execute(&OscillatorAdaptor::new(&sim), comm);
                }
                bridge.finalize(comm);
            } else {
                let mut ac = Autocorrelation::new("data", 4, 4);
                for _ in 0..steps {
                    sim.step(comm);
                    ac.execute(&OscillatorAdaptor::new(&sim), comm);
                }
                ac.finalize(comm);
            }
            t0.elapsed().as_secs_f64()
        });
        times.into_iter().fold(0.0, f64::max)
    };
    (run(false), run(true))
}

/// Table 1 in real mode: write one step of a block-decomposed field via
/// file-per-rank and via the collective shared file; return
/// `(vtk_seconds, collective_seconds)`.
pub fn measure_write_paths(ranks: usize, grid: usize, dir: &std::path::Path) -> (f64, f64) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let dir_a = dir.to_path_buf();
    let dir_b = dir.to_path_buf();
    let vtk = World::run(ranks, move |comm| {
        let global = Extent::whole([grid, grid, grid]);
        let dims = datamodel::dims_create(comm.size());
        let local = datamodel::partition_extent(&global, dims, comm.rank());
        let values: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
        let t0 = Wall::now();
        let piece = iosim::Piece {
            extent: local,
            global,
            spacing: [1.0; 3],
            arrays: vec![("data".to_string(), values)],
        };
        iosim::write_piece(&dir_a, 0, comm.rank(), &piece).expect("write piece");
        comm.barrier();
        t0.elapsed().as_secs_f64()
    })
    .into_iter()
    .fold(0.0, f64::max);

    let coll = World::run(ranks, move |comm| {
        let global = Extent::whole([grid, grid, grid]);
        let dims = datamodel::dims_create(comm.size());
        let local = datamodel::partition_extent(&global, dims, comm.rank());
        let values: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
        let t0 = Wall::now();
        iosim::collective_write(comm, &dir_b.join("shared.bin"), &local, &global, &values, 2)
            .expect("collective write");
        t0.elapsed().as_secs_f64()
    })
    .into_iter()
    .fold(0.0, f64::max);
    (vtk, coll)
}

/// Table 2's zlib ablation in real mode: PNG-encode a rendered-image
/// pattern with and without real compression; return
/// `(fixed_seconds, stored_seconds, fixed_bytes, stored_bytes)`.
///
/// The pattern mixes banded pseudocolor regions with smooth gradients —
/// like a real slice render: partially compressible, so the LZ77 +
/// Huffman pass does real work while still shrinking the output.
pub fn measure_png_ablation(width: usize, height: usize) -> (f64, f64, usize, usize) {
    let rgb = pseudocolor_like_image(width, height);
    let (t_fixed, png_fixed) =
        time(|| render::png::encode_rgb(width, height, &rgb, render::deflate::Mode::Fixed));
    let (t_stored, png_stored) =
        time(|| render::png::encode_rgb(width, height, &rgb, render::deflate::Mode::Stored));
    (t_fixed, t_stored, png_fixed.len(), png_stored.len())
}

/// A synthetic render: colormap bands plus smooth per-pixel shading.
pub fn pseudocolor_like_image(width: usize, height: usize) -> Vec<u8> {
    let mut rgb = Vec::with_capacity(width * height * 3);
    for y in 0..height {
        for x in 0..width {
            let band = (((x / 16) + (y / 16)) % 13) as u8;
            let shade = ((x * 255) / width.max(1)) as u8;
            rgb.extend_from_slice(&[band * 19, shade, 255 - band * 11]);
        }
    }
    rgb
}

/// §4.1.4 in real mode: per-step wall time of an inline histogram vs the
/// same histogram at a FlexPath endpoint (writers + endpoints on this
/// machine). Returns `(inline_seconds, staged_seconds)` per step.
#[allow(deprecated)] // legacy non-broker endpoint keeps the perf baselines comparable
pub fn measure_staging_penalty(writers: usize, grid: usize, steps: usize) -> (f64, f64) {
    use adios::staging::{run_endpoint, AdiosWriterAnalysis};
    use adios::{pair, Role};
    use sensei::analysis::histogram::HistogramAnalysis;

    let deck = format_deck(&demo_oscillators());

    // Inline: writers alone run sim + histogram.
    let deck1 = deck.clone();
    let inline = World::run(writers, move |comm| {
        let cfg = SimConfig {
            grid: [grid, grid, grid],
            steps,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck1.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root_deck);
        let mut hist = HistogramAnalysis::new("data", 32);
        let t0 = Wall::now();
        for _ in 0..steps {
            sim.step(comm);
            hist.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        t0.elapsed().as_secs_f64() / steps as f64
    })
    .into_iter()
    .fold(0.0, f64::max);

    // Staged: writers ship to endpoints that run the histogram.
    let staged = World::run(writers * 2, move |world| match pair(world, writers) {
        Role::Writer { sub, writer } => {
            let cfg = SimConfig {
                grid: [grid, grid, grid],
                steps,
                ..SimConfig::default()
            };
            let root_deck = if sub.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(&sub, cfg, root_deck);
            let mut ship = AdiosWriterAnalysis::new(writer);
            let t0 = Wall::now();
            for _ in 0..steps {
                sim.step(&sub);
                ship.execute(&OscillatorAdaptor::new(&sim), world);
            }
            ship.finalize(world);
            Some(t0.elapsed().as_secs_f64() / steps as f64)
        }
        Role::Endpoint { sub, mut reader } => {
            let hist = HistogramAnalysis::new("data", 32);
            run_endpoint(world, &sub, &mut reader, vec![Box::new(hist)]);
            None
        }
    })
    .into_iter()
    .flatten()
    .fold(0.0, f64::max);
    (inline, staged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensei_overhead_is_small_in_real_mode() {
        // The headline zero-copy claim, measured for real: the bridge
        // path costs within noise of the direct path.
        let (original, sensei) = measure_sensei_overhead(2, 16, 6);
        assert!(original > 0.0 && sensei > 0.0);
        // Generous bound: thread-scheduling noise at this tiny scale can
        // reach tens of percent; catch only gross regressions.
        assert!(
            sensei < original * 2.0 + 0.05,
            "bridge {sensei} vs direct {original}"
        );
    }

    #[test]
    fn png_ablation_shape_matches_table2_discussion() {
        // At PHASTA's IS2 image size the LZ77+Huffman work dominates the
        // extra memcpy of stored mode.
        let (fixed, stored, nf, ns) = measure_png_ablation(2900, 725);
        assert!(
            fixed > stored,
            "compression costs time: {fixed} vs {stored}"
        );
        assert!(nf < ns, "…and saves bytes: {nf} vs {ns}");
    }

    #[test]
    fn write_paths_produce_files() {
        let dir = std::env::temp_dir().join(format!("realruns_io_{}", std::process::id()));
        let (vtk, coll) = measure_write_paths(2, 12, &dir);
        assert!(vtk > 0.0 && coll > 0.0);
        assert!(dir.join("shared.bin").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staging_runs_to_completion() {
        let (inline, staged) = measure_staging_penalty(2, 12, 4);
        assert!(inline > 0.0);
        assert!(staged > 0.0);
    }
}
