//! Plain-text/CSV tables for experiment output.

/// A titled table of string cells.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Title (e.g. "Fig. 3 — time to solution").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Column index by header name.
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Numeric value at `(row, header)`, if parseable.
    pub fn value(&self, row: usize, header: &str) -> Option<f64> {
        let c = self.column(header)?;
        self.rows.get(row)?.get(c)?.parse().ok()
    }

    /// Render aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format bytes as a human unit.
pub fn bytes(v: f64) -> String {
    if v >= 1e12 {
        format!("{:.2} TB", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.1} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1} MB", v / 1e6)
    } else {
        format!("{v:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("Demo", &["cores", "time (s)"]);
        t.row(vec!["812".into(), "0.12".into()]);
        t.row(vec!["6496".into(), "0.67".into()]);
        let text = t.to_text();
        assert!(text.contains("Demo"));
        assert!(text.contains("812"));
        let csv = t.to_csv();
        assert!(csv.starts_with("cores,time (s)\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn value_lookup() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2.5".into()]);
        assert_eq!(t.value(0, "b"), Some(2.5));
        assert_eq!(t.value(0, "c"), None);
        assert_eq!(t.value(9, "a"), None);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.1234), "0.1234");
        assert_eq!(secs(5.251), "5.25");
        assert_eq!(secs(523.0), "523");
        assert_eq!(bytes(2e9), "2.0 GB");
        assert_eq!(bytes(1.23e13), "12.30 TB");
    }
}
