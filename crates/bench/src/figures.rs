//! Modeled regeneration of every table and figure in the paper's
//! evaluation, at the paper's concurrencies, on the paper's machines.
//! See EXPERIMENTS.md for the paper-vs-regenerated comparison.

use perfmodel::memory::{self, Executable};
use perfmodel::storage;
use perfmodel::workloads::{self as w, PhastaRun};
use perfmodel::{MachineSpec, SeededNoise};

use crate::table::{bytes, secs, Table};

/// Oscillator count of the miniapp configuration.
pub const OSCILLATORS: usize = 3;
/// Autocorrelation window (§3.3 time delay t).
pub const WINDOW: usize = 10;
/// Top-k of the autocorrelation finalize.
pub const TOP_K: usize = 16;
/// Histogram bins.
pub const BINS: usize = 64;
/// Steps per miniapp run.
pub const STEPS: usize = 100;

fn cori() -> MachineSpec {
    MachineSpec::cori_haswell()
}

/// Per-step analysis cost of each miniapp in situ configuration.
fn analysis_step(m: &MachineSpec, config: &str, p: usize, cells: usize) -> f64 {
    match config {
        "Baseline" => w::sensei_adaptor_overhead(),
        "Histogram" => w::histogram_step(m, p, cells, BINS),
        "Autocorrelation" => w::autocorrelation_step(m, cells, WINDOW),
        "Catalyst-slice" => w::catalyst_slice_step(m, p, cells),
        "Libsim-slice" => w::libsim_slice_step(m, p, cells),
        other => panic!("unknown config {other}"),
    }
}

/// One-time analysis initialization cost of a configuration.
fn analysis_init(m: &MachineSpec, config: &str, p: usize, cells: usize) -> f64 {
    match config {
        "Baseline" | "Histogram" => 1e-4,
        // Allocate the two window buffers.
        "Autocorrelation" => (cells * WINDOW * 16) as f64 / 8e9,
        "Catalyst-slice" => w::catalyst_init(m, p),
        "Libsim-slice" => w::libsim_init(m, p),
        other => panic!("unknown config {other}"),
    }
}

/// One-time finalize cost of a configuration.
fn analysis_finalize(m: &MachineSpec, config: &str, p: usize, cells: usize) -> f64 {
    match config {
        "Autocorrelation" => w::autocorrelation_finalize(m, p, cells, WINDOW, TOP_K),
        _ => 1e-4,
    }
}

const CONFIGS: [&str; 5] = [
    "Baseline",
    "Histogram",
    "Autocorrelation",
    "Catalyst-slice",
    "Libsim-slice",
];

/// Fig. 3 — time to solution, Original (subroutine-called
/// autocorrelation) vs Autocorrelation (SENSEI-coupled), weak scaling.
pub fn fig3() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 3 — time to solution (s), Original vs SENSEI Autocorrelation, 100 steps",
        &["cores", "cells/core", "original", "sensei", "overhead %"],
    );
    for (p, cells) in w::miniapp_scales() {
        let sim = w::oscillator_step(&m, cells, OSCILLATORS);
        let ac = w::autocorrelation_step(&m, cells, WINDOW);
        let fin = w::autocorrelation_finalize(&m, p, cells, WINDOW, TOP_K);
        let original = STEPS as f64 * (sim + ac) + fin;
        let sensei = STEPS as f64 * (sim + ac + w::sensei_adaptor_overhead()) + fin;
        t.row(vec![
            p.to_string(),
            cells.to_string(),
            secs(original),
            secs(sensei),
            format!("{:.4}", 100.0 * (sensei - original) / original),
        ]);
    }
    t
}

/// Fig. 4 — memory footprint (summed high-water marks), Original vs
/// Autocorrelation.
pub fn fig4() -> Table {
    let mut t = Table::new(
        "Fig. 4 — total memory high-water mark, Original vs SENSEI Autocorrelation",
        &["cores", "original", "sensei", "overhead %"],
    );
    for (p, cells) in w::miniapp_scales() {
        let heap =
            memory::miniapp_heap(cells, OSCILLATORS) + memory::autocorrelation_heap(cells, WINDOW);
        let original = memory::total_high_water(p, Executable::Original, heap);
        let sensei = memory::total_high_water(p, Executable::DirectAnalysis, heap);
        t.row(vec![
            p.to_string(),
            bytes(original),
            bytes(sensei),
            format!("{:.2}", 100.0 * (sensei - original) / original),
        ]);
    }
    t
}

/// Fig. 5 — one-time costs per configuration: simulation initialize,
/// analysis initialize, finalize.
pub fn fig5() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 5 — one-time costs (s)",
        &["config", "cores", "sim init", "analysis init", "finalize"],
    );
    for config in CONFIGS {
        for (p, cells) in w::miniapp_scales() {
            t.row(vec![
                config.to_string(),
                p.to_string(),
                secs(w::sim_init(&m, p, cells)),
                secs(analysis_init(&m, config, p, cells)),
                secs(analysis_finalize(&m, config, p, cells)),
            ]);
        }
    }
    t
}

/// Fig. 6 — per-timestep costs: simulation and analysis.
pub fn fig6() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 6 — per-timestep costs (s)",
        &["config", "cores", "simulation", "analysis"],
    );
    for config in CONFIGS {
        for (p, cells) in w::miniapp_scales() {
            t.row(vec![
                config.to_string(),
                p.to_string(),
                secs(w::oscillator_step(&m, cells, OSCILLATORS)),
                secs(analysis_step(&m, config, p, cells)),
            ]);
        }
    }
    t
}

/// Fig. 7 — memory overhead: startup executable footprint vs run
/// high-water mark (both summed over ranks).
pub fn fig7() -> Table {
    let mut t = Table::new(
        "Fig. 7 — memory: startup executable footprint and high-water mark",
        &["config", "cores", "startup", "high water"],
    );
    for config in CONFIGS {
        for (p, cells) in w::miniapp_scales() {
            let exe = match config {
                "Baseline" => Executable::Baseline,
                "Histogram" | "Autocorrelation" => Executable::DirectAnalysis,
                "Catalyst-slice" => Executable::CatalystStatic,
                "Libsim-slice" => Executable::Libsim,
                _ => unreachable!(),
            };
            let heap = memory::miniapp_heap(cells, OSCILLATORS)
                + match config {
                    "Histogram" => memory::histogram_heap(BINS),
                    "Autocorrelation" => memory::autocorrelation_heap(cells, WINDOW),
                    "Catalyst-slice" => memory::slice_render_heap_avg(p, 1920, 1080),
                    "Libsim-slice" => memory::slice_render_heap_avg(p, 1600, 1600),
                    _ => 0.0,
                };
            let startup = p as f64 * exe.bytes();
            t.row(vec![
                config.to_string(),
                p.to_string(),
                bytes(startup),
                bytes(memory::total_high_water(p, exe, heap)),
            ]);
        }
    }
    t
}

/// Fig. 8 — ADIOS/FlexPath writer-side costs (histogram endpoint):
/// one-time open and per-step advance / analysis-transmission.
pub fn fig8() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 8 — ADIOS FlexPath writer costs (s), histogram endpoint",
        &["cores", "open (one-time)", "advance/step", "analysis/step"],
    );
    for (p, cells) in w::miniapp_scales() {
        let bytes_per_rank = (cells * 8) as f64;
        let endpoint_analysis = w::histogram_step(&m, p, cells, BINS);
        let open = 0.2 + w::flexpath_reader_init(&m, p) * 0.1; // writer side sees a fraction
        let advance = w::adios_advance(&m, p);
        let analysis =
            w::adios_transmit(&m, bytes_per_rank) + w::ADIOS_COSCHEDULE_FACTOR * endpoint_analysis;
        t.row(vec![
            p.to_string(),
            secs(open),
            secs(advance),
            secs(analysis),
        ]);
    }
    t
}

/// Fig. 9 — ADIOS FlexPath endpoint timings: reader init (Cori vs
/// Titan) and per-step analysis times at the endpoint.
pub fn fig9() -> Table {
    let cori = cori();
    let titan = MachineSpec::titan();
    let mut t = Table::new(
        "Fig. 9 — ADIOS FlexPath endpoint timings (s)",
        &[
            "cores",
            "init (cori)",
            "init (titan)",
            "histogram/step",
            "autocorr/step",
            "catalyst-slice/step",
        ],
    );
    for (p, cells) in w::miniapp_scales() {
        t.row(vec![
            p.to_string(),
            secs(w::flexpath_reader_init(&cori, p)),
            secs(w::flexpath_reader_init(&titan, p)),
            secs(w::histogram_step(&cori, p, cells, BINS)),
            secs(w::autocorrelation_step(&cori, cells, WINDOW)),
            secs(w::catalyst_slice_step(&cori, p, cells)),
        ]);
    }
    t
}

/// Fig. 10 — Baseline vs Baseline+write: per-step and one-time costs of
/// adding file-per-rank output every step.
pub fn fig10() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 10 — baseline vs baseline+I/O (file-per-rank writes, 100 steps)",
        &[
            "cores",
            "initialize",
            "sim/step",
            "write/step",
            "finalize",
            "write/sim ratio",
        ],
    );
    for (p, cells) in w::miniapp_scales() {
        let sim = w::oscillator_step(&m, cells, OSCILLATORS);
        let write = storage::file_per_rank_write(&m, p, w::miniapp_step_bytes(p, cells));
        t.row(vec![
            p.to_string(),
            secs(w::sim_init(&m, p, cells)),
            secs(sim),
            secs(write),
            secs(1e-4),
            format!("{:.1}", write / sim),
        ]);
    }
    t
}

/// Table 1 — one-timestep write costs: multi-file VTK I/O vs MPI-IO.
pub fn table1() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Table 1 — one-step write cost: multi-file VTK I/O vs MPI-IO",
        &["writers", "size", "VTK I/O (s)", "MPI-IO (s)"],
    );
    for (p, cells) in w::miniapp_scales() {
        let total = w::miniapp_step_bytes(p, cells);
        t.row(vec![
            p.to_string(),
            bytes(total),
            secs(storage::file_per_rank_write(&m, p, total)),
            secs(storage::collective_write(&m, total)),
        ]);
    }
    t
}

/// Fig. 11 — post hoc read/process/write at 10% of the write
/// concurrency (82 / 650 / 4545 readers), per analysis.
pub fn fig11() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 11 — post hoc analysis (100 steps): read/process/write (s)",
        &["analysis", "readers", "read", "process", "write", "total"],
    );
    let mut noise = SeededNoise::new(0x5C16);
    for (analysis, factor) in [("histogram", 1.0), ("autocorrelation", 1.3), ("slice", 1.6)] {
        for (p, cells) in w::miniapp_scales() {
            let readers = p / 10;
            let dataset = STEPS as f64 * w::miniapp_step_bytes(p, cells);
            let read = storage::posthoc_read(&m, readers, dataset, &mut noise);
            // Processing: the writers' per-step analysis work concentrated
            // on 10% of the cores.
            let per_step = match analysis {
                "histogram" => w::histogram_step(&m, readers, cells * 10, BINS),
                "autocorrelation" => w::autocorrelation_step(&m, cells * 10, WINDOW),
                _ => w::catalyst_slice_step(&m, readers, cells * 10),
            };
            let process = STEPS as f64 * per_step * factor;
            let write = 0.2; // small results artifact
            t.row(vec![
                analysis.to_string(),
                readers.to_string(),
                secs(read),
                secs(process),
                secs(write),
                secs(read + process + write),
            ]);
        }
    }
    t
}

/// Fig. 12 — weak-scaling time-to-solution of the in situ
/// configurations (and the post hoc write total for contrast).
pub fn fig12() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 12 — time to solution (100 steps), in situ configurations (s)",
        &["config", "cores", "simulation", "analysis", "total"],
    );
    for config in CONFIGS {
        for (p, cells) in w::miniapp_scales() {
            let sim = STEPS as f64 * w::oscillator_step(&m, cells, OSCILLATORS);
            let analysis = STEPS as f64 * analysis_step(&m, config, p, cells)
                + analysis_init(&m, config, p, cells)
                + analysis_finalize(&m, config, p, cells);
            t.row(vec![
                config.to_string(),
                p.to_string(),
                secs(sim),
                secs(analysis),
                secs(sim + analysis),
            ]);
        }
    }
    // Post hoc contrast: writes alone.
    for (p, cells) in w::miniapp_scales() {
        let sim = STEPS as f64 * w::oscillator_step(&m, cells, OSCILLATORS);
        let write =
            STEPS as f64 * storage::file_per_rank_write(&m, p, w::miniapp_step_bytes(p, cells));
        t.row(vec![
            "PostHoc-writes".to_string(),
            p.to_string(),
            secs(sim),
            secs(write),
            secs(sim + write),
        ]);
    }
    t
}

/// Table 2 — PHASTA execution times on Mira.
pub fn table2() -> Table {
    let m = MachineSpec::mira_bgq();
    let mut t = Table::new(
        "Table 2 — PHASTA execution times (s), Mira BG/Q",
        &[
            "run",
            "ranks",
            "image",
            "in situ one-time",
            "in situ per step",
            "total",
            "% in situ",
        ],
    );
    for (name, run) in [
        ("IS1", PhastaRun::Is1),
        ("IS2", PhastaRun::Is2),
        ("IS3", PhastaRun::Is3),
    ] {
        let (onetime, per_step, total, pct) = w::phasta_table2_row(&m, run);
        let (iw, ih) = run.image();
        t.row(vec![
            name.to_string(),
            run.ranks().to_string(),
            format!("{iw}x{ih}"),
            secs(onetime),
            secs(per_step),
            secs(total),
            format!("{pct:.1}"),
        ]);
    }
    t
}

/// Fig. 15 — AVF-LESLIE strong scaling on Titan with SENSEI/Libsim.
pub fn fig15() -> Table {
    let m = MachineSpec::titan();
    let mut t = Table::new(
        "Fig. 15 — AVF-LESLIE 1025^3 strong scaling with SENSEI/Libsim (s/step)",
        &[
            "cores",
            "avf_timestep",
            "adaptor/step",
            "render (every 5th)",
            "insitu amortized/step",
            "speedup vs 8K",
        ],
    );
    let base = w::leslie_solver_step(&m, 8192);
    for p in [8192usize, 16384, 32768, 65536, 131072] {
        let solver = w::leslie_solver_step(&m, p);
        let adaptor = w::leslie_adaptor_step(&m, p);
        let render = w::leslie_render_invocation(&m, p);
        let amortized = adaptor + render / 5.0;
        t.row(vec![
            p.to_string(),
            secs(solver),
            secs(adaptor),
            secs(render),
            secs(amortized),
            format!("{:.2}", base / solver),
        ]);
    }
    t
}

/// Fig. 16 — per-iteration SENSEI cost at 65K cores (Libsim every 5
/// steps): the spiky series of adaptor-only vs render steps.
pub fn fig16() -> Table {
    let m = MachineSpec::titan();
    let p = 65536;
    let mut t = Table::new(
        "Fig. 16 — per-iteration SENSEI cost at 65K cores (s)",
        &["step", "sensei cost", "kind"],
    );
    let adaptor = w::leslie_adaptor_step(&m, p);
    let render = w::leslie_render_invocation(&m, p);
    let mut noise = SeededNoise::new(16);
    for step in 1..=25u64 {
        let renders = step % 5 == 0;
        let cost = if renders {
            adaptor + render * noise.lognormal_factor(0.03)
        } else {
            adaptor * noise.lognormal_factor(0.05)
        };
        t.row(vec![
            step.to_string(),
            secs(cost),
            if renders {
                "adaptor+libsim"
            } else {
                "adaptor only"
            }
            .to_string(),
        ]);
    }
    t
}

/// Fig. 17 — Nyx with SENSEI: per-step solver vs in situ analysis cost,
/// plus the plot-file write each analysis avoids.
pub fn fig17() -> Table {
    let m = cori();
    let mut t = Table::new(
        "Fig. 17 — Nyx in situ overhead (s/step) and plot-file contrast",
        &[
            "grid",
            "cores",
            "solver/step",
            "histogram/step",
            "slice/step",
            "plotfile write",
        ],
    );
    for (grid, cores) in [(1024usize, 512usize), (2048, 4096), (4096, 32768)] {
        let hist = if grid == 4096 {
            // The paper omitted the 4096³ histogram for compute budget.
            "-".to_string()
        } else {
            secs(w::nyx_histogram_step(&m, cores))
        };
        t.row(vec![
            format!("{grid}^3"),
            cores.to_string(),
            secs(w::nyx_solver_step(cores)),
            hist,
            secs(w::nyx_slice_step(&m, cores)),
            secs(w::nyx_plotfile_write(grid, cores)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_produce_tables() {
        for id in crate::ALL_EXPERIMENTS {
            let t = crate::run_experiment(id).unwrap_or_else(|| panic!("missing {id}"));
            assert!(!t.rows.is_empty(), "{id} has rows");
            assert!(!t.headers.is_empty());
        }
        assert!(crate::run_experiment("fig99").is_none());
    }

    #[test]
    fn fig3_overhead_negligible() {
        let t = fig3();
        for r in 0..t.rows.len() {
            let pct = t.value(r, "overhead %").unwrap();
            assert!(pct < 0.1, "SENSEI overhead {pct}% must be negligible");
        }
    }

    #[test]
    fn fig4_memory_overhead_small() {
        let t = fig4();
        for r in 0..t.rows.len() {
            let pct = t.value(r, "overhead %").unwrap();
            assert!(pct < 2.0, "memory overhead {pct}%");
        }
    }

    #[test]
    fn fig5_libsim_init_dominates_at_scale() {
        let t = fig5();
        // Find the Libsim-slice row at 45440.
        let row = t
            .rows
            .iter()
            .position(|r| r[0] == "Libsim-slice" && r[1] == "45440")
            .unwrap();
        let init = t.value(row, "analysis init").unwrap();
        assert!((init - 3.5).abs() < 0.3, "Libsim init ≈3.5 s, got {init}");
    }

    #[test]
    fn table1_matches_paper_numbers() {
        let t = table1();
        let expect = [(0.12, 0.40), (0.67, 3.17), (9.05, 22.87)];
        for (r, (vtk, mpiio)) in expect.iter().enumerate() {
            let got_vtk = t.value(r, "VTK I/O (s)").unwrap();
            let got_mpiio = t.value(r, "MPI-IO (s)").unwrap();
            assert!(
                (got_vtk - vtk).abs() / vtk < 0.15,
                "row {r}: {got_vtk} vs {vtk}"
            );
            assert!(
                (got_mpiio - mpiio).abs() / mpiio < 0.15,
                "row {r}: {got_mpiio} vs {mpiio}"
            );
        }
    }

    #[test]
    fn fig10_write_ratio_crossover() {
        // Little impact at 1K; ~20× at 45K — the paper's prose anchors.
        let t = fig10();
        let r1k = t.value(0, "write/sim ratio").unwrap();
        let r45k = t.value(2, "write/sim ratio").unwrap();
        assert!(r1k < 1.0, "1K ratio {r1k}");
        assert!((15.0..26.0).contains(&r45k), "45K ratio {r45k}");
    }

    #[test]
    fn fig11_posthoc_exceeds_insitu() {
        let posthoc = fig11();
        let insitu = fig12();
        // Histogram post hoc total at 45K vs in situ histogram total.
        let ph_row = posthoc
            .rows
            .iter()
            .position(|r| r[0] == "histogram" && r[1] == "4544")
            .unwrap();
        let is_row = insitu
            .rows
            .iter()
            .position(|r| r[0] == "Histogram" && r[1] == "45440")
            .unwrap();
        let ph = posthoc.value(ph_row, "total").unwrap();
        let is = insitu.value(is_row, "total").unwrap();
        assert!(
            ph > 3.0 * is,
            "post hoc ({ph}) must far exceed in situ ({is})"
        );
    }

    #[test]
    fn fig12_in_situ_beats_posthoc_writes() {
        let t = fig12();
        // At 45K: every in situ config total < the write-only total.
        let write_row = t
            .rows
            .iter()
            .position(|r| r[0] == "PostHoc-writes" && r[1] == "45440")
            .unwrap();
        let write_total = t.value(write_row, "total").unwrap();
        for config in CONFIGS {
            let row = t
                .rows
                .iter()
                .position(|r| r[0] == config && r[1] == "45440")
                .unwrap();
            let total = t.value(row, "total").unwrap();
            assert!(
                total < write_total,
                "{config} in situ ({total}) < post hoc writes ({write_total})"
            );
        }
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let expect = [
            (1.40, 1051.0, 8.2),
            (5.24, 962.0, 33.0),
            (5.62, 653.0, 13.0),
        ];
        for (r, (per_step, total, pct)) in expect.iter().enumerate() {
            let got_ps = t.value(r, "in situ per step").unwrap();
            let got_total = t.value(r, "total").unwrap();
            let got_pct = t.value(r, "% in situ").unwrap();
            assert!(
                (got_ps - per_step).abs() / per_step < 0.25,
                "row {r} per-step {got_ps}"
            );
            assert!(
                (got_total - total).abs() / total < 0.10,
                "row {r} total {got_total}"
            );
            assert!((got_pct - pct).abs() / pct < 0.30, "row {r} pct {got_pct}");
        }
    }

    #[test]
    fn fig15_efficiency_shape() {
        let t = fig15();
        let s16 = t.value(1, "speedup vs 8K").unwrap();
        let s128 = t.value(4, "speedup vs 8K").unwrap();
        assert!(s16 > 1.75, "near-ideal to 16K: {s16}");
        assert!(s128 < 16.0 * 0.75, "efficiency degraded at 131K: {s128}");
    }

    #[test]
    fn fig16_spiky_series() {
        let t = fig16();
        assert_eq!(t.rows.len(), 25);
        let renders: Vec<f64> = (0..25)
            .filter(|r| t.rows[*r][2] == "adaptor+libsim")
            .map(|r| t.value(r, "sensei cost").unwrap())
            .collect();
        let quiets: Vec<f64> = (0..25)
            .filter(|r| t.rows[*r][2] == "adaptor only")
            .map(|r| t.value(r, "sensei cost").unwrap())
            .collect();
        assert_eq!(renders.len(), 5);
        // Render steps land in the 7–8 s band, quiet steps < 0.5 s.
        for v in renders {
            assert!((6.0..9.5).contains(&v), "render step {v}");
        }
        for v in quiets {
            assert!(v < 0.5, "quiet step {v}");
        }
    }

    #[test]
    fn fig17_analysis_under_a_second() {
        let t = fig17();
        for r in 0..t.rows.len() {
            if let Some(h) = t.value(r, "histogram/step") {
                assert!(h < 1.0, "histogram {h}");
            }
            let s = t.value(r, "slice/step").unwrap();
            assert!(s < 1.0, "slice {s}");
            let solver = t.value(r, "solver/step").unwrap();
            assert!(solver > 50.0, "solver dominates: {solver}");
        }
    }

    #[test]
    fn fig9_titan_init_order_of_magnitude_faster() {
        let t = fig9();
        let r = t.rows.len() - 1; // 45K row
        let cori = t.value(r, "init (cori)").unwrap();
        let titan = t.value(r, "init (titan)").unwrap();
        assert!(cori / titan >= 10.0, "{cori} vs {titan}");
    }
}
