//! # bench — the benchmark harness regenerating the paper's evaluation
//!
//! Every table and figure of the SC16 paper has a regeneration function
//! here, composed from the calibrated `perfmodel` cost models (paper
//! scale) and, where a workload fits on a workstation, real threaded
//! runs for validation. The `experiments` binary prints the same rows
//! the paper reports; criterion benches under `benches/` measure the
//! real code paths behind each figure.

pub mod brokerbench;
pub mod figures;
pub mod hotpath;
pub mod images;
pub mod offloadbench;
pub mod perfgate;
pub mod querybench;
pub mod realruns;
pub mod table;

pub use table::Table;

/// All experiment identifiers, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "fig11", "fig12",
    "table2", "fig15", "fig16", "fig17",
];

/// Regenerate one experiment by id.
pub fn run_experiment(id: &str) -> Option<Table> {
    match id {
        "fig3" => Some(figures::fig3()),
        "fig4" => Some(figures::fig4()),
        "fig5" => Some(figures::fig5()),
        "fig6" => Some(figures::fig6()),
        "fig7" => Some(figures::fig7()),
        "fig8" => Some(figures::fig8()),
        "fig9" => Some(figures::fig9()),
        "fig10" => Some(figures::fig10()),
        "table1" => Some(figures::table1()),
        "fig11" => Some(figures::fig11()),
        "fig12" => Some(figures::fig12()),
        "table2" => Some(figures::table2()),
        "fig15" => Some(figures::fig15()),
        "fig16" => Some(figures::fig16()),
        "fig17" => Some(figures::fig17()),
        _ => None,
    }
}
