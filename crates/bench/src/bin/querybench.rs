//! Measure the interactive-query fan-out metrics and write
//! `BENCH_query.json`.
//!
//! Usage: `cargo run --release -p bench --bin querybench [-- --out PATH]`
//!
//! Times the re-evaluate-per-client fan-out (what serving N polling
//! clients without the endpoint costs) against the evaluate-once
//! broker publish, and records the fairness ratio plus the eviction /
//! queue-bound robustness invariants. Only dimensionless entries are
//! gated, so a baseline recorded on one machine still gates runs on
//! another.

use bench::querybench;

fn main() {
    let mut out = String::from("BENCH_query.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    eprintln!("usage: querybench [--out PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: querybench [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "querybench: {} clients, {} steps, {} doubles/field, {} bins",
        querybench::CLIENTS,
        querybench::STEPS,
        querybench::FIELD_DOUBLES,
        querybench::BINS
    );
    let report = querybench::run();
    let json = report.to_json();
    print!("{json}");
    std::fs::write(&out, &json).expect("write report");
    eprintln!(
        "querybench: serve speedup {:.2}x (per-client {:.4}s -> shared {:.4}s), \
         fairness {:.3}, eviction {}, queue bound {}; wrote {out}",
        report.serve_speedup(),
        report.per_client_s,
        report.shared_s,
        report.fairness,
        report.eviction_works,
        report.queue_bounded
    );
}
