//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments all            # every table/figure, printed + CSV
//! experiments fig6 table2    # a subset
//! experiments images         # render Figs. 13/14/18 as PNGs
//! experiments validate       # small-scale real-mode validation runs
//! experiments --out results  # choose the output directory
//! ```

use std::path::PathBuf;

use bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    let mut requests: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: experiments [--out DIR] [all|validate|images|{}]",
                    ALL_EXPERIMENTS.join("|")
                );
                return;
            }
            other => requests.push(other.to_string()),
        }
    }
    if requests.is_empty() {
        requests.push("all".to_string());
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut ids: Vec<String> = Vec::new();
    for r in &requests {
        match r.as_str() {
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "images" => {
                println!("rendering image figures into {} …", out_dir.display());
                for p in bench::images::render_all(&out_dir) {
                    println!("  wrote {}", p.display());
                }
            }
            "validate" => validate(),
            other => ids.push(other.to_string()),
        }
    }

    for id in ids {
        match run_experiment(&id) {
            Some(table) => {
                println!("{}", table.to_text());
                let csv_path = out_dir.join(format!("{id}.csv"));
                std::fs::write(&csv_path, table.to_csv()).expect("write csv");
                println!("(csv: {})\n", csv_path.display());
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --help)");
                std::process::exit(2);
            }
        }
    }
}

/// Small-scale real-mode validation: measure on this machine the shapes
/// the models assert at paper scale.
fn validate() {
    println!("== real-mode validation (this machine, thread-backed ranks) ==");
    let (original, sensei) = bench::realruns::measure_sensei_overhead(4, 24, 10);
    println!(
        "sensei-vs-subroutine (4 ranks, 24^3, 10 steps): direct {original:.4}s, bridge {sensei:.4}s, \
         overhead {:+.1}%",
        100.0 * (sensei - original) / original
    );

    let dir = std::env::temp_dir().join(format!("sensei_validate_{}", std::process::id()));
    let (vtk, coll) = bench::realruns::measure_write_paths(4, 32, &dir);
    println!("write paths (4 ranks, 32^3): file-per-rank {vtk:.4}s, collective {coll:.4}s");
    let _ = std::fs::remove_dir_all(&dir);

    let (fixed, stored, nf, ns) = bench::realruns::measure_png_ablation(2900, 725);
    println!(
        "png 2900x725: zlib(fixed) {fixed:.3}s → {nf} B; stored {stored:.3}s → {ns} B \
         (compression is the dominant serial cost, cf. Table 2)"
    );

    let (inline, staged) = bench::realruns::measure_staging_penalty(2, 24, 6);
    println!(
        "staging (2 writers + 2 endpoints, 24^3): inline histogram {inline:.4}s/step, \
         staged writer {staged:.4}s/step"
    );
}
