//! Measure the staging-broker fan-out metrics and write
//! `BENCH_broker.json`.
//!
//! Usage: `cargo run --release -p bench --bin brokerbench [-- --out PATH]`
//!
//! Times the per-consumer deep-copy fan-out (the thread-per-link model
//! the broker replaced) against the `Arc`-shared broker publish, and
//! records the fairness ratio plus the eviction / queue-bound
//! robustness invariants. Only dimensionless entries are gated, so a
//! baseline recorded on one machine still gates runs on another.

use bench::brokerbench;

fn main() {
    let mut out = String::from("BENCH_broker.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    eprintln!("usage: brokerbench [--out PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: brokerbench [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "brokerbench: {} subscribers, {} steps, {} doubles/payload",
        brokerbench::SUBSCRIBERS,
        brokerbench::STEPS,
        brokerbench::PAYLOAD_DOUBLES
    );
    let report = brokerbench::run();
    let json = report.to_json();
    print!("{json}");
    std::fs::write(&out, &json).expect("write report");
    eprintln!(
        "brokerbench: fan-out speedup {:.2}x (copy {:.4}s -> share {:.4}s), \
         fairness {:.3}, eviction {}, queue bound {}; wrote {out}",
        report.fanout_speedup(),
        report.clone_fanout_s,
        report.broker_fanout_s,
        report.fairness,
        report.eviction_works,
        report.queue_bounded
    );
}
