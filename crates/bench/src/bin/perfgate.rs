//! Rerun the hot-path suite and gate it against the checked-in baseline.
//!
//! Usage:
//!   cargo run --release -p bench --features track-alloc --bin perfgate \
//!     [-- --baseline PATH] [--out PATH] [--tolerance PCT]
//!
//! Loads the dimensionless metrics (speedups, auto-vs-best ratio,
//! sanitizer overhead, arena allocation delta) from the baseline JSON,
//! measures them fresh with the same warmup + median-of-N methodology,
//! and exits non-zero if any metric regressed past the tolerance. The
//! fresh report is always written to `--out` so CI can upload it as an
//! artifact when the gate fails.

use bench::{brokerbench, hotpath, offloadbench, perfgate, querybench};

const USAGE: &str = "usage: perfgate [--baseline PATH] [--out PATH] [--tolerance PCT] \
                     [--broker-baseline PATH] [--broker-out PATH] \
                     [--offload-baseline PATH] [--offload-out PATH] \
                     [--query-baseline PATH] [--query-out PATH]";

fn main() {
    let mut baseline_path = String::from("BENCH_hotpath.json");
    let mut out = String::from("BENCH_hotpath.fresh.json");
    let mut broker_baseline_path = String::from("BENCH_broker.json");
    let mut broker_out = String::from("BENCH_broker.fresh.json");
    let mut offload_baseline_path = String::from("BENCH_offload.json");
    let mut offload_out = String::from("BENCH_offload.fresh.json");
    let mut query_baseline_path = String::from("BENCH_query.json");
    let mut query_out = String::from("BENCH_query.fresh.json");
    let mut tolerance = perfgate::DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                eprintln!("{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = take("--baseline"),
            "--out" => out = take("--out"),
            "--broker-baseline" => broker_baseline_path = take("--broker-baseline"),
            "--broker-out" => broker_out = take("--broker-out"),
            "--offload-baseline" => offload_baseline_path = take("--offload-baseline"),
            "--offload-out" => offload_out = take("--offload-out"),
            "--query-baseline" => query_baseline_path = take("--query-baseline"),
            "--query-out" => query_out = take("--query-out"),
            "--tolerance" => {
                tolerance = take("--tolerance")
                    .parse::<f64>()
                    .map(|pct| pct / 100.0)
                    .unwrap_or_else(|e| {
                        eprintln!("--tolerance must be a percentage: {e}");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let doc = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = perfgate::Metrics::from_json(&doc).unwrap_or_else(|e| {
        eprintln!("perfgate: {e} — regenerate it with the hotpath binary");
        std::process::exit(2);
    });

    // The same configuration the baseline was recorded with.
    let (grid, oscillators, steps, threads) = ([64, 64, 64], 48, 8, 0);
    eprintln!(
        "perfgate: measuring grid {grid:?}, {oscillators} oscillators, {steps} steps \
         (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let report = hotpath::run(grid, oscillators, steps, threads);
    std::fs::write(&out, report.to_json()).expect("write fresh report");
    let fresh = perfgate::Metrics::from_report(&report);

    let result = perfgate::gate(&baseline, &fresh, tolerance);

    // The broker fan-out metrics gate alongside the hot paths.
    let broker_doc = std::fs::read_to_string(&broker_baseline_path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read broker baseline {broker_baseline_path}: {e}");
        std::process::exit(2);
    });
    let broker_baseline = perfgate::BrokerMetrics::from_json(&broker_doc).unwrap_or_else(|e| {
        eprintln!("perfgate: {e} — regenerate it with the brokerbench binary");
        std::process::exit(2);
    });
    eprintln!(
        "perfgate: measuring broker fan-out ({} subscribers, {} steps)",
        brokerbench::SUBSCRIBERS,
        brokerbench::STEPS
    );
    let broker_report = brokerbench::run();
    std::fs::write(&broker_out, broker_report.to_json()).expect("write fresh broker report");
    let broker_fresh = perfgate::BrokerMetrics::from_report(&broker_report);
    let broker_result = perfgate::gate_broker(&broker_baseline, &broker_fresh, tolerance);

    // The async-offload metrics gate alongside the hot paths too.
    let offload_doc = std::fs::read_to_string(&offload_baseline_path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read offload baseline {offload_baseline_path}: {e}");
        std::process::exit(2);
    });
    let offload_baseline = perfgate::OffloadMetrics::from_json(&offload_doc).unwrap_or_else(|e| {
        eprintln!("perfgate: {e} — regenerate it with the offloadbench binary");
        std::process::exit(2);
    });
    eprintln!(
        "perfgate: measuring analysis offload ({} ranks, {} steps)",
        offloadbench::RANKS,
        offloadbench::STEPS
    );
    let offload_report = offloadbench::run();
    std::fs::write(&offload_out, offload_report.to_json()).expect("write fresh offload report");
    let offload_fresh = perfgate::OffloadMetrics::from_report(&offload_report);
    let offload_result = perfgate::gate_offload(&offload_baseline, &offload_fresh, tolerance);

    // The interactive-query fan-out metrics gate alongside the rest.
    let query_doc = std::fs::read_to_string(&query_baseline_path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read query baseline {query_baseline_path}: {e}");
        std::process::exit(2);
    });
    let query_baseline = perfgate::QueryMetrics::from_json(&query_doc).unwrap_or_else(|e| {
        eprintln!("perfgate: {e} — regenerate it with the querybench binary");
        std::process::exit(2);
    });
    eprintln!(
        "perfgate: measuring query fan-out ({} clients, {} steps)",
        querybench::CLIENTS,
        querybench::STEPS
    );
    let query_report = querybench::run();
    std::fs::write(&query_out, query_report.to_json()).expect("write fresh query report");
    let query_fresh = perfgate::QueryMetrics::from_report(&query_report);
    let query_result = perfgate::gate_query(&query_baseline, &query_fresh, tolerance);

    let checked = result.checked.len()
        + broker_result.checked.len()
        + offload_result.checked.len()
        + query_result.checked.len();
    let failures: Vec<&String> = result
        .failures
        .iter()
        .chain(broker_result.failures.iter())
        .chain(offload_result.failures.iter())
        .chain(query_result.failures.iter())
        .collect();
    for line in result
        .checked
        .iter()
        .chain(broker_result.checked.iter())
        .chain(offload_result.checked.iter())
        .chain(query_result.checked.iter())
    {
        eprintln!("perfgate: {line}");
    }
    if failures.is_empty() {
        eprintln!("perfgate: PASS ({checked} metrics checked)");
    } else {
        for f in &failures {
            eprintln!("perfgate: FAIL — {f}");
        }
        eprintln!(
            "perfgate: {} of {checked} metrics regressed; fresh reports at {out}, {broker_out}, \
             {offload_out}, and {query_out}",
            failures.len(),
        );
        std::process::exit(1);
    }
}
