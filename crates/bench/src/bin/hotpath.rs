//! Measure the per-step in situ hot path and write `BENCH_hotpath.json`.
//!
//! Usage: `cargo run --release -p bench --bin hotpath [-- --out PATH]`
//!
//! Runs the sparse-deck step loop (naive vs support-culled vs
//! culled+threads), the streaming histogram (serial vs chunk-parallel),
//! and the vector allreduce (binomial tree vs reduce-scatter/allgather),
//! then writes the timings and speedups as JSON. On a single-core host
//! the step-loop win comes from support culling alone; with more cores
//! the threaded kernel stacks on top.

use bench::hotpath;

fn main() {
    let mut out = String::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    eprintln!("usage: hotpath [--out PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: hotpath [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let grid = [64, 64, 64];
    let oscillators = 48;
    let steps = 8;
    let threads = 0; // 0 = every available core

    eprintln!(
        "hotpath: grid {grid:?}, {oscillators} oscillators, {steps} steps, threads {threads} (0 = all cores)"
    );
    let report = hotpath::run(grid, oscillators, steps, threads);
    let json = report.to_json();
    print!("{json}");
    std::fs::write(&out, &json).expect("write report");
    eprintln!(
        "hotpath: step speedup {:.2}x (naive {:.3}s -> culled+threads {:.3}s), wrote {out}",
        report.step.speedup(),
        report.step.baseline_s,
        report.step.optimized_s
    );
}
