//! Measure the async-offload executor metrics and write
//! `BENCH_offload.json`.
//!
//! Usage: `cargo run --release -p bench --bin offloadbench [-- --out PATH]`
//!
//! Times the synchronous in situ step loop against the offloaded one
//! (analyses on device workers overlapping the simulation), and
//! records the measured overlap efficiency, the H2D transfer-bytes
//! ratio against the ideal one-snapshot-per-step cost, and whether the
//! offloaded artifacts are bitwise identical to the host run's. Only
//! dimensionless entries are gated, so a baseline recorded on one
//! machine still gates runs on another.

use bench::offloadbench;

fn main() {
    let mut out = String::from("BENCH_offload.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    eprintln!("usage: offloadbench [--out PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: offloadbench [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "offloadbench: {} ranks, grid {:?}, {} steps",
        offloadbench::RANKS,
        offloadbench::GRID,
        offloadbench::STEPS
    );
    let report = offloadbench::run();
    let json = report.to_json();
    print!("{json}");
    std::fs::write(&out, &json).expect("write report");
    eprintln!(
        "offloadbench: overlap efficiency {:.3}, step speedup {:.2}x \
         (sync {:.4}s -> offload {:.4}s), transfer ratio {:.3}, bitwise {}; wrote {out}",
        report.efficiency,
        report.step_speedup(),
        report.sync_s,
        report.offload_s,
        report.transfer_ratio(),
        report.bitwise_identical
    );
}
