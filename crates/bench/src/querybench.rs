//! Interactive-query microbench: the dimensionless metrics the perf
//! gate tracks for the query endpoint (`BENCH_query.json`).
//!
//! The interesting comparison is what serving N polling clients
//! *without* the endpoint would cost: each client re-evaluates the
//! query against the step's field and keeps a private copy of the
//! answer, so N clients cost N histogram folds per step. The query
//! server evaluates once and fans the shared response out through the
//! broker — the per-client cost is a refcount bump. The gated numbers:
//!
//! * `serve.speedup` — per-client re-evaluation baseline over the
//!   evaluate-once broker fan-out, same field / client count / steps;
//! * `fairness.min_over_max_delivered` — min/max responses delivered
//!   across all polling clients (1.0 = perfectly fair dispatch);
//! * `robustness.eviction_works` / `robustness.queue_bounded` — a
//!   query client that stops polling is evicted within its deadline,
//!   and the probed queue high-water never exceeds the configured
//!   depth.

use std::collections::VecDeque;
use std::time::Duration;

use adios::{Broker, BrokerConfig, TopicKey};
use probe::time::Wall;
use query::{QueryResponse, ResponsePayload};

use crate::hotpath::{median_of, TIMED_ROUNDS, WARMUP_ROUNDS};

/// Polling clients served in the fan-out legs.
pub const CLIENTS: usize = 48;
/// Steps served per timed round.
pub const STEPS: usize = 16;
/// Field size, in f64 elements (32 KiB).
pub const FIELD_DOUBLES: usize = 4096;
/// Histogram bins per response.
pub const BINS: usize = 32;

fn field_values() -> Vec<f64> {
    (0..FIELD_DOUBLES)
        .map(|i| (i % 257) as f64 * 0.25)
        .collect()
}

/// One histogram evaluation over the field — the per-step work a query
/// server does once and the baseline does once *per client*.
fn evaluate(field: &[f64], step: u64) -> QueryResponse {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in field {
        min = min.min(v);
        max = max.max(v);
    }
    let width = if max > min {
        (max - min) / BINS as f64
    } else {
        1.0
    };
    let mut counts = vec![0u64; BINS];
    for &v in field {
        let b = (((v - min) / width) as usize).min(BINS - 1);
        counts[b] += 1;
    }
    QueryResponse {
        client: 0,
        step,
        time: step as f64,
        payload: ResponsePayload::Histogram { min, max, counts },
    }
}

/// The measured query report; every gated entry is dimensionless.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Per-client re-evaluation fan-out (the replaced model), seconds.
    pub per_client_s: f64,
    /// Evaluate-once broker fan-out over the same work, seconds.
    pub shared_s: f64,
    /// min/max delivered across clients after the broker leg.
    pub fairness: f64,
    /// A non-polling client was evicted within its deadline.
    pub eviction_works: bool,
    /// The probed queue high-water stayed within the configured depth.
    pub queue_bounded: bool,
}

impl QueryReport {
    /// Re-evaluate-per-client baseline over the evaluate-once path.
    pub fn serve_speedup(&self) -> f64 {
        self.per_client_s / self.shared_s
    }

    /// Serialize in the flat one-line-per-section layout the perf gate
    /// scrapes (same conventions as `BENCH_broker.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"clients\": {CLIENTS}, \"steps\": {STEPS}, \
             \"field_doubles\": {FIELD_DOUBLES}, \"bins\": {BINS}, \
             \"warmup_rounds\": {WARMUP_ROUNDS}, \"timed_rounds\": {TIMED_ROUNDS}}},\n",
        ));
        s.push_str(&format!(
            "  \"serve\": {{\"per_client_s\": {:.6}, \"shared_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.per_client_s,
            self.shared_s,
            self.serve_speedup()
        ));
        s.push_str(&format!(
            "  \"fairness\": {{\"min_over_max_delivered\": {:.3}}},\n",
            self.fairness
        ));
        s.push_str(&format!(
            "  \"robustness\": {{\"eviction_works\": {}, \"queue_bounded\": {}}}\n",
            self.eviction_works, self.queue_bounded
        ));
        s.push('}');
        s.push('\n');
        s
    }
}

/// Time the replaced model: every client re-runs the evaluation and
/// keeps a private copy of the response.
fn time_per_client() -> f64 {
    let field = field_values();
    median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let mut queues: Vec<VecDeque<QueryResponse>> =
            (0..CLIENTS).map(|_| VecDeque::new()).collect();
        let t0 = Wall::now();
        for step in 0..STEPS {
            for q in queues.iter_mut() {
                q.push_back(evaluate(&field, step as u64));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(queues.iter().all(|q| q.len() == STEPS));
        dt
    })
}

/// Time the endpoint model: evaluate once, fan the shared response out
/// to every client's bounded queue. Returns `(seconds, fairness)`.
fn time_shared() -> (f64, f64) {
    let field = field_values();
    let mut fairness = 0.0;
    let topic = TopicKey::new("query/hist", 0);
    let secs = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let broker: Broker<QueryResponse> = Broker::new(BrokerConfig {
            queue_depth: STEPS,
            max_subscribers: CLIENTS,
            eviction_deadline: Duration::from_secs(10),
        });
        let subs: Vec<_> = (0..CLIENTS)
            .map(|i| {
                broker
                    .subscribe_labeled(topic.clone(), format!("client-{i:02}"))
                    .expect("admitted")
            })
            .collect();
        let t0 = Wall::now();
        for step in 0..STEPS {
            let report = broker.publish(&topic, evaluate(&field, step as u64));
            debug_assert_eq!(report.delivered, CLIENTS);
        }
        let dt = t0.elapsed().as_secs_f64();
        fairness = broker.fairness(&topic).expect("live clients");
        drop(subs);
        dt
    });
    (secs, fairness)
}

/// Untimed robustness probe: a query client that stops polling next to
/// a draining one must be evicted within its deadline, while the queue
/// high-water gauge respects the configured depth.
fn check_robustness() -> (bool, bool) {
    const DEPTH: usize = 2;
    let field = field_values();
    let broker: Broker<QueryResponse> = Broker::new(BrokerConfig {
        queue_depth: DEPTH,
        max_subscribers: 4,
        eviction_deadline: Duration::from_millis(5),
    });
    let probe = probe::enabled();
    broker.attach_probe(probe.clone());
    let topic = TopicKey::new("query/hist", 0);
    let stalled = broker
        .subscribe_labeled(topic.clone(), "stalled")
        .expect("admitted");
    let live = broker
        .subscribe_labeled(topic.clone(), "live")
        .expect("admitted");
    for step in 0..DEPTH + 1 {
        broker.publish(&topic, evaluate(&field, step as u64));
        while live.try_next().is_some() {}
    }
    let eviction_works = stalled.is_evicted() && broker.take_evictions().len() == 1;
    let queue_bounded = probe
        .snapshot()
        .gauge("broker/query/hist#0/queue_peak")
        .is_some_and(|peak| peak <= DEPTH as u64);
    (eviction_works, queue_bounded)
}

/// Measure everything.
pub fn run() -> QueryReport {
    let per_client_s = time_per_client();
    let (shared_s, fairness) = time_shared();
    let (eviction_works, queue_bounded) = check_robustness();
    QueryReport {
        per_client_s,
        shared_s,
        fairness,
        eviction_works,
        queue_bounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_measures_and_serializes() {
        let r = run();
        assert!(r.per_client_s > 0.0 && r.shared_s > 0.0);
        assert!(r.serve_speedup() > 1.0, "evaluating once beats N times");
        assert!(
            (r.fairness - 1.0).abs() < 1e-9,
            "all clients drained equally"
        );
        assert!(r.eviction_works);
        assert!(r.queue_bounded);
        let json = r.to_json();
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"eviction_works\": true"));
    }
}
