//! Regeneration of the paper's image figures (13, 14, 18) as real
//! renders from the proxies, written as PNG files.

use std::path::Path;

use catalyst::{CatalystSliceAnalysis, SliceOutput, SlicePipeline};
use libsim::{LibsimAnalysis, Session};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use render::camera::Camera;
use render::color::{Color, Colormap};
use render::deflate::Mode;
use render::framebuffer::Framebuffer;
use render::png::encode_framebuffer;
use render::raster::{fill_triangle, Vertex};
use science::{
    Leslie, LeslieAdaptor, LeslieConfig, Nyx, NyxAdaptor, NyxConfig, Phasta, PhastaAdaptor,
    PhastaConfig,
};
use sensei::AnalysisAdaptor as _;
use sensei::DataAdaptor as _;

/// Render a Catalyst slice of the oscillator miniapp (quickstart image).
pub fn render_oscillator_slice(dir: &Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create image dir");
    let dir2 = dir.to_path_buf();
    let deck = format_deck(&demo_oscillators());
    World::run(4, move |comm| {
        let cfg = SimConfig {
            grid: [33, 33, 33],
            steps: 10,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root_deck);
        let mut pipe = SlicePipeline::new("data", 2, 16);
        pipe.width = 640;
        pipe.height = 480;
        pipe.output = SliceOutput::Directory(dir2.clone());
        let mut analysis = CatalystSliceAnalysis::new(pipe);
        for _ in 0..10 {
            sim.step(comm);
        }
        analysis.execute(&OscillatorAdaptor::new(&sim), comm);
    });
    dir.join("slice_00010.png")
}

/// Fig. 14 — the TML's evolution: Libsim renders (isosurfaces + slices)
/// at an early and a later step.
pub fn render_leslie_evolution(dir: &Path) -> Vec<std::path::PathBuf> {
    std::fs::create_dir_all(dir).expect("create image dir");
    let dir2 = dir.to_path_buf();
    World::run(2, move |comm| {
        let mut sim = Leslie::new(
            comm,
            LeslieConfig {
                grid: [32, 33, 16],
                epsilon: 0.15,
                ..LeslieConfig::default()
            },
        );
        let session = Session::parse(
            "image 480 480\nfrequency 1\nplot isosurface vorticity levels=0.4,0.6\nplot pseudocolor vorticity axis=z index=4\n",
        )
        .expect("session");
        let mut libsim = LibsimAnalysis::new(session, Path::new("/nonexistent/.visitrc"))
            .with_output_dir(dir2.clone());
        // Early state.
        libsim.execute(&LeslieAdaptor::new(&sim), comm);
        // Evolve and render again.
        for _ in 0..30 {
            sim.step(comm);
        }
        libsim.execute(&LeslieAdaptor::new(&sim), comm);
    });
    vec![dir.join("libsim_00000.png"), dir.join("libsim_00030.png")]
}

/// Fig. 18 — Nyx density slices at two separated steps (feature
/// tracking needs the in-between frames in situ provides).
pub fn render_nyx_slices(dir: &Path) -> Vec<std::path::PathBuf> {
    std::fs::create_dir_all(dir).expect("create image dir");
    let dir2 = dir.to_path_buf();
    World::run(4, move |comm| {
        let mut sim = Nyx::new(
            comm,
            NyxConfig {
                grid: [24, 24, 24],
                sigma_v: 0.3,
                ..NyxConfig::default()
            },
        );
        let mut pipe = SlicePipeline::new("density", 2, 12);
        pipe.width = 480;
        pipe.height = 480;
        pipe.output = SliceOutput::Directory(dir2.clone());
        let mut analysis = CatalystSliceAnalysis::new(pipe);
        analysis.execute(&NyxAdaptor::new(&sim), comm);
        for _ in 0..8 {
            sim.step(comm);
        }
        analysis.execute(&NyxAdaptor::new(&sim), comm);
    });
    vec![dir.join("slice_00000.png"), dir.join("slice_00008.png")]
}

/// Fig. 13 — PHASTA slice through the wing: cut the tet mesh with a
/// plane and rasterize the velocity-magnitude pseudocolor.
pub fn render_phasta_cut(dir: &Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create image dir");
    let out = dir.join("phasta_cut.png");
    let out2 = out.clone();
    World::run(2, move |comm| {
        let mut sim = Phasta::new(comm, PhastaConfig::default());
        for _ in 0..20 {
            sim.step(comm);
        }
        let adaptor = PhastaAdaptor::new(&sim);
        let mesh = adaptor.full_mesh();
        let datamodel::DataSet::Unstructured(grid) = &mesh else {
            panic!("unstructured")
        };
        // Horizontal cut at z = 0.3 (through the tail).
        let tris = catalyst::cutter::cut_tets(grid, "velmag", [0.0, 0.0, 1.0], 0.3);
        let cam = Camera::ortho(0.0, 2.0, 0.0, 1.0);
        let cmap = Colormap::cool_warm();
        let (w, h) = (640usize, 320usize);
        let mut fb = Framebuffer::new(w, h);
        // Global scalar range for a shared color scale.
        let local_max = tris.iter().flat_map(|t| t.scalars).fold(0.0f64, f64::max);
        let global_max = comm.allreduce_scalar(local_max, f64::max).max(1e-9);
        for t in &tris {
            let verts: Vec<Vertex> = t
                .points
                .iter()
                .zip(t.scalars.iter())
                .map(|(p, s)| {
                    let (x, y, z) = {
                        let (px, py, pz) = (p[0], p[1], p[2]);
                        let (sx, sy, d) = cam.project([px, py, pz], w, h).unwrap();
                        (sx, sy, d)
                    };
                    Vertex {
                        x,
                        y,
                        z,
                        color: cmap.map_range(*s, 0.0, global_max),
                    }
                })
                .collect();
            fill_triangle(&mut fb, verts[0], verts[1], verts[2]);
        }
        let composited = render::composite::binary_swap(comm, fb);
        if let Some(final_fb) = composited {
            let png = encode_framebuffer(&final_fb, Color::WHITE, Mode::Fixed);
            std::fs::write(&out2, png).expect("write phasta cut");
        }
    });
    out
}

/// Render every paper image figure into `dir`; returns the paths.
pub fn render_all(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut out = vec![render_oscillator_slice(dir)];
    out.extend(render_leslie_evolution(dir));
    out.extend(render_nyx_slices(dir));
    out.push(render_phasta_cut(dir));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use render::png::decode_rgb;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bench_img_{}_{tag}", std::process::id()))
    }

    #[test]
    fn oscillator_slice_png_is_valid() {
        let dir = tmp("osc");
        let path = render_oscillator_slice(&dir);
        let bytes = std::fs::read(&path).expect("png exists");
        let (w, h, _) = decode_rgb(&bytes).expect("valid png");
        assert_eq!((w, h), (640, 480));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leslie_evolution_frames_differ() {
        let dir = tmp("leslie");
        let paths = render_leslie_evolution(&dir);
        let a = std::fs::read(&paths[0]).unwrap();
        let b = std::fs::read(&paths[1]).unwrap();
        let (_, _, rgb_a) = decode_rgb(&a).unwrap();
        let (_, _, rgb_b) = decode_rgb(&b).unwrap();
        assert_ne!(rgb_a, rgb_b, "the flow evolved between frames");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn phasta_cut_shows_wake_structure() {
        let dir = tmp("phasta");
        let path = render_phasta_cut(&dir);
        let bytes = std::fs::read(&path).unwrap();
        let (w, h, rgb) = decode_rgb(&bytes).unwrap();
        assert_eq!((w, h), (640, 320));
        // The cut paints a nontrivial portion of the frame in non-white.
        let painted = rgb.chunks(3).filter(|p| *p != [255, 255, 255]).count();
        assert!(painted > w * h / 4, "painted {painted}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
