//! The per-step in situ hot path, measured end to end on real code:
//! simulation step (naive all-pairs vs support-culled vs culled+threads),
//! streaming histogram (serial vs chunk-parallel), and the bin/lag
//! vector allreduce (binomial tree vs reduce-scatter/allgather).
//!
//! The `hotpath` binary runs these on a sparse oscillator deck — many
//! small-radius oscillators whose supports cover a small fraction of the
//! domain, the regime support culling exists for — and writes
//! `BENCH_hotpath.json` with wall times and speedups.

use std::sync::Arc;

use probe::time::Wall;

use minimpi::{SchedPolicy, World, WorldBuilder};
use oscillator::{
    format_deck, Oscillator, OscillatorAdaptor, OscillatorKind, SimConfig, Simulation,
};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor;
use sensei::{Bridge, Probe, RunReport};

/// A sparse deck: `n` small-radius oscillators scattered over the unit
/// cube. Support radius ≈ 38.6 × radius, so at radius ≈ 0.005 each
/// oscillator touches a few percent of the cells instead of all of them.
pub fn sparse_deck(n: usize) -> String {
    let oscillators: Vec<Oscillator> = (0..n)
        .map(|i| Oscillator {
            kind: match i % 3 {
                0 => OscillatorKind::Periodic,
                1 => OscillatorKind::Damped,
                _ => OscillatorKind::Decaying,
            },
            center: [
                (i as f64 * 0.377).fract(),
                (i as f64 * 0.617).fract(),
                (i as f64 * 0.839).fract(),
            ],
            radius: 0.004 + (i % 5) as f64 * 0.0008,
            omega: 1.0 + (i % 7) as f64,
            zeta: 0.08 * (i % 4) as f64,
        })
        .collect();
    format_deck(&oscillators)
}

/// One measured section: seconds for the baseline and optimized paths.
#[derive(Clone, Copy, Debug)]
pub struct Section {
    pub baseline_s: f64,
    pub optimized_s: f64,
}

impl Section {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }
}

/// The full hot-path report.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    pub grid: [usize; 3],
    pub oscillators: usize,
    pub steps: usize,
    pub threads: usize,
    /// Step loop: naive all-pairs kernel vs culled + threaded kernel.
    pub step: Section,
    /// Culled kernel, single thread (isolates the algorithmic win).
    pub step_culled_serial_s: f64,
    /// Histogram executes: serial streaming vs chunk-parallel streaming.
    pub histogram: Section,
    pub histogram_bins: usize,
    /// Vector allreduce: binomial tree vs reduce-scatter/allgather.
    pub allreduce: Section,
    pub allreduce_ranks: usize,
    pub allreduce_elements: usize,
    pub allreduce_rounds: usize,
    /// Sanitizer overhead: the same seeded oscillator + histogram
    /// bridge run on 8 ranks with the happens-before sanitizer off
    /// (baseline) vs on (optimized field holds the sanitized time, so
    /// `speedup()` < 1 reads as the overhead factor).
    pub sanitizer: Section,
    pub sanitizer_ranks: usize,
    /// The disabled path is bitwise-identical: rank 0's histogram from
    /// a sanitizer-off seeded run equals the sanitizer-on one.
    pub sanitizer_bitwise_identical: bool,
    /// Cross-rank observability report of an instrumented bridge run
    /// over the same deck: per-phase min/mean/max/stddev, collective
    /// message/byte counters, per-rank memory high-water.
    pub run_report: RunReport,
}

impl HotpathReport {
    /// Serialize as pretty-printed JSON (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"grid\": [{}, {}, {}], \"oscillators\": {}, \"steps\": {}, \"threads\": {}}},\n",
            self.grid[0], self.grid[1], self.grid[2], self.oscillators, self.steps, self.threads
        ));
        s.push_str(&format!(
            "  \"step\": {{\"naive_s\": {:.6}, \"culled_serial_s\": {:.6}, \"culled_threaded_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.step.baseline_s,
            self.step_culled_serial_s,
            self.step.optimized_s,
            self.step.speedup()
        ));
        s.push_str(&format!(
            "  \"histogram\": {{\"bins\": {}, \"serial_s\": {:.6}, \"threaded_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.histogram_bins,
            self.histogram.baseline_s,
            self.histogram.optimized_s,
            self.histogram.speedup()
        ));
        s.push_str(&format!(
            "  \"allreduce\": {{\"ranks\": {}, \"elements\": {}, \"rounds\": {}, \"tree_s\": {:.6}, \"rsag_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.allreduce_ranks,
            self.allreduce_elements,
            self.allreduce_rounds,
            self.allreduce.baseline_s,
            self.allreduce.optimized_s,
            self.allreduce.speedup()
        ));
        s.push_str(&format!(
            "  \"sanitizer\": {{\"ranks\": {}, \"off_s\": {:.6}, \"on_s\": {:.6}, \"overhead_pct\": {:.2}, \"bitwise_identical\": {}}},\n",
            self.sanitizer_ranks,
            self.sanitizer.baseline_s,
            self.sanitizer.optimized_s,
            (self.sanitizer.optimized_s / self.sanitizer.baseline_s - 1.0) * 100.0,
            self.sanitizer_bitwise_identical
        ));
        s.push_str(&format!(
            "  \"run_report\": {}\n",
            self.run_report.to_json()
        ));
        s.push_str("}\n");
        s
    }
}

/// One probed bridge run — sim + histogram over `steps` on `ranks`
/// thread-backed ranks — returning rank 0's aggregated `RunReport` (the
/// per-phase breakdown embedded in `BENCH_hotpath.json`).
pub fn probed_run(deck: &str, grid: [usize; 3], steps: usize, ranks: usize) -> RunReport {
    let deck = deck.to_string();
    World::run(ranks, move |comm| {
        let cfg = SimConfig {
            grid,
            steps,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root_deck);
        let mut bridge = Bridge::with_probe(Probe::enabled());
        bridge.register(Box::new(HistogramAnalysis::new("data", 64)));
        for _ in 0..steps {
            sim.step(comm);
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        bridge.finalize(comm)
    })
    .remove(0)
}

/// Time `steps` simulation steps through `step_fn` on a single rank.
fn time_steps(
    deck: &str,
    grid: [usize; 3],
    steps: usize,
    step_fn: impl Fn(&mut Simulation, &minimpi::Comm) + Send + Sync + 'static,
) -> f64 {
    let deck = deck.to_string();
    World::run(1, move |comm| {
        let cfg = SimConfig {
            grid,
            steps,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, Some(deck.as_str()));
        let t0 = Wall::now();
        for _ in 0..steps {
            step_fn(&mut sim, comm);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// Time `executes` histogram passes over a stepped field.
fn time_histogram(
    deck: &str,
    grid: [usize; 3],
    bins: usize,
    threads: usize,
    executes: usize,
) -> f64 {
    let deck = deck.to_string();
    World::run(1, move |comm| {
        let cfg = SimConfig {
            grid,
            steps: 1,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, Some(deck.as_str()));
        sim.step(comm);
        let mut hist = HistogramAnalysis::new("data", bins).with_threads(threads);
        let adaptor = OscillatorAdaptor::new(&sim);
        let t0 = Wall::now();
        for _ in 0..executes {
            hist.execute(&adaptor, comm);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// Time `rounds` vector allreduces of `elements` f64 on `ranks` ranks.
fn time_allreduce(ranks: usize, elements: usize, rounds: usize, rsag: bool) -> f64 {
    World::run(ranks, move |comm| {
        let v: Vec<f64> = (0..elements)
            .map(|i| (i * (comm.rank() + 1)) as f64)
            .collect();
        let t0 = Wall::now();
        for _ in 0..rounds {
            let out = if rsag {
                comm.allreduce_vec_rsag(v.clone(), |a, b| a + b)
            } else {
                comm.allreduce_vec(v.clone(), |a, b| a + b)
            };
            assert_eq!(out.len(), elements);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// One seeded oscillator + histogram bridge run on `ranks` ranks,
/// optionally with a happens-before sanitizer session installed
/// (`Mode::Collect`, asserted clean). Returns the wall time and rank
/// 0's histogram — the seeded schedule makes the histogram a bitwise
/// witness that the sanitizer never perturbs results.
fn time_sanitized_run(
    deck: &str,
    grid: [usize; 3],
    steps: usize,
    ranks: usize,
    sanitize: bool,
) -> (f64, sensei::analysis::histogram::HistogramResult) {
    let deck = deck.to_string();
    let mut builder = WorldBuilder::new(ranks).sched(SchedPolicy::Seeded(7));
    let session = sanitize.then(|| sanitizer::Session::new(ranks, sanitizer::Mode::Collect));
    if let Some(session) = &session {
        builder = builder.sanitizer(Arc::clone(session));
    }
    let t0 = Wall::now();
    let hist = builder
        .run(move |comm| {
            let cfg = SimConfig {
                grid,
                steps,
                ..SimConfig::default()
            };
            let root_deck = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            let hist = HistogramAnalysis::new("data", 64);
            let results = hist.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            for _ in 0..steps {
                sim.step(comm);
                bridge.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            bridge.finalize(comm);
            let hist = results.lock().take();
            hist
        })
        .remove(0)
        .expect("rank 0 histogram present");
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(session) = &session {
        let findings = session.findings();
        assert!(
            findings.is_empty(),
            "hot path must be sanitizer-clean, got: {:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }
    (elapsed, hist)
}

/// Run the full hot-path measurement.
pub fn run(grid: [usize; 3], oscillators: usize, steps: usize, threads: usize) -> HotpathReport {
    let deck = sparse_deck(oscillators);

    let naive = time_steps(&deck, grid, steps, |sim, comm| sim.step_naive(comm));
    let culled_serial = time_steps(&deck, grid, steps, |sim, comm| {
        sim.step_with_threads(comm, 1)
    });
    let culled_threaded = time_steps(&deck, grid, steps, move |sim, comm| {
        sim.step_with_threads(comm, threads)
    });

    let bins = 64;
    let executes = steps.max(4);
    let hist_serial = time_histogram(&deck, grid, bins, 1, executes);
    let hist_threaded = time_histogram(&deck, grid, bins, threads, executes);

    let (ranks, elements, rounds) = (8, 1 << 15, 16);
    let tree = time_allreduce(ranks, elements, rounds, false);
    let rsag = time_allreduce(ranks, elements, rounds, true);

    let san_ranks = 8;
    let (san_off, hist_off) = time_sanitized_run(&deck, grid, steps, san_ranks, false);
    let (san_on, hist_on) = time_sanitized_run(&deck, grid, steps, san_ranks, true);

    let run_report = probed_run(&deck, grid, steps, 4);

    HotpathReport {
        grid,
        oscillators,
        steps,
        threads,
        step: Section {
            baseline_s: naive,
            optimized_s: culled_threaded,
        },
        step_culled_serial_s: culled_serial,
        histogram: Section {
            baseline_s: hist_serial,
            optimized_s: hist_threaded,
        },
        histogram_bins: bins,
        allreduce: Section {
            baseline_s: tree,
            optimized_s: rsag,
        },
        allreduce_ranks: ranks,
        allreduce_elements: elements,
        allreduce_rounds: rounds,
        sanitizer: Section {
            baseline_s: san_off,
            optimized_s: san_on,
        },
        sanitizer_ranks: san_ranks,
        sanitizer_bitwise_identical: hist_off == hist_on,
        run_report,
    }
}
