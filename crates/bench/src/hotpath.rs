//! The per-step in situ hot path, measured end to end on real code:
//! simulation step (naive all-pairs vs support-culled vs culled+threads),
//! streaming histogram (reference kernel vs cache-blocked kernel), the
//! bin/lag vector allreduce (tree vs reduce-scatter/allgather vs the
//! size-adaptive auto path), and the BPL2 encode (allocating vs arena).
//!
//! Every recorded number is a **median of N timed rounds after warmup
//! rounds** ([`median_of`]); the seed report's single-shot methodology
//! produced artifacts like a negative sanitizer overhead (the baseline
//! leg paid the process warmup) and a sub-1.0 "speedup" on a
//! single-core host that was pure run-to-run noise.
//!
//! The `hotpath` binary runs these on a sparse oscillator deck — many
//! small-radius oscillators whose supports cover a small fraction of the
//! domain, the regime support culling exists for — and writes
//! `BENCH_hotpath.json` with wall times, speedups, and the measured
//! collective crossover table.

use std::sync::Arc;

use probe::time::Wall;

use adios::bp::{BpStep, BpVar};
use minimpi::{SchedPolicy, World, WorldBuilder};
use oscillator::{
    format_deck, Oscillator, OscillatorAdaptor, OscillatorKind, SimConfig, Simulation,
};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor;
use sensei::{Bridge, Probe, RunReport};

/// Warmup rounds discarded before timing starts.
pub const WARMUP_ROUNDS: usize = 1;
/// Timed rounds; odd, so the median is an actual sample.
pub const TIMED_ROUNDS: usize = 5;

/// Run `f` `warmup` untimed times, then `rounds` timed times, and return
/// the median of the timed samples. `f` returns its own measured
/// seconds, so per-round setup (world spawn, deck parse) stays outside
/// the measurement.
pub fn median_of(warmup: usize, rounds: usize, mut f: impl FnMut() -> f64) -> f64 {
    for _ in 0..warmup {
        let _ = f();
    }
    let mut xs: Vec<f64> = (0..rounds.max(1)).map(|_| f()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    xs[xs.len() / 2]
}

/// A sparse deck: `n` small-radius oscillators scattered over the unit
/// cube. Support radius ≈ 38.6 × radius, so at radius ≈ 0.005 each
/// oscillator touches a few percent of the cells instead of all of them.
pub fn sparse_deck(n: usize) -> String {
    let oscillators: Vec<Oscillator> = (0..n)
        .map(|i| Oscillator {
            kind: match i % 3 {
                0 => OscillatorKind::Periodic,
                1 => OscillatorKind::Damped,
                _ => OscillatorKind::Decaying,
            },
            center: [
                (i as f64 * 0.377).fract(),
                (i as f64 * 0.617).fract(),
                (i as f64 * 0.839).fract(),
            ],
            radius: 0.004 + (i % 5) as f64 * 0.0008,
            omega: 1.0 + (i % 7) as f64,
            zeta: 0.08 * (i % 4) as f64,
        })
        .collect();
    format_deck(&oscillators)
}

/// One measured section: seconds for the baseline and optimized paths.
#[derive(Clone, Copy, Debug)]
pub struct Section {
    pub baseline_s: f64,
    pub optimized_s: f64,
}

impl Section {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }
}

/// One (ranks, elements) cell of the collective crossover measurement.
#[derive(Clone, Copy, Debug)]
pub struct AllreducePoint {
    pub ranks: usize,
    pub elements: usize,
    pub tree_s: f64,
    pub rsag_s: f64,
    pub auto_s: f64,
}

impl AllreducePoint {
    /// Message size in bytes (f64 elements).
    pub fn bytes(&self) -> usize {
        self.elements * 8
    }

    /// The faster of the two underlying algorithms.
    pub fn best_s(&self) -> f64 {
        self.tree_s.min(self.rsag_s)
    }

    /// How the adaptive path compares to the better algorithm
    /// (1.0 = exactly as fast; < 1.0 = auto is slower).
    pub fn auto_vs_best(&self) -> f64 {
        self.best_s() / self.auto_s
    }
}

/// The full hot-path report.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    pub grid: [usize; 3],
    pub oscillators: usize,
    pub steps: usize,
    pub threads: usize,
    pub warmup_rounds: usize,
    pub timed_rounds: usize,
    /// Step loop: naive all-pairs kernel vs culled + threaded kernel.
    pub step: Section,
    /// Culled kernel, single thread (isolates the algorithmic win).
    pub step_culled_serial_s: f64,
    /// Histogram executes: reference streaming kernel vs the shipped
    /// cache-blocked kernel (both at the configured thread count).
    pub histogram: Section,
    pub histogram_bins: usize,
    /// Headline vector allreduce at the largest measured point:
    /// binomial tree (baseline) vs the size-adaptive auto path.
    pub allreduce: Section,
    pub allreduce_rsag_s: f64,
    pub allreduce_ranks: usize,
    pub allreduce_elements: usize,
    pub allreduce_rounds: usize,
    /// The full (ranks × elements) matrix behind the crossover table.
    pub allreduce_points: Vec<AllreducePoint>,
    /// BPL2 encode: allocating `encode()` vs the warm arena
    /// `encode_into` path.
    pub bp_encode: Section,
    pub bp_payload_bytes: usize,
    pub bp_encode_rounds: usize,
    /// Heap growth observed across the warm arena encode loop (bytes);
    /// must be 0 when the tracking allocator is installed.
    pub bp_arena_alloc_delta: usize,
    /// Whether the probe tracking allocator was active for the run.
    pub bp_alloc_tracked: bool,
    /// Sanitizer overhead: the same seeded oscillator + histogram
    /// bridge run on 8 ranks with the happens-before sanitizer off
    /// (baseline) vs on (optimized field holds the sanitized time, so
    /// `speedup()` < 1 reads as the overhead factor).
    pub sanitizer: Section,
    pub sanitizer_ranks: usize,
    /// The disabled path is bitwise-identical: rank 0's histogram from
    /// a sanitizer-off seeded run equals the sanitizer-on one.
    pub sanitizer_bitwise_identical: bool,
    /// Cross-rank observability report of an instrumented bridge run
    /// over the same deck: per-phase min/mean/max/stddev, collective
    /// message/byte counters, per-rank memory high-water.
    pub run_report: RunReport,
}

impl HotpathReport {
    /// Per-rank-count crossover: the smallest measured message size (in
    /// bytes) where reduce-scatter/allgather beat the tree, or `None`
    /// if the tree won at every measured size.
    pub fn crossover(&self) -> Vec<(usize, Option<usize>)> {
        let mut ranks: Vec<usize> = self.allreduce_points.iter().map(|p| p.ranks).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
            .into_iter()
            .map(|r| {
                let bytes = self
                    .allreduce_points
                    .iter()
                    .filter(|p| p.ranks == r && p.rsag_s < p.tree_s)
                    .map(AllreducePoint::bytes)
                    .min();
                (r, bytes)
            })
            .collect()
    }

    /// The worst `auto_vs_best` across the matrix (the number the
    /// "auto within 5% of the better algorithm" criterion bounds).
    pub fn auto_vs_best_min(&self) -> f64 {
        self.allreduce_points
            .iter()
            .map(AllreducePoint::auto_vs_best)
            .fold(f64::INFINITY, f64::min)
    }

    /// Serialize as pretty-printed JSON (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"config\": {{\"grid\": [{}, {}, {}], \"oscillators\": {}, \"steps\": {}, \"threads\": {}, \"warmup_rounds\": {}, \"timed_rounds\": {}}},\n",
            self.grid[0], self.grid[1], self.grid[2], self.oscillators, self.steps, self.threads,
            self.warmup_rounds, self.timed_rounds
        ));
        s.push_str(&format!(
            "  \"step\": {{\"naive_s\": {:.6}, \"culled_serial_s\": {:.6}, \"culled_threaded_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.step.baseline_s,
            self.step_culled_serial_s,
            self.step.optimized_s,
            self.step.speedup()
        ));
        s.push_str(&format!(
            "  \"histogram\": {{\"bins\": {}, \"reference_s\": {:.6}, \"blocked_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.histogram_bins,
            self.histogram.baseline_s,
            self.histogram.optimized_s,
            self.histogram.speedup()
        ));
        s.push_str(&format!(
            "  \"allreduce\": {{\"ranks\": {}, \"elements\": {}, \"rounds\": {}, \"tree_s\": {:.6}, \"rsag_s\": {:.6}, \"auto_s\": {:.6}, \"speedup\": {:.2}}},\n",
            self.allreduce_ranks,
            self.allreduce_elements,
            self.allreduce_rounds,
            self.allreduce.baseline_s,
            self.allreduce_rsag_s,
            self.allreduce.optimized_s,
            self.allreduce.speedup()
        ));
        s.push_str("  \"allreduce_points\": [\n");
        for (i, p) in self.allreduce_points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"ranks\": {}, \"elements\": {}, \"bytes\": {}, \"tree_s\": {:.6}, \"rsag_s\": {:.6}, \"auto_s\": {:.6}, \"auto_vs_best\": {:.3}}}{}\n",
                p.ranks,
                p.elements,
                p.bytes(),
                p.tree_s,
                p.rsag_s,
                p.auto_s,
                p.auto_vs_best(),
                if i + 1 < self.allreduce_points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        let crossover = self.crossover();
        s.push_str("  \"crossover\": [\n");
        for (i, (ranks, bytes)) in crossover.iter().enumerate() {
            let from = match bytes {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"ranks\": {ranks}, \"rsag_from_bytes\": {from}}}{}\n",
                if i + 1 < crossover.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"auto_vs_best_min\": {:.3},\n",
            self.auto_vs_best_min()
        ));
        s.push_str(&format!(
            "  \"bp_encode\": {{\"payload_bytes\": {}, \"rounds\": {}, \"alloc_s\": {:.6}, \"arena_s\": {:.6}, \"speedup\": {:.2}, \"arena_alloc_delta_bytes\": {}, \"alloc_tracked\": {}}},\n",
            self.bp_payload_bytes,
            self.bp_encode_rounds,
            self.bp_encode.baseline_s,
            self.bp_encode.optimized_s,
            self.bp_encode.speedup(),
            self.bp_arena_alloc_delta,
            self.bp_alloc_tracked
        ));
        s.push_str(&format!(
            "  \"sanitizer\": {{\"ranks\": {}, \"off_s\": {:.6}, \"on_s\": {:.6}, \"overhead_pct\": {:.2}, \"bitwise_identical\": {}}},\n",
            self.sanitizer_ranks,
            self.sanitizer.baseline_s,
            self.sanitizer.optimized_s,
            (self.sanitizer.optimized_s / self.sanitizer.baseline_s - 1.0) * 100.0,
            self.sanitizer_bitwise_identical
        ));
        s.push_str(&format!(
            "  \"run_report\": {}\n",
            self.run_report.to_json()
        ));
        s.push_str("}\n");
        s
    }
}

/// One probed bridge run — sim + histogram over `steps` on `ranks`
/// thread-backed ranks — returning rank 0's aggregated `RunReport` (the
/// per-phase breakdown embedded in `BENCH_hotpath.json`).
pub fn probed_run(deck: &str, grid: [usize; 3], steps: usize, ranks: usize) -> RunReport {
    let deck = deck.to_string();
    World::run(ranks, move |comm| {
        let cfg = SimConfig {
            grid,
            steps,
            ..SimConfig::default()
        };
        let root_deck = if comm.rank() == 0 {
            Some(deck.as_str())
        } else {
            None
        };
        let mut sim = Simulation::new(comm, cfg, root_deck);
        let mut bridge = Bridge::with_probe(Probe::enabled());
        bridge.register(Box::new(HistogramAnalysis::new("data", 64)));
        for _ in 0..steps {
            sim.step(comm);
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
        }
        bridge.finalize(comm)
    })
    .remove(0)
}

/// Time `steps` simulation steps through `step_fn` on a single rank.
fn time_steps(
    deck: &str,
    grid: [usize; 3],
    steps: usize,
    step_fn: impl Fn(&mut Simulation, &minimpi::Comm) + Send + Sync + 'static,
) -> f64 {
    let deck = deck.to_string();
    World::run(1, move |comm| {
        let cfg = SimConfig {
            grid,
            steps,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, Some(deck.as_str()));
        let t0 = Wall::now();
        for _ in 0..steps {
            step_fn(&mut sim, comm);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// Time `executes` histogram passes over a stepped field, with either
/// the blocked kernel (shipped path) or the reference streaming kernel.
fn time_histogram(
    deck: &str,
    grid: [usize; 3],
    bins: usize,
    threads: usize,
    executes: usize,
    reference: bool,
) -> f64 {
    let deck = deck.to_string();
    World::run(1, move |comm| {
        let cfg = SimConfig {
            grid,
            steps: 1,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, Some(deck.as_str()));
        sim.step(comm);
        let mut hist = HistogramAnalysis::new("data", bins).with_threads(threads);
        if reference {
            hist = hist.with_reference_kernel();
        }
        let adaptor = OscillatorAdaptor::new(&sim);
        let t0 = Wall::now();
        for _ in 0..executes {
            hist.execute(&adaptor, comm);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// Which allreduce path to time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AllreduceAlgo {
    Tree,
    Rsag,
    Auto,
}

/// Time `rounds` vector allreduces of `elements` f64 on `ranks` ranks.
fn time_allreduce(ranks: usize, elements: usize, rounds: usize, algo: AllreduceAlgo) -> f64 {
    World::run(ranks, move |comm| {
        let v: Vec<f64> = (0..elements)
            .map(|i| (i * (comm.rank() + 1)) as f64)
            .collect();
        let t0 = Wall::now();
        for _ in 0..rounds {
            let out = match algo {
                AllreduceAlgo::Tree => comm.allreduce_vec(v.clone(), |a, b| a + b),
                AllreduceAlgo::Rsag => comm.allreduce_vec_rsag(v.clone(), |a, b| a + b),
                AllreduceAlgo::Auto => comm.allreduce_vec_auto(v.clone(), |a, b| a + b),
            };
            assert_eq!(out.len(), elements);
        }
        t0.elapsed().as_secs_f64()
    })
    .remove(0)
}

/// Measure the full (ranks × elements) allreduce matrix — the data the
/// crossover table in `minimpi::collectives` is calibrated from.
///
/// Small messages finish in microseconds, where scheduler noise swamps
/// a `rounds`-op sample; each point therefore runs `rounds` scaled up
/// by how much smaller its message is than the largest in the matrix
/// (capped at 64×), and the time is normalized back so every recorded
/// number is *seconds per `rounds` operations* regardless of scaling.
pub fn allreduce_matrix(
    rank_counts: &[usize],
    element_counts: &[usize],
    rounds: usize,
) -> Vec<AllreducePoint> {
    let max_elements = element_counts.iter().copied().max().unwrap_or(1);
    let mut points = Vec::with_capacity(rank_counts.len() * element_counts.len());
    for &ranks in rank_counts {
        for &elements in element_counts {
            let scale = (max_elements / elements.max(1)).clamp(1, 64);
            let sample = |algo: AllreduceAlgo| {
                median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
                    time_allreduce(ranks, elements, rounds * scale, algo)
                }) / scale as f64
            };
            let tree_s = sample(AllreduceAlgo::Tree);
            let rsag_s = sample(AllreduceAlgo::Rsag);
            let auto_s = sample(AllreduceAlgo::Auto);
            points.push(AllreducePoint {
                ranks,
                elements,
                tree_s,
                rsag_s,
                auto_s,
            });
        }
    }
    points
}

/// Is the probe tracking allocator actually installed? (The counters
/// exist either way; without the `track-alloc` feature they stay 0, so
/// a zero "allocation delta" would be vacuous — record which.)
fn alloc_tracking_active() -> bool {
    let before = probe::alloc::current_bytes();
    let v = std::hint::black_box(vec![0u8; 64 * 1024]);
    let active = probe::alloc::current_bytes() >= before + 64 * 1024;
    drop(v);
    active
}

/// Time the BPL2 encode paths over a representative step: `rounds`
/// allocating `encode()` calls vs `rounds` warm-arena `encode_into`
/// calls, plus the heap growth across the warm arena loop.
fn time_bp_encode(grid: [usize; 3], rounds: usize) -> (f64, f64, usize, usize) {
    let n: usize = grid.iter().product();
    let mut step = BpStep::new(3, 0.25);
    for a in 0..3 {
        step.set_attr(format!("leaf0_spacing_{a}"), 0.015_625);
        step.set_attr(format!("leaf0_origin_{a}"), 0.0);
    }
    let dims = [grid[0] as u64, grid[1] as u64, grid[2] as u64];
    step.vars.push(BpVar::new(
        "data",
        dims,
        [0, 0, 0],
        dims,
        (0..n).map(|i| i as f64 * 0.5).collect(),
    ));
    let payload = step.encoded_len();

    let alloc_s = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let t0 = Wall::now();
        for _ in 0..rounds {
            std::hint::black_box(step.encode());
        }
        t0.elapsed().as_secs_f64()
    });

    let mut arena = Vec::new();
    step.encode_into(&mut arena); // warm the arena outside the timing
    let mut alloc_delta = 0usize;
    let arena_s = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        let heap0 = probe::alloc::current_bytes();
        let t0 = Wall::now();
        for _ in 0..rounds {
            step.encode_into(&mut arena);
            std::hint::black_box(arena.as_slice());
        }
        let dt = t0.elapsed().as_secs_f64();
        alloc_delta = alloc_delta.max(probe::alloc::current_bytes().saturating_sub(heap0));
        dt
    });
    (alloc_s, arena_s, payload, alloc_delta)
}

/// One seeded oscillator + histogram bridge run on `ranks` ranks,
/// optionally with a happens-before sanitizer session installed
/// (`Mode::Collect`, asserted clean). Returns the wall time and rank
/// 0's histogram — the seeded schedule makes the histogram a bitwise
/// witness that the sanitizer never perturbs results.
fn time_sanitized_run(
    deck: &str,
    grid: [usize; 3],
    steps: usize,
    ranks: usize,
    sanitize: bool,
) -> (f64, sensei::analysis::histogram::HistogramResult) {
    let deck = deck.to_string();
    let mut builder = WorldBuilder::new(ranks).sched(SchedPolicy::Seeded(7));
    let session = sanitize.then(|| sanitizer::Session::new(ranks, sanitizer::Mode::Collect));
    if let Some(session) = &session {
        builder = builder.sanitizer(Arc::clone(session));
    }
    let t0 = Wall::now();
    let hist = builder
        .run(move |comm| {
            let cfg = SimConfig {
                grid,
                steps,
                ..SimConfig::default()
            };
            let root_deck = if comm.rank() == 0 {
                Some(deck.as_str())
            } else {
                None
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            let hist = HistogramAnalysis::new("data", 64);
            let results = hist.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            for _ in 0..steps {
                sim.step(comm);
                bridge.execute(&OscillatorAdaptor::new(&sim), comm);
            }
            bridge.finalize(comm);
            let hist = results.lock().take();
            hist
        })
        .remove(0)
        .expect("rank 0 histogram present");
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(session) = &session {
        let findings = session.findings();
        assert!(
            findings.is_empty(),
            "hot path must be sanitizer-clean, got: {:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }
    (elapsed, hist)
}

/// Run the full hot-path measurement.
pub fn run(grid: [usize; 3], oscillators: usize, steps: usize, threads: usize) -> HotpathReport {
    let deck = sparse_deck(oscillators);

    // The naive all-pairs loop is by far the slowest leg; fewer timed
    // rounds keep the suite's wall clock sane without giving up the
    // median (3 samples still reject a one-off outlier).
    let naive = median_of(WARMUP_ROUNDS, 3, || {
        time_steps(&deck, grid, steps, |sim, comm| sim.step_naive(comm))
    });
    let culled_serial = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        time_steps(&deck, grid, steps, |sim, comm| {
            sim.step_with_threads(comm, 1)
        })
    });
    let culled_threaded = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        time_steps(&deck, grid, steps, move |sim, comm| {
            sim.step_with_threads(comm, threads)
        })
    });

    let bins = 64;
    let executes = steps.max(4) * 4;
    let hist_reference = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        time_histogram(&deck, grid, bins, threads, executes, true)
    });
    let hist_blocked = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
        time_histogram(&deck, grid, bins, threads, executes, false)
    });

    let rounds = 16;
    let points = allreduce_matrix(&[2, 4, 8], &[1 << 8, 1 << 12, 1 << 15], rounds);
    let (ranks, elements) = (8, 1 << 15);
    let headline = points
        .iter()
        .find(|p| p.ranks == ranks && p.elements == elements)
        .copied()
        .expect("headline point measured");

    let bp_rounds = 32;
    let (bp_alloc_s, bp_arena_s, bp_payload, bp_delta) = time_bp_encode(grid, bp_rounds);

    let san_ranks = 8;
    let (san_off, hist_off) = {
        let mut hist = None;
        let s = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
            let (s, h) = time_sanitized_run(&deck, grid, steps, san_ranks, false);
            hist = Some(h);
            s
        });
        (s, hist.expect("sanitizer-off run happened"))
    };
    let (san_on, hist_on) = {
        let mut hist = None;
        let s = median_of(WARMUP_ROUNDS, TIMED_ROUNDS, || {
            let (s, h) = time_sanitized_run(&deck, grid, steps, san_ranks, true);
            hist = Some(h);
            s
        });
        (s, hist.expect("sanitizer-on run happened"))
    };

    let run_report = probed_run(&deck, grid, steps, 4);

    HotpathReport {
        grid,
        oscillators,
        steps,
        threads,
        warmup_rounds: WARMUP_ROUNDS,
        timed_rounds: TIMED_ROUNDS,
        step: Section {
            baseline_s: naive,
            optimized_s: culled_threaded,
        },
        step_culled_serial_s: culled_serial,
        histogram: Section {
            baseline_s: hist_reference,
            optimized_s: hist_blocked,
        },
        histogram_bins: bins,
        allreduce: Section {
            baseline_s: headline.tree_s,
            optimized_s: headline.auto_s,
        },
        allreduce_rsag_s: headline.rsag_s,
        allreduce_ranks: ranks,
        allreduce_elements: elements,
        allreduce_rounds: rounds,
        allreduce_points: points,
        bp_encode: Section {
            baseline_s: bp_alloc_s,
            optimized_s: bp_arena_s,
        },
        bp_payload_bytes: bp_payload,
        bp_encode_rounds: bp_rounds,
        bp_arena_alloc_delta: bp_delta,
        bp_alloc_tracked: alloc_tracking_active(),
        sanitizer: Section {
            baseline_s: san_off,
            optimized_s: san_on,
        },
        sanitizer_ranks: san_ranks,
        sanitizer_bitwise_identical: hist_off == hist_on,
        run_report,
    }
}
