//! Substrate microbenchmarks: the building blocks under every figure —
//! collectives, DEFLATE throughput, data-model access, and zero-copy vs
//! deep-copy array mapping (the difference the SENSEI interface
//! preserves).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minimpi::World;
use std::sync::Arc;

fn collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_collectives");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for p in [4usize, 8] {
        group.bench_function(format!("allreduce_scalar_{p}ranks_x100"), |b| {
            b.iter(|| {
                World::run(p, |comm| {
                    let mut acc = 0.0f64;
                    for i in 0..100 {
                        acc += comm.allreduce_scalar(i as f64, |a, b| a + b);
                    }
                    acc
                })
            })
        });
        group.bench_function(format!("bcast_1mb_{p}ranks"), |b| {
            b.iter(|| {
                World::run(p, |comm| {
                    let v = if comm.rank() == 0 {
                        Some(vec![1u8; 1 << 20])
                    } else {
                        None
                    };
                    comm.bcast(0, v).len()
                })
            })
        });
        group.bench_function(format!("gather_64kb_{p}ranks"), |b| {
            b.iter(|| {
                World::run(p, |comm| {
                    comm.gather(0, vec![comm.rank() as u8; 64 << 10])
                        .map(|v| v.len())
                })
            })
        });
    }
    group.finish();
}

fn deflate_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_deflate");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let data: Vec<u8> = (0..1_000_000u32).map(|i| ((i / 17) % 251) as u8).collect();
    group.throughput(Throughput::Bytes(data.len() as u64));
    let d1 = data.clone();
    group.bench_function("zlib_fixed_1mb", move |b| {
        b.iter(|| render::deflate::zlib_compress(&d1, render::deflate::Mode::Fixed).len())
    });
    let d2 = data.clone();
    group.bench_function("zlib_stored_1mb", move |b| {
        b.iter(|| render::deflate::zlib_compress(&d2, render::deflate::Mode::Stored).len())
    });
    let compressed = render::deflate::zlib_compress(&data, render::deflate::Mode::Fixed);
    group.bench_function("inflate_1mb", move |b| {
        b.iter(|| render::deflate::zlib_decompress(&compressed).unwrap().len())
    });
    group.finish();
}

fn data_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_datamodel");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let field = Arc::new(vec![1.5f64; 1 << 20]);

    let f1 = Arc::clone(&field);
    group.bench_function("zero_copy_array_map_1m_doubles", move |b| {
        b.iter(|| {
            let a = datamodel::DataArray::shared("data", 1, Arc::clone(&f1));
            std::hint::black_box(a.num_tuples())
        })
    });
    let f2 = Arc::clone(&field);
    group.bench_function("deep_copy_array_map_1m_doubles", move |b| {
        b.iter(|| {
            let a = datamodel::DataArray::owned("data", 1, f2.as_ref().clone());
            std::hint::black_box(a.num_tuples())
        })
    });
    let arr = datamodel::DataArray::shared("data", 1, Arc::clone(&field));
    group.bench_function("range_scan_1m_doubles", move |b| {
        b.iter(|| std::hint::black_box(arr.range(0)))
    });
    group.finish();
}

fn isosurface_and_slice(c: &mut Criterion) {
    use datamodel::Extent;
    let mut group = c.benchmark_group("substrate_render");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let e = Extent::whole([33, 33, 33]);
    let center = 16.0;
    let vals: Vec<f64> = e
        .iter_points()
        .map(|p| {
            let dx = p[0] as f64 - center;
            let dy = p[1] as f64 - center;
            let dz = p[2] as f64 - center;
            (dx * dx + dy * dy + dz * dz).sqrt()
        })
        .collect();
    let v1 = vals.clone();
    group.bench_function("marching_tetrahedra_32cubed", move |b| {
        b.iter(|| render::isosurface::marching_tetrahedra(&e, &v1, 10.0, [0.0; 3], [1.0; 3]).len())
    });
    group.bench_function("slice_extract_32cubed", move |b| {
        b.iter(|| render::slice::extract_plane(&e, &e, &vals, 2, 16).map(|s| s.values.len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    collectives,
    deflate_throughput,
    data_model,
    isosurface_and_slice
);
criterion_main!(benches);
