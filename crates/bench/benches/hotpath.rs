//! The parallel in situ hot path: support-culled step kernel vs the
//! naive all-pairs kernel, streaming parallel histogram vs serial, and
//! the reduce-scatter/allgather vector allreduce vs the binomial tree.
//!
//! The `hotpath` binary (same measurements, larger sizes) writes the
//! checked-in `BENCH_hotpath.json`; this bench tracks the same paths
//! under criterion for regression comparison.

use bench::hotpath::sparse_deck;
use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use oscillator::{OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor;

const GRID: [usize; 3] = [33, 33, 33];

fn step_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_step");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    let deck = sparse_deck(32);
    for (name, threads) in [("naive", None), ("culled", Some(1)), ("culled_mt", Some(0))] {
        let d0 = deck.clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let d = d0.clone();
                World::run(1, move |comm| {
                    let cfg = SimConfig {
                        grid: GRID,
                        ..SimConfig::default()
                    };
                    let mut sim = Simulation::new(comm, cfg, Some(d.as_str()));
                    for _ in 0..2 {
                        match threads {
                            None => sim.step_naive(comm),
                            Some(t) => sim.step_with_threads(comm, t),
                        }
                    }
                })
            })
        });
    }
    group.finish();
}

fn streaming_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_histogram");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    let deck = sparse_deck(32);
    for (name, threads) in [("serial", 1usize), ("threaded", 0)] {
        let d0 = deck.clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let d = d0.clone();
                World::run(1, move |comm| {
                    let cfg = SimConfig {
                        grid: GRID,
                        ..SimConfig::default()
                    };
                    let mut sim = Simulation::new(comm, cfg, Some(d.as_str()));
                    sim.step(comm);
                    let mut hist = HistogramAnalysis::new("data", 64).with_threads(threads);
                    for _ in 0..3 {
                        hist.execute(&OscillatorAdaptor::new(&sim), comm);
                    }
                })
            })
        });
    }
    group.finish();
}

fn vector_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_allreduce");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    for (name, rsag) in [("tree", false), ("rsag", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                World::run(8, move |comm| {
                    let v: Vec<f64> = (0..1 << 14).map(|i| (i + comm.rank()) as f64).collect();
                    let out = if rsag {
                        comm.allreduce_vec_rsag(v, |a, b| a + b)
                    } else {
                        comm.allreduce_vec(v, |a, b| a + b)
                    };
                    std::hint::black_box(out.len())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, step_kernels, streaming_histogram, vector_allreduce);
criterion_main!(benches);
