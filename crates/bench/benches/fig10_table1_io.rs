//! Fig. 10 / Table 1 (real mode): the two write paths — file-per-rank
//! VTK-style pieces vs. a collective shared file — plus the GLEAN
//! aggregated alternative.

use criterion::{criterion_group, criterion_main, Criterion};
use datamodel::Extent;
use minimpi::World;

fn write_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_io");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    let base = std::env::temp_dir().join(format!("bench_io_{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();

    let dir = base.clone();
    group.bench_function("file_per_rank_4ranks_32cubed", |b| {
        b.iter(|| {
            let d = dir.clone();
            World::run(4, move |comm| {
                let global = Extent::whole([33, 33, 33]);
                let dims = datamodel::dims_create(comm.size());
                let local = datamodel::partition_extent(&global, dims, comm.rank());
                let values: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
                let piece = iosim::Piece {
                    extent: local,
                    global,
                    spacing: [1.0; 3],
                    arrays: vec![("data".to_string(), values)],
                };
                iosim::write_piece(&d, 0, comm.rank(), &piece).unwrap();
                comm.barrier();
            })
        })
    });

    let dir = base.clone();
    group.bench_function("collective_mpiio_4ranks_32cubed", |b| {
        b.iter(|| {
            let d = dir.clone();
            World::run(4, move |comm| {
                let global = Extent::whole([33, 33, 33]);
                let dims = datamodel::dims_create(comm.size());
                let local = datamodel::partition_extent(&global, dims, comm.rank());
                let values: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
                iosim::collective_write(comm, &d.join("shared.bin"), &local, &global, &values, 2)
                    .unwrap();
            })
        })
    });

    let dir = base.clone();
    group.bench_function("glean_aggregated_4ranks_32cubed", |b| {
        b.iter(|| {
            let d = dir.clone();
            World::run(4, move |comm| {
                use sensei::analysis::AnalysisAdaptor as _;
                let global = Extent::whole([33, 33, 33]);
                let dims = datamodel::dims_create(comm.size());
                let local = datamodel::partition_extent(&global, dims, comm.rank());
                let mut g = datamodel::ImageData::new(local, global);
                g.add_point_array(datamodel::DataArray::owned(
                    "data",
                    1,
                    local.iter_points().map(|p| p[0] as f64).collect(),
                ));
                let adaptor = sensei::InMemoryAdaptor::new(datamodel::DataSet::Image(g), 0.0, 0);
                let mut w = glean::GleanWriter::new(glean::Topology::new(2), "data", d.clone());
                w.execute(&adaptor, comm);
                w.finalize(comm);
            })
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, write_paths);
criterion_main!(benches);
