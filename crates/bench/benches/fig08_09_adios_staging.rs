//! Figs. 8–9 (real mode): ADIOS/FlexPath staging — the marshaling copy
//! (BP encode/decode), the advance/write protocol, and an end-to-end
//! in transit histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;

use adios::bp::{BpStep, BpVar};
#[allow(deprecated)] // legacy non-broker endpoint keeps the perf baselines comparable
use adios::staging::run_endpoint;
use adios::staging::AdiosWriterAnalysis;
use adios::{pair, Role};
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor as _;

fn sample_step(cells: usize) -> BpStep {
    let n = (cells as f64).cbrt() as u64;
    let mut s = BpStep::new(0, 0.0);
    s.vars.push(BpVar::new(
        "data",
        [n, n, n],
        [0, 0, 0],
        [n, n, n],
        (0..n * n * n).map(|i| i as f64).collect(),
    ));
    s
}

fn bp_marshaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_bp");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let step = sample_step(32 * 32 * 32);
    group.bench_function("encode_32cubed", |b| {
        b.iter(|| std::hint::black_box(step.encode().len()))
    });
    let bytes = step.encode();
    group.bench_function("decode_32cubed", |b| {
        b.iter(|| std::hint::black_box(BpStep::decode(&bytes).unwrap().payload_bytes()))
    });
    group.finish();
}

#[allow(deprecated)] // legacy non-broker endpoint keeps the perf baselines comparable
fn in_transit_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_staging");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let deck = format_deck(&demo_oscillators());
    group.bench_function("flexpath_histogram_2w_2e_3steps", |b| {
        b.iter(|| {
            let d = deck.clone();
            World::run(4, move |world| match pair(world, 2) {
                Role::Writer { sub, writer } => {
                    let cfg = SimConfig {
                        grid: [17, 17, 17],
                        ..SimConfig::default()
                    };
                    let root = if sub.rank() == 0 {
                        Some(d.as_str())
                    } else {
                        None
                    };
                    let mut sim = Simulation::new(&sub, cfg, root);
                    let mut ship = AdiosWriterAnalysis::new(writer);
                    for _ in 0..3 {
                        sim.step(&sub);
                        ship.execute(&OscillatorAdaptor::new(&sim), world);
                    }
                    ship.finalize(world);
                    0u64
                }
                Role::Endpoint { sub, mut reader } => {
                    let hist = HistogramAnalysis::new("data", 32);
                    let (bridge, _report) =
                        run_endpoint(world, &sub, &mut reader, vec![Box::new(hist)]);
                    bridge.steps()
                }
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bp_marshaling, in_transit_histogram);
criterion_main!(benches);
