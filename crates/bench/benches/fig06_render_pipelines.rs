//! Fig. 6 (real mode), rendering configurations: the Catalyst-slice and
//! Libsim-slice per-step pipelines — extraction, rasterization,
//! parallel compositing, and PNG encoding — with the two compositor
//! families whose differing scaling the paper notes.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::AnalysisAdaptor as _;

fn render_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_render");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    let deck = format_deck(&demo_oscillators());

    let d1 = deck.clone();
    group.bench_function("catalyst_slice_step_4ranks", |b| {
        b.iter(|| {
            let d = d1.clone();
            World::run(4, move |comm| {
                let cfg = SimConfig {
                    grid: [25, 25, 25],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                sim.step(comm);
                let mut pipe = catalyst::SlicePipeline::new("data", 2, 12);
                pipe.width = 320;
                pipe.height = 180;
                let mut a = catalyst::CatalystSliceAnalysis::new(pipe);
                a.execute(&OscillatorAdaptor::new(&sim), comm);
            })
        })
    });

    group.bench_function("libsim_slice_step_4ranks", |b| {
        b.iter(|| {
            let d = deck.clone();
            World::run(4, move |comm| {
                let cfg = SimConfig {
                    grid: [25, 25, 25],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                sim.step(comm);
                let session = libsim::Session::parse(
                    "image 320 320\nplot pseudocolor data axis=z index=12\n",
                )
                .unwrap();
                let mut a = libsim::LibsimAnalysis::new(
                    session,
                    std::path::Path::new("/nonexistent/.visitrc"),
                );
                a.execute(&OscillatorAdaptor::new(&sim), comm);
            })
        })
    });
    group.finish();
}

fn compositors(c: &mut Criterion) {
    use render::color::Color;
    use render::composite::{binary_swap, direct_send_tree};
    use render::framebuffer::Framebuffer;

    let mut group = c.benchmark_group("fig06_compositors");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    for p in [4usize, 8] {
        group.bench_function(format!("binary_swap_{p}ranks_512sq"), |b| {
            b.iter(|| {
                World::run(p, move |comm| {
                    let mut fb = Framebuffer::new(512, 512);
                    for y in (comm.rank()..512).step_by(comm.size()) {
                        for x in 0..512 {
                            fb.set_pixel(x, y, comm.rank() as f32, Color::rgb(200, 10, 10));
                        }
                    }
                    binary_swap(comm, fb).map(|f| f.covered_pixels())
                })
            })
        });
        group.bench_function(format!("direct_send_tree_{p}ranks_512sq"), |b| {
            b.iter(|| {
                World::run(p, move |comm| {
                    let mut fb = Framebuffer::new(512, 512);
                    for y in (comm.rank()..512).step_by(comm.size()) {
                        for x in 0..512 {
                            fb.set_pixel(x, y, comm.rank() as f32, Color::rgb(200, 10, 10));
                        }
                    }
                    direct_send_tree(comm, fb, 4).map(|f| f.covered_pixels())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, render_pipelines, compositors);
criterion_main!(benches);
