//! Fig. 6 (real mode): per-timestep analysis costs of the direct
//! analyses (histogram, autocorrelation, descriptive stats) against the
//! simulation step itself, on thread-backed ranks.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::descriptive::DescriptiveStats;
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor;

fn per_step_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    let deck = format_deck(&demo_oscillators());

    // The simulation step alone (the blue bars).
    let d0 = deck.clone();
    group.bench_function("simulation_step", |b| {
        b.iter(|| {
            let d = d0.clone();
            World::run(4, move |comm| {
                let cfg = SimConfig {
                    grid: [33, 33, 33],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                sim.step(comm);
                sim.step(comm);
            })
        })
    });

    // Each analysis on a fixed stepped state (the orange bars).
    for analysis in ["histogram", "autocorrelation", "descriptive-stats"] {
        let deck = deck.clone();
        group.bench_function(format!("{analysis}_per_step"), |b| {
            b.iter(|| {
                let d = deck.clone();
                World::run(4, move |comm| {
                    let cfg = SimConfig {
                        grid: [33, 33, 33],
                        ..SimConfig::default()
                    };
                    let root = if comm.rank() == 0 {
                        Some(d.as_str())
                    } else {
                        None
                    };
                    let mut sim = Simulation::new(comm, cfg, root);
                    sim.step(comm);
                    let mut a: Box<dyn AnalysisAdaptor> = match analysis {
                        "histogram" => Box::new(HistogramAnalysis::new("data", 64)),
                        "autocorrelation" => Box::new(Autocorrelation::new("data", 10, 16)),
                        _ => Box::new(DescriptiveStats::new("data")),
                    };
                    for _ in 0..3 {
                        a.execute(&OscillatorAdaptor::new(&sim), comm);
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, per_step_costs);
criterion_main!(benches);
