//! Fig. 3 (real mode): the cost of the SENSEI generic data interface.
//!
//! Measures (a) zero-copy adaptor construction, (b) a full
//! simulate+analyze run driven via direct subroutine call vs. via the
//! bridge — the two configurations whose equality is the paper's
//! headline interface result.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::AnalysisAdaptor as _;
use sensei::{Bridge, DataAdaptor as _};

/// Build a stepped single-rank simulation on a throwaway world; the
/// state is `Send`, so the benchmarks measure against it directly.
fn stepped_sim(grid: usize) -> Simulation {
    let deck = format_deck(&demo_oscillators());
    World::run(1, move |comm| {
        let cfg = SimConfig {
            grid: [grid, grid, grid],
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, Some(deck.as_str()));
        sim.step(comm);
        sim
    })
    .pop()
    .expect("one rank")
}

fn adaptor_construction(c: &mut Criterion) {
    let sim = stepped_sim(32);
    let mut group = c.benchmark_group("fig03");
    group
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    group.bench_function("zero_copy_adaptor_construction", |b| {
        b.iter(|| {
            let a = OscillatorAdaptor::new(&sim);
            std::hint::black_box(a.step())
        })
    });
    group.bench_function("full_mesh_zero_copy_attach", |b| {
        b.iter(|| {
            let a = OscillatorAdaptor::new(&sim);
            std::hint::black_box(a.full_mesh().num_points())
        })
    });
    group.finish();
}

fn direct_vs_bridge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let deck = format_deck(&demo_oscillators());
    let d1 = deck.clone();
    group.bench_function("original_subroutine_run", |b| {
        b.iter(|| {
            let d = d1.clone();
            World::run(2, move |comm| {
                let cfg = SimConfig {
                    grid: [16, 16, 16],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                let mut ac = Autocorrelation::new("data", 4, 4);
                for _ in 0..3 {
                    sim.step(comm);
                    ac.execute(&OscillatorAdaptor::new(&sim), comm);
                }
            })
        })
    });
    group.bench_function("sensei_bridge_run", |b| {
        b.iter(|| {
            let d = deck.clone();
            World::run(2, move |comm| {
                let cfg = SimConfig {
                    grid: [16, 16, 16],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                let mut bridge = Bridge::new();
                bridge.register(Box::new(Autocorrelation::new("data", 4, 4)));
                for _ in 0..3 {
                    sim.step(comm);
                    bridge.execute(&OscillatorAdaptor::new(&sim), comm);
                }
            })
        })
    });
    group.finish();
}

criterion_group!(benches, adaptor_construction, direct_vs_bridge);
criterion_main!(benches);
