//! Fig. 11 (real mode): the post hoc workflow — fewer readers pull the
//! pieces back, reassemble, and run the same analysis that could have
//! run in situ.

use criterion::{criterion_group, criterion_main, Criterion};
use datamodel::{partition_extent, Extent};
use iosim::{posthoc_analysis, write_manifest, write_piece, Piece};
use minimpi::World;
use sensei::analysis::histogram::HistogramAnalysis;

fn write_dataset(dir: &std::path::Path, steps: u64, writers: usize, n: usize) {
    let global = Extent::whole([n, n, n]);
    for step in 0..steps {
        let mut extents = Vec::new();
        for w in 0..writers {
            let local = partition_extent(&global, [writers, 1, 1], w);
            extents.push(local);
            let piece = Piece {
                extent: local,
                global,
                spacing: [1.0; 3],
                arrays: vec![(
                    "data".to_string(),
                    local
                        .iter_points()
                        .map(|p| (p[0] + step as i64) as f64)
                        .collect(),
                )],
            };
            write_piece(dir, step, w, &piece).unwrap();
        }
        write_manifest(dir, step, &extents).unwrap();
    }
}

fn posthoc(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bench_posthoc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    write_dataset(&dir, 4, 10, 41);

    let mut group = c.benchmark_group("fig11");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    // 1 reader = 10% of the 10 writers, as in the paper's setup.
    let d = dir.clone();
    group.bench_function("posthoc_histogram_10pct_readers", |b| {
        b.iter(|| {
            let d2 = d.clone();
            World::run(1, move |comm| {
                let hist = HistogramAnalysis::new("data", 64);
                let (_, report) = posthoc_analysis(comm, &d2, 4, 10, vec![Box::new(hist)], None);
                report.bytes_read
            })
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, posthoc);
criterion_main!(benches);
