//! Fig. 5 (real mode): one-time costs — analysis initialization
//! (session parsing, Libsim config check, pipeline construction) and
//! the autocorrelation finalize reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use oscillator::{demo_oscillators, osc::format_deck, OscillatorAdaptor, SimConfig, Simulation};
use sensei::analysis::autocorrelation::Autocorrelation;
use sensei::analysis::AnalysisAdaptor as _;

fn onetime_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("libsim_init_session_and_config_check", |b| {
        b.iter(|| {
            let session = libsim::Session::parse(
                "image 1600 1600\nfrequency 5\nplot pseudocolor data axis=z index=8\nplot isosurface data levels=0.2,0.5,0.8\n",
            )
            .unwrap();
            let a = libsim::LibsimAnalysis::new(session, std::path::Path::new("/nonexistent/.visitrc"));
            std::hint::black_box(a.startup_seconds())
        })
    });

    group.bench_function("catalyst_pipeline_construction", |b| {
        b.iter(|| {
            let pipe = catalyst::SlicePipeline::new("data", 2, 8);
            std::hint::black_box(catalyst::CatalystSliceAnalysis::new(pipe).images_written())
        })
    });

    group.bench_function("autocorrelation_finalize_reduction", |b| {
        let deck = format_deck(&demo_oscillators());
        b.iter(|| {
            let d = deck.clone();
            World::run(4, move |comm| {
                let cfg = SimConfig {
                    grid: [17, 17, 17],
                    ..SimConfig::default()
                };
                let root = if comm.rank() == 0 {
                    Some(d.as_str())
                } else {
                    None
                };
                let mut sim = Simulation::new(comm, cfg, root);
                let mut ac = Autocorrelation::new("data", 8, 16);
                for _ in 0..8 {
                    sim.step(comm);
                    ac.execute(&OscillatorAdaptor::new(&sim), comm);
                }
                let t0 = std::time::Instant::now();
                ac.finalize(comm);
                t0.elapsed().as_secs_f64()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, onetime_costs);
criterion_main!(benches);
