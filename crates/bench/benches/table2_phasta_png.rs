//! Table 2 (real mode): the PHASTA in situ cost centers — the
//! unstructured-mesh cut, and the serial PNG/zlib encode whose image-
//! size dependence (800×200 vs 2900×725) the paper traced as the
//! dominant term. The `stored` variants reproduce the paper's
//! skip-the-compression ablation.

use bench::realruns::pseudocolor_like_image;
use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use render::deflate::Mode;
use science::{Phasta, PhastaAdaptor, PhastaConfig};
use sensei::DataAdaptor as _;

fn png_image_size_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_png");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for (w, h, tag) in [
        (800usize, 200usize, "is1_800x200"),
        (2900, 725, "is2_2900x725"),
    ] {
        let rgb = pseudocolor_like_image(w, h);
        let rgb2 = rgb.clone();
        group.bench_function(format!("zlib_fixed_{tag}"), move |b| {
            b.iter(|| std::hint::black_box(render::png::encode_rgb(w, h, &rgb2, Mode::Fixed).len()))
        });
        group.bench_function(format!("stored_ablation_{tag}"), move |b| {
            b.iter(|| std::hint::black_box(render::png::encode_rgb(w, h, &rgb, Mode::Stored).len()))
        });
    }
    group.finish();
}

fn phasta_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_phasta");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("tet_mesh_plane_cut_2ranks", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let mut sim = Phasta::new(
                    comm,
                    PhastaConfig {
                        lattice: [17, 13, 13],
                        ..PhastaConfig::default()
                    },
                );
                sim.step(comm);
                let adaptor = PhastaAdaptor::new(&sim);
                let mesh = adaptor.full_mesh();
                let datamodel::DataSet::Unstructured(g) = &mesh else {
                    unreachable!()
                };
                catalyst::cutter::cut_tets(g, "velmag", [0.0, 1.0, 0.0], 0.5).len()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, png_image_size_effect, phasta_cut);
criterion_main!(benches);
