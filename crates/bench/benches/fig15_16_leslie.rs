//! Figs. 15–16 (real mode): the AVF-LESLIE proxy — solver step with
//! halo exchange, the SENSEI adaptor (vorticity derivation + ghost
//! blanking), and the full Libsim render invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use science::{Leslie, LeslieAdaptor, LeslieConfig};
use sensei::analysis::AnalysisAdaptor as _;
use sensei::DataAdaptor as _;

fn cfg() -> LeslieConfig {
    LeslieConfig {
        grid: [24, 25, 8],
        ..LeslieConfig::default()
    }
}

fn leslie(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_leslie");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("avf_timestep_2ranks", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let mut sim = Leslie::new(comm, cfg());
                sim.step(comm);
                sim.step(comm);
            })
        })
    });

    group.bench_function("sensei_adaptor_vorticity_2ranks", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let sim = Leslie::new(comm, cfg());
                let a = LeslieAdaptor::new(&sim);
                std::hint::black_box(a.step())
            })
        })
    });

    group.bench_function("libsim_render_invocation_2ranks", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let mut sim = Leslie::new(comm, cfg());
                sim.step(comm);
                let session = libsim::Session::parse(
                    "image 256 256\nplot isosurface vorticity levels=0.3,0.6\nplot pseudocolor vorticity axis=z index=2\n",
                )
                .unwrap();
                let mut a = libsim::LibsimAnalysis::new(
                    session,
                    std::path::Path::new("/nonexistent/.visitrc"),
                );
                a.execute(&LeslieAdaptor::new(&sim), comm);
            })
        })
    });
    group.finish();
}

criterion_group!(benches, leslie);
criterion_main!(benches);
