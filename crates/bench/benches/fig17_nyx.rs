//! Fig. 17 (real mode): the Nyx proxy — particle-mesh step with
//! migration, and the two in situ analyses (histogram, Catalyst slice)
//! whose cost the paper shows to be negligible next to the solver.

use criterion::{criterion_group, criterion_main, Criterion};
use minimpi::World;
use science::{Nyx, NyxAdaptor, NyxConfig};
use sensei::analysis::histogram::HistogramAnalysis;
use sensei::analysis::AnalysisAdaptor as _;

fn cfg() -> NyxConfig {
    NyxConfig {
        grid: [16, 16, 16],
        ..NyxConfig::default()
    }
}

fn nyx(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_nyx");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("solver_step_4ranks", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                let mut sim = Nyx::new(comm, cfg());
                sim.step(comm);
                sim.step(comm);
                sim.num_particles()
            })
        })
    });

    group.bench_function("histogram_step_4ranks", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                let sim = Nyx::new(comm, cfg());
                let mut h = HistogramAnalysis::new("density", 128);
                h.execute(&NyxAdaptor::new(&sim), comm)
            })
        })
    });

    group.bench_function("catalyst_slice_step_4ranks", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                let sim = Nyx::new(comm, cfg());
                let mut pipe = catalyst::SlicePipeline::new("density", 2, 8);
                pipe.width = 256;
                pipe.height = 256;
                let mut a = catalyst::CatalystSliceAnalysis::new(pipe);
                a.execute(&NyxAdaptor::new(&sim), comm)
            })
        })
    });
    group.finish();
}

criterion_group!(benches, nyx);
criterion_main!(benches);
