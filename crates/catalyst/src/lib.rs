//! # catalyst — a ParaView Catalyst-like in situ infrastructure
//!
//! Catalyst exposes ParaView's pipeline machinery in situ. This crate
//! reproduces the pieces the paper exercises:
//!
//! * **Editions** ([`Edition`]) — feature-trimmed library builds that
//!   shrink the executable footprint (the paper's PHASTA run used a
//!   rendering-only Edition: 153 MB statically linked, 87 MB dynamic);
//! * the **slice pipeline** ([`SlicePipeline`]) — extract a 2D slice
//!   from the 3D volume, pseudocolor it, **binary-swap** composite to a
//!   1920×1080 image on rank 0, and PNG-encode it there (serial zlib,
//!   the Table 2 cost center);
//! * a tetrahedral **cutter** ([`cutter`]) for unstructured meshes
//!   (PHASTA's slice-through-the-wing images);
//! * a SENSEI [`sensei::AnalysisAdaptor`] wrapper
//!   ([`CatalystSliceAnalysis`]) so simulations drive Catalyst through
//!   the generic interface without Catalyst-specific code.

pub mod cutter;
pub mod edition;
pub mod pipeline;

pub use edition::Edition;
pub use pipeline::{CatalystSliceAnalysis, SliceOutput, SlicePipeline};

/// Catalyst's default output resolution in the paper's miniapp study.
pub const DEFAULT_IMAGE: (usize, usize) = (1920, 1080);
