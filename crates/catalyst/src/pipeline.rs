//! The Catalyst slice pipeline and its SENSEI analysis adaptor.

use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;

use datamodel::DataSet;
use minimpi::Comm;
use render::color::{Color, Colormap};
use render::composite::Compositor;
use render::deflate::Mode;
use render::pipeline::{pseudocolor_slice, SliceRender};
use render::png::encode_framebuffer;
use sensei::{AnalysisAdaptor, Association, DataAdaptor, Steering};

/// Where rendered images go.
#[derive(Clone, Debug, PartialEq)]
pub enum SliceOutput {
    /// Keep only the most recent PNG bytes in memory (tests, staging).
    InMemory,
    /// Write `slice_<step>.png` files into the directory.
    Directory(PathBuf),
}

/// Configuration of a Catalyst slice extract + render.
#[derive(Clone, Debug)]
pub struct SlicePipeline {
    /// Point array to pseudocolor.
    pub array: String,
    /// Sliced axis.
    pub axis: usize,
    /// Global point index of the plane.
    pub global_index: i64,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// PNG compression mode (`Fixed` = real zlib; `Stored` reproduces
    /// the paper's skip-the-compression ablation).
    pub png_mode: Mode,
    /// Output placement.
    pub output: SliceOutput,
    /// Render every `frequency`-th step (1 = every step).
    pub frequency: u64,
}

impl SlicePipeline {
    /// A pipeline with the paper's Catalyst defaults: 1920×1080, real
    /// compression, every step, in-memory output.
    pub fn new(array: impl Into<String>, axis: usize, global_index: i64) -> Self {
        SlicePipeline {
            array: array.into(),
            axis,
            global_index,
            width: crate::DEFAULT_IMAGE.0,
            height: crate::DEFAULT_IMAGE.1,
            png_mode: Mode::Fixed,
            output: SliceOutput::InMemory,
            frequency: 1,
        }
    }
}

/// Shared handle to the most recent PNG (rank 0 only).
pub type PngHandle = Arc<Mutex<Option<Vec<u8>>>>;

/// SENSEI analysis adaptor driving the Catalyst slice pipeline.
pub struct CatalystSliceAnalysis {
    pipeline: SlicePipeline,
    last_png: PngHandle,
    images_written: u64,
    failures: Vec<String>,
    reported_missing: bool,
}

impl CatalystSliceAnalysis {
    /// Wrap a pipeline.
    pub fn new(pipeline: SlicePipeline) -> Self {
        assert!(pipeline.frequency >= 1, "frequency must be at least 1");
        CatalystSliceAnalysis {
            pipeline,
            last_png: Arc::new(Mutex::new(None)),
            images_written: 0,
            failures: Vec::new(),
            reported_missing: false,
        }
    }

    /// Handle to the latest PNG bytes (filled on rank 0).
    pub fn png_handle(&self) -> PngHandle {
        Arc::clone(&self.last_png)
    }

    /// Number of images produced so far (on rank 0).
    pub fn images_written(&self) -> u64 {
        self.images_written
    }

    /// Pull `(local extent, global extent, values)` for a structured
    /// leaf dataset carrying the configured array.
    fn structured_field(
        &mut self,
        data: &dyn DataAdaptor,
    ) -> Option<(datamodel::Extent, datamodel::Extent, Vec<f64>)> {
        let mut mesh = data.mesh();
        if let Err(err) = data.add_array(&mut mesh, Association::Point, &self.pipeline.array) {
            if !self.reported_missing {
                self.reported_missing = true;
                self.failures.push(err.to_string());
            }
            return None;
        }
        // Sanitizer: the views staged below are zero-copy borrows of
        // the simulation's arrays; hold a publish window for the
        // duration of the marshal.
        let _publish = datamodel::publish_dataset(&mesh, "catalyst");
        for leaf in mesh.leaves() {
            let (local, global, attrs) = match leaf {
                DataSet::Image(g) => (g.extent, g.global_extent, &g.point_data),
                DataSet::Rectilinear(g) => (g.extent, g.global_extent, &g.point_data),
                _ => continue,
            };
            let Some(arr) = attrs.get(&self.pipeline.array) else {
                continue;
            };
            // Space-checked read: a device-resident array reaching a
            // host-side render surfaces as a failure, not a quiet copy.
            let values = match arr.values_in(0, datamodel::current_space()) {
                Ok(v) => v,
                Err(err) => {
                    self.failures.push(format!("catalyst-slice: {err}"));
                    return None;
                }
            };
            return Some((local, global, values));
        }
        None
    }
}

impl AnalysisAdaptor for CatalystSliceAnalysis {
    fn name(&self) -> &str {
        "catalyst-slice"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        if !data.step().is_multiple_of(self.pipeline.frequency) {
            return Steering::Continue;
        }
        let Some((local, global, values)) = self.structured_field(data) else {
            // Still participate in the collective render with an empty
            // block so other ranks don't hang.
            let cfg = self.render_config();
            let empty = datamodel::Extent::new([0, 0, 0], [0, 0, 0]);
            let _ = pseudocolor_slice(comm, &empty, &global_of(data), &[0.0], &cfg);
            return Steering::Continue;
        };
        let cfg = self.render_config();
        if let Some(fb) = pseudocolor_slice(comm, &local, &global, &values, &cfg) {
            // Rank 0: PNG-encode (the serial zlib stage) and emit.
            let png = encode_framebuffer(&fb, Color::WHITE, self.pipeline.png_mode);
            if let SliceOutput::Directory(dir) = &self.pipeline.output {
                let path = dir.join(format!("slice_{:05}.png", data.step()));
                if let Err(e) = std::fs::write(&path, &png) {
                    eprintln!("catalyst: failed to write {}: {e}", path.display());
                }
            }
            *self.last_png.lock() = Some(png);
            self.images_written += 1;
        }
        Steering::Continue
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

impl CatalystSliceAnalysis {
    fn render_config(&self) -> SliceRender {
        SliceRender {
            axis: self.pipeline.axis,
            global_index: self.pipeline.global_index,
            width: self.pipeline.width,
            height: self.pipeline.height,
            compositor: Compositor::BinarySwap,
            cmap: Colormap::cool_warm(),
        }
    }
}

/// Fallback global extent when a rank has no matching leaf (kept tiny;
/// the values are never sampled because the local extent is degenerate).
fn global_of(data: &dyn DataAdaptor) -> datamodel::Extent {
    match data.mesh() {
        DataSet::Image(g) => g.global_extent,
        DataSet::Rectilinear(g) => g.global_extent,
        _ => datamodel::Extent::new([0, 0, 0], [1, 1, 1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{partition_extent, DataArray, Extent, ImageData};
    use minimpi::World;
    use render::png::decode_rgb;
    use sensei::{Bridge, InMemoryAdaptor};

    fn adaptor(comm: &Comm, step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([9, 9, 9]);
        let dims = datamodel::dims_create(comm.size());
        let local = partition_extent(&global, dims, comm.rank());
        let mut g = ImageData::new(local, global);
        let vals: Vec<f64> = local.iter_points().map(|p| (p[0] + p[1]) as f64).collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn produces_decodable_png_on_root() {
        World::run(4, |comm| {
            let mut pipe = SlicePipeline::new("data", 2, 4);
            pipe.width = 40;
            pipe.height = 30;
            let analysis = CatalystSliceAnalysis::new(pipe);
            let png = analysis.png_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(analysis));
            bridge.execute(&adaptor(comm, 0), comm);
            if comm.rank() == 0 {
                let bytes = png.lock().clone().expect("png on root");
                let (w, h, rgb) = decode_rgb(&bytes).expect("valid png");
                assert_eq!((w, h), (40, 30));
                // Pseudocolored plane: not all pixels identical.
                assert!(rgb.chunks(3).any(|p| p != &rgb[0..3]));
            } else {
                assert!(png.lock().is_none());
            }
        });
    }

    #[test]
    fn frequency_skips_steps() {
        World::run(2, |comm| {
            let mut pipe = SlicePipeline::new("data", 2, 4);
            pipe.width = 16;
            pipe.height = 16;
            pipe.frequency = 5;
            let mut analysis = CatalystSliceAnalysis::new(pipe);
            for s in 0..10 {
                analysis.execute(&adaptor(comm, s), comm);
            }
            if comm.rank() == 0 {
                assert_eq!(analysis.images_written(), 2, "steps 0 and 5 only");
            }
        });
    }

    #[test]
    fn writes_files_when_directed() {
        World::run(2, |comm| {
            let dir = std::env::temp_dir().join(format!(
                "catalyst_test_{}_{}",
                std::process::id(),
                comm.rank()
            ));
            // Only rank 0 writes; both configure the same dir path.
            let shared = std::env::temp_dir().join(format!("catalyst_test_{}", std::process::id()));
            let _ = std::fs::create_dir_all(&shared);
            let mut pipe = SlicePipeline::new("data", 2, 4);
            pipe.width = 16;
            pipe.height = 16;
            pipe.output = SliceOutput::Directory(shared.clone());
            let mut analysis = CatalystSliceAnalysis::new(pipe);
            analysis.execute(&adaptor(comm, 3), comm);
            comm.barrier();
            if comm.rank() == 0 {
                let f = shared.join("slice_00003.png");
                let bytes = std::fs::read(&f).expect("file written");
                assert!(decode_rgb(&bytes).is_ok());
                let _ = std::fs::remove_dir_all(&shared);
            }
            let _ = dir;
        });
    }

    #[test]
    fn stored_mode_is_larger_than_fixed() {
        World::run(1, |comm| {
            let mut sizes = Vec::new();
            for mode in [Mode::Fixed, Mode::Stored] {
                let mut pipe = SlicePipeline::new("data", 2, 4);
                pipe.width = 64;
                pipe.height = 64;
                pipe.png_mode = mode;
                let mut analysis = CatalystSliceAnalysis::new(pipe);
                analysis.execute(&adaptor(comm, 0), comm);
                sizes.push(analysis.png_handle().lock().as_ref().unwrap().len());
            }
            assert!(
                sizes[0] < sizes[1],
                "fixed {} < stored {}",
                sizes[0],
                sizes[1]
            );
        });
    }
}
