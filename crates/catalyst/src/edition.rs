//! Catalyst Editions: trimmed builds enabling only the components a
//! pipeline needs, to minimize instruction-memory footprint (Fabian et
//! al., and §2.2.3/§4.2.1 of the paper).

/// A Catalyst Edition: which feature groups are compiled in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edition {
    /// Edition name.
    pub name: String,
    /// Rendering components (OSMesa-equivalent software rasterizer).
    pub rendering: bool,
    /// General data-processing filters beyond the slice/cut set.
    pub full_filters: bool,
    /// I/O writers (VTK file output).
    pub writers: bool,
    /// Statically linked into the simulation executable.
    pub static_link: bool,
}

impl Edition {
    /// The "essentials + rendering" Edition PHASTA used: rendering and a
    /// small subset of filters, no writers.
    pub fn rendering_edition(static_link: bool) -> Self {
        Edition {
            name: "rendering".to_string(),
            rendering: true,
            full_filters: false,
            writers: false,
            static_link,
        }
    }

    /// The everything-enabled build (full ParaView-server equivalent).
    pub fn full(static_link: bool) -> Self {
        Edition {
            name: "full".to_string(),
            rendering: true,
            full_filters: true,
            writers: true,
            static_link,
        }
    }

    /// Data-extracts-only Edition (no rendering).
    pub fn extracts_only() -> Self {
        Edition {
            name: "extracts".to_string(),
            rendering: false,
            full_filters: false,
            writers: true,
            static_link: true,
        }
    }

    /// Modeled executable-size contribution in bytes. Anchored to the
    /// paper: the PHASTA rendering Edition measured **153 MB static**
    /// and **87 MB dynamic** (§4.2.1).
    pub fn executable_bytes(&self) -> u64 {
        let mut mb: u64 = 40; // core Catalyst + VTK data model
        if self.rendering {
            mb += 47; // rendering classes + OSMesa
        }
        if self.full_filters {
            mb += 95;
        }
        if self.writers {
            mb += 12;
        }
        if self.static_link {
            mb = mb * 153 / 87; // static linking pulls in dependencies
        }
        mb * 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phasta_edition_sizes_match_paper() {
        let s = Edition::rendering_edition(true).executable_bytes();
        let d = Edition::rendering_edition(false).executable_bytes();
        assert_eq!(s, 153_000_000, "static: 153 MB");
        assert_eq!(d, 87_000_000, "dynamic: 87 MB");
    }

    #[test]
    fn editions_order_by_features() {
        assert!(
            Edition::full(true).executable_bytes()
                > Edition::rendering_edition(true).executable_bytes()
        );
        assert!(
            Edition::extracts_only().executable_bytes()
                < Edition::rendering_edition(true).executable_bytes()
        );
    }
}
