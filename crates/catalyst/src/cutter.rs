//! Plane cutter for unstructured tetrahedral meshes — the filter behind
//! the PHASTA "slice through the wing" images (§4.2.1). Cutting a tet
//! with a plane yields a triangle or a quad (two triangles); vertex
//! scalars interpolate onto the cut.

use datamodel::{CellType, UnstructuredGrid};

/// A cut triangle: three world-space vertices with interpolated scalars.
#[derive(Clone, Debug, PartialEq)]
pub struct CutTriangle {
    /// Vertex positions.
    pub points: [[f64; 3]; 3],
    /// Interpolated scalar at each vertex.
    pub scalars: [f64; 3],
}

/// Signed distance of `p` to the plane `normal · x = offset`.
fn plane_dist(p: [f64; 3], normal: [f64; 3], offset: f64) -> f64 {
    p[0] * normal[0] + p[1] * normal[1] + p[2] * normal[2] - offset
}

fn lerp_point(a: [f64; 3], b: [f64; 3], t: f64) -> [f64; 3] {
    [
        a[0] + t * (b[0] - a[0]),
        a[1] + t * (b[1] - a[1]),
        a[2] + t * (b[2] - a[2]),
    ]
}

/// Cut every tetrahedral cell of `grid` with the plane
/// `normal · x = offset`, interpolating the named point scalar. Non-tet
/// cells are skipped.
pub fn cut_tets(
    grid: &UnstructuredGrid,
    scalar_array: &str,
    normal: [f64; 3],
    offset: f64,
) -> Vec<CutTriangle> {
    let scalars = grid.point_data.get(scalar_array);
    let value = |p: usize| scalars.map(|a| a.get(p, 0)).unwrap_or(0.0);
    let mut out = Vec::new();
    for c in 0..grid.num_cells() {
        if grid.cell_types[c] != CellType::Tetra {
            continue;
        }
        let ids = grid.cell_points(c);
        let pts: Vec<[f64; 3]> = ids.iter().map(|&p| grid.point_coords(p as usize)).collect();
        let vals: Vec<f64> = ids.iter().map(|&p| value(p as usize)).collect();
        let dists: Vec<f64> = pts.iter().map(|&p| plane_dist(p, normal, offset)).collect();

        let above: Vec<usize> = (0..4).filter(|&i| dists[i] >= 0.0).collect();
        let below: Vec<usize> = (0..4).filter(|&i| dists[i] < 0.0).collect();
        if above.is_empty() || below.is_empty() {
            continue; // plane misses this tet
        }
        // Crossing edges: every (above, below) pair.
        let crossing = |i: usize, j: usize| -> ([f64; 3], f64) {
            let t = dists[i] / (dists[i] - dists[j]);
            (
                lerp_point(pts[i], pts[j], t),
                vals[i] + t * (vals[j] - vals[i]),
            )
        };
        match (above.len(), below.len()) {
            (1, 3) | (3, 1) => {
                let (lone, rest) = if above.len() == 1 {
                    (above[0], below)
                } else {
                    (below[0], above)
                };
                let (p0, s0) = crossing(lone, rest[0]);
                let (p1, s1) = crossing(lone, rest[1]);
                let (p2, s2) = crossing(lone, rest[2]);
                out.push(CutTriangle {
                    points: [p0, p1, p2],
                    scalars: [s0, s1, s2],
                });
            }
            (2, 2) => {
                // Quad: edges (a0,b0), (a0,b1), (a1,b1), (a1,b0) in order.
                let (a0, a1) = (above[0], above[1]);
                let (b0, b1) = (below[0], below[1]);
                let (p0, s0) = crossing(a0, b0);
                let (p1, s1) = crossing(a0, b1);
                let (p2, s2) = crossing(a1, b1);
                let (p3, s3) = crossing(a1, b0);
                out.push(CutTriangle {
                    points: [p0, p1, p2],
                    scalars: [s0, s1, s2],
                });
                out.push(CutTriangle {
                    points: [p0, p2, p3],
                    scalars: [s0, s2, s3],
                });
            }
            _ => unreachable!("above/below partition of 4 vertices"),
        }
    }
    out
}

/// Total area of a set of cut triangles.
pub fn cut_area(tris: &[CutTriangle]) -> f64 {
    tris.iter()
        .map(|t| {
            let u = [
                t.points[1][0] - t.points[0][0],
                t.points[1][1] - t.points[0][1],
                t.points[1][2] - t.points[0][2],
            ];
            let v = [
                t.points[2][0] - t.points[0][0],
                t.points[2][1] - t.points[0][1],
                t.points[2][2] - t.points[0][2],
            ];
            let c = [
                u[1] * v[2] - u[2] * v[1],
                u[2] * v[0] - u[0] * v[2],
                u[0] * v[1] - u[1] * v[0],
            ];
            0.5 * (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::DataArray;

    /// Unit cube split into the Kuhn 6 tets, scalar = x coordinate.
    fn cube_mesh() -> UnstructuredGrid {
        let corners: Vec<[f64; 3]> = (0..8)
            .map(|c| [(c & 1) as f64, ((c >> 1) & 1) as f64, ((c >> 2) & 1) as f64])
            .collect();
        let mut pts = Vec::new();
        for c in &corners {
            pts.extend_from_slice(c);
        }
        let tets: [[i64; 4]; 6] = [
            [0, 1, 3, 7],
            [0, 1, 5, 7],
            [0, 2, 3, 7],
            [0, 2, 6, 7],
            [0, 4, 5, 7],
            [0, 4, 6, 7],
        ];
        let mut conn = Vec::new();
        let mut offsets = vec![0usize];
        for t in &tets {
            conn.extend_from_slice(t);
            offsets.push(conn.len());
        }
        let mut g = UnstructuredGrid::new(
            DataArray::owned("points", 3, pts),
            conn,
            offsets,
            vec![CellType::Tetra; 6],
        );
        let xs: Vec<f64> = corners.iter().map(|c| c[0]).collect();
        g.add_point_array(DataArray::owned("x", 1, xs));
        g
    }

    #[test]
    fn mid_cut_has_unit_area() {
        let g = cube_mesh();
        let tris = cut_tets(&g, "x", [1.0, 0.0, 0.0], 0.5);
        assert!(!tris.is_empty());
        let area = cut_area(&tris);
        assert!((area - 1.0).abs() < 1e-9, "cut area {area}");
    }

    #[test]
    fn scalars_interpolate_exactly_on_cut() {
        let g = cube_mesh();
        let tris = cut_tets(&g, "x", [1.0, 0.0, 0.0], 0.25);
        for t in &tris {
            for (p, s) in t.points.iter().zip(t.scalars.iter()) {
                assert!((p[0] - 0.25).abs() < 1e-12, "on the plane");
                assert!((s - 0.25).abs() < 1e-12, "scalar = x");
            }
        }
    }

    #[test]
    fn missing_plane_produces_nothing() {
        let g = cube_mesh();
        assert!(cut_tets(&g, "x", [1.0, 0.0, 0.0], 5.0).is_empty());
        assert!(cut_tets(&g, "x", [1.0, 0.0, 0.0], -5.0).is_empty());
    }

    #[test]
    fn oblique_cut_is_nonempty_with_plausible_area() {
        let g = cube_mesh();
        let n = {
            let l = (3.0f64).sqrt();
            [1.0 / l, 1.0 / l, 1.0 / l]
        };
        let tris = cut_tets(&g, "x", n, 0.8);
        let area = cut_area(&tris);
        assert!(area > 0.5 && area < 1.5, "oblique cut area {area}");
    }

    #[test]
    fn unknown_scalar_defaults_to_zero() {
        let g = cube_mesh();
        let tris = cut_tets(&g, "nope", [1.0, 0.0, 0.0], 0.5);
        assert!(tris.iter().all(|t| t.scalars == [0.0; 3]));
    }
}
