//! File-per-rank structured-grid I/O with a root manifest — the
//! "multi-file VTK I/O" configuration of Table 1.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use datamodel::Extent;

const MAGIC: &[u8; 4] = b"MVTK";

/// I/O and format errors.
#[derive(Debug)]
pub enum VtkIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid piece or manifest.
    Corrupt(&'static str),
}

impl From<std::io::Error> for VtkIoError {
    fn from(e: std::io::Error) -> Self {
        VtkIoError::Io(e)
    }
}

impl std::fmt::Display for VtkIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtkIoError::Io(e) => write!(f, "vtkio: {e}"),
            VtkIoError::Corrupt(m) => write!(f, "vtkio: corrupt file: {m}"),
        }
    }
}

impl std::error::Error for VtkIoError {}

/// One rank's block of one timestep.
#[derive(Clone, Debug, PartialEq)]
pub struct Piece {
    /// Local point extent.
    pub extent: Extent,
    /// Global point extent.
    pub global: Extent,
    /// Grid spacing.
    pub spacing: [f64; 3],
    /// Named scalar point fields.
    pub arrays: Vec<(String, Vec<f64>)>,
}

/// Piece file name for `(step, rank)`.
pub fn piece_path(dir: &Path, step: u64, rank: usize) -> PathBuf {
    dir.join(format!("step{step:05}_r{rank:06}.mvtk"))
}

/// Manifest file name for a step.
pub fn manifest_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("step{step:05}.pmvtk"))
}

/// Write one rank's piece file. Returns bytes written.
pub fn write_piece(dir: &Path, step: u64, rank: usize, piece: &Piece) -> Result<u64, VtkIoError> {
    for (name, data) in &piece.arrays {
        if data.len() != piece.extent.num_points() {
            return Err(VtkIoError::Corrupt(Box::leak(
                format!("array '{name}' not sized to extent").into_boxed_str(),
            )));
        }
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    for e in [&piece.extent, &piece.global] {
        for v in e.lo.iter().chain(e.hi.iter()) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    for s in piece.spacing {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    buf.extend_from_slice(&(piece.arrays.len() as u32).to_le_bytes());
    for (name, data) in &piece.arrays {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut f = std::fs::File::create(piece_path(dir, step, rank))?;
    f.write_all(&buf)?;
    Ok(buf.len() as u64)
}

/// Read a piece file back.
pub fn read_piece(dir: &Path, step: u64, rank: usize) -> Result<Piece, VtkIoError> {
    let mut raw = Vec::new();
    std::fs::File::open(piece_path(dir, step, rank))?.read_to_end(&mut raw)?;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<std::ops::Range<usize>, VtkIoError> {
        if *pos + n > raw.len() {
            return Err(VtkIoError::Corrupt("truncated"));
        }
        let r = *pos..*pos + n;
        *pos += n;
        Ok(r)
    };
    if &raw[take(&mut pos, 4)?] != MAGIC {
        return Err(VtkIoError::Corrupt("bad magic"));
    }
    let mut exts = [[0i64; 6]; 2];
    for e in exts.iter_mut() {
        for v in e.iter_mut() {
            *v = i64::from_le_bytes(raw[take(&mut pos, 8)?].try_into().unwrap());
        }
    }
    let mut spacing = [0.0f64; 3];
    for s in spacing.iter_mut() {
        *s = f64::from_le_bytes(raw[take(&mut pos, 8)?].try_into().unwrap());
    }
    let narrays = u32::from_le_bytes(raw[take(&mut pos, 4)?].try_into().unwrap()) as usize;
    let mut arrays = Vec::with_capacity(narrays);
    for _ in 0..narrays {
        let nl = u32::from_le_bytes(raw[take(&mut pos, 4)?].try_into().unwrap()) as usize;
        let name = String::from_utf8(raw[take(&mut pos, nl)?].to_vec())
            .map_err(|_| VtkIoError::Corrupt("bad name"))?;
        let count = u64::from_le_bytes(raw[take(&mut pos, 8)?].try_into().unwrap()) as usize;
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(f64::from_le_bytes(
                raw[take(&mut pos, 8)?].try_into().unwrap(),
            ));
        }
        arrays.push((name, data));
    }
    let ext = Extent::new(
        [exts[0][0], exts[0][1], exts[0][2]],
        [exts[0][3], exts[0][4], exts[0][5]],
    );
    let global = Extent::new(
        [exts[1][0], exts[1][1], exts[1][2]],
        [exts[1][3], exts[1][4], exts[1][5]],
    );
    Ok(Piece {
        extent: ext,
        global,
        spacing,
        arrays,
    })
}

/// The root-written manifest tying pieces together (the `.pvti`
/// analogue): piece count and extents.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Timestep.
    pub step: u64,
    /// Number of pieces.
    pub pieces: usize,
    /// Per-piece local extents.
    pub extents: Vec<Extent>,
}

/// Write the manifest (rank 0 only, as in the paper's setup).
pub fn write_manifest(dir: &Path, step: u64, extents: &[Extent]) -> Result<(), VtkIoError> {
    let mut text = format!("pieces {}\n", extents.len());
    for e in extents {
        text.push_str(&format!(
            "piece {} {} {} {} {} {}\n",
            e.lo[0], e.lo[1], e.lo[2], e.hi[0], e.hi[1], e.hi[2]
        ));
    }
    std::fs::write(manifest_path(dir, step), text)?;
    Ok(())
}

/// Read a manifest back.
pub fn read_manifest(dir: &Path, step: u64) -> Result<Manifest, VtkIoError> {
    let text = std::fs::read_to_string(manifest_path(dir, step))?;
    let mut lines = text.lines();
    let head = lines.next().ok_or(VtkIoError::Corrupt("empty manifest"))?;
    let pieces: usize = head
        .strip_prefix("pieces ")
        .and_then(|s| s.parse().ok())
        .ok_or(VtkIoError::Corrupt("bad manifest header"))?;
    let mut extents = Vec::with_capacity(pieces);
    for line in lines {
        let nums: Vec<i64> = line
            .strip_prefix("piece ")
            .ok_or(VtkIoError::Corrupt("bad piece line"))?
            .split_whitespace()
            .map(|w| w.parse().map_err(|_| VtkIoError::Corrupt("bad number")))
            .collect::<Result<_, _>>()?;
        if nums.len() != 6 {
            return Err(VtkIoError::Corrupt("piece needs 6 numbers"));
        }
        extents.push(Extent::new(
            [nums[0], nums[1], nums[2]],
            [nums[3], nums[4], nums[5]],
        ));
    }
    if extents.len() != pieces {
        return Err(VtkIoError::Corrupt("piece count mismatch"));
    }
    Ok(Manifest {
        step,
        pieces,
        extents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vtkio_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_piece() -> Piece {
        let extent = Extent::new([2, 0, 0], [4, 2, 2]);
        Piece {
            extent,
            global: Extent::whole([8, 3, 3]),
            spacing: [0.5, 1.0, 2.0],
            arrays: vec![(
                "data".to_string(),
                (0..extent.num_points()).map(|i| i as f64).collect(),
            )],
        }
    }

    #[test]
    fn piece_roundtrip() {
        let dir = tmpdir("roundtrip");
        let p = sample_piece();
        let bytes = write_piece(&dir, 3, 7, &p).unwrap();
        assert!(bytes as usize > p.extent.num_points() * 8);
        let back = read_piece(&dir, 3, 7).unwrap();
        assert_eq!(back, p);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = tmpdir("manifest");
        let extents = vec![
            Extent::new([0, 0, 0], [4, 2, 2]),
            Extent::new([4, 0, 0], [7, 2, 2]),
        ];
        write_manifest(&dir, 5, &extents).unwrap();
        let m = read_manifest(&dir, 5).unwrap();
        assert_eq!(m.pieces, 2);
        assert_eq!(m.extents, extents);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_sized_array_rejected() {
        let dir = tmpdir("badsize");
        let mut p = sample_piece();
        p.arrays[0].1.pop();
        assert!(write_piece(&dir, 0, 0, &p).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_piece_detected() {
        let dir = tmpdir("corrupt");
        write_piece(&dir, 0, 0, &sample_piece()).unwrap();
        let path = piece_path(&dir, 0, 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        assert!(read_piece(&dir, 0, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tmpdir("missing");
        assert!(matches!(read_piece(&dir, 9, 9), Err(VtkIoError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
