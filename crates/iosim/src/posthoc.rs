//! The post hoc analysis workflow (Fig. 11): a reader group *smaller*
//! than the writer group (the paper uses 10%) reads each timestep's
//! pieces back, reassembles blocks, and runs SENSEI analyses — the same
//! analyses that ran in situ, which is the point of the comparison.

use std::path::{Path, PathBuf};

use datamodel::{Attributes, DataArray, DataSet, ImageData, MultiBlock};
use minimpi::Comm;
use sensei::{AdaptorError, AnalysisAdaptor, Association, Bridge, DataAdaptor};

use crate::vtkio::read_piece;

/// Wall-clock decomposition of a post hoc run — the read/process/write
/// stacked bars of Fig. 11.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PosthocReport {
    /// Seconds spent reading pieces from storage.
    pub read_seconds: f64,
    /// Seconds spent in analysis execution.
    pub process_seconds: f64,
    /// Seconds spent writing result artifacts.
    pub write_seconds: f64,
    /// Steps processed.
    pub steps: u64,
    /// Bytes read from storage by this rank.
    pub bytes_read: u64,
}

/// Adaptor over the pieces this reader reassembled for one step.
struct PiecesAdaptor {
    blocks: Vec<ImageData>,
    step: u64,
}

impl DataAdaptor for PiecesAdaptor {
    fn time(&self) -> f64 {
        self.step as f64
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        let mut mb = MultiBlock::new();
        for b in &self.blocks {
            let mut empty = b.clone();
            empty.point_data = Attributes::new();
            empty.cell_data = Attributes::new();
            mb.push(DataSet::Image(empty));
        }
        DataSet::Multi(mb)
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        if assoc != Association::Point {
            return Vec::new();
        }
        let mut names = Vec::new();
        for b in &self.blocks {
            for n in b.point_data.names() {
                if !names.iter().any(|x: &String| x == n) {
                    names.push(n.to_string());
                }
            }
        }
        names
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        let known = self
            .array_names(Association::Point)
            .iter()
            .any(|n| n == name);
        if assoc != Association::Point {
            return Err(if known {
                AdaptorError::WrongAssociation {
                    name: name.to_string(),
                    requested: assoc,
                    available: Association::Point,
                }
            } else {
                AdaptorError::UnknownArray {
                    name: name.to_string(),
                    assoc,
                }
            });
        }
        let DataSet::Multi(mb) = mesh else {
            return Err(AdaptorError::LayoutUnsupported {
                name: name.to_string(),
                detail: "pieces adaptor presents a multiblock mesh".to_string(),
            });
        };
        let mut any = false;
        for (i, b) in self.blocks.iter().enumerate() {
            if let (Some(DataSet::Image(g)), Some(arr)) = (mb.block_mut(i), b.point_data.get(name))
            {
                g.point_data.insert(arr.clone());
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(AdaptorError::UnknownArray {
                name: name.to_string(),
                assoc,
            })
        }
    }
}

/// Run the post hoc workflow over `comm` (the **reader** communicator):
/// for each step in `0..steps`, read the pieces of writers assigned to
/// this reader (round-robin over `writers`), reassemble, and execute the
/// analyses. Results land wherever the analyses put them; a small
/// results artifact is written to `results_path` by rank 0 to account
/// for the "write" bar.
pub fn posthoc_analysis(
    comm: &Comm,
    dir: &Path,
    steps: u64,
    writers: usize,
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
    results_path: Option<PathBuf>,
) -> (Bridge, PosthocReport) {
    let mut bridge = Bridge::new();
    for a in analyses {
        bridge.register(a);
    }
    let mut report = PosthocReport::default();
    let my_writers: Vec<usize> = (comm.rank()..writers).step_by(comm.size()).collect();

    for step in 0..steps {
        // Read phase.
        let t0 = probe::time::Wall::now();
        let mut blocks = Vec::with_capacity(my_writers.len());
        for &w in &my_writers {
            let piece = read_piece(dir, step, w)
                .unwrap_or_else(|e| panic!("posthoc: reading step {step} rank {w}: {e}"));
            let mut g =
                ImageData::new(piece.extent, piece.global).with_geometry([0.0; 3], piece.spacing);
            for (name, data) in piece.arrays {
                report.bytes_read += data.len() as u64 * 8;
                g.add_point_array(DataArray::owned(name, 1, data));
            }
            blocks.push(g);
        }
        report.read_seconds += t0.elapsed().as_secs_f64();

        // Process phase.
        let t1 = probe::time::Wall::now();
        let adaptor = PiecesAdaptor { blocks, step };
        bridge.execute(&adaptor, comm);
        report.process_seconds += t1.elapsed().as_secs_f64();
        report.steps += 1;
    }
    bridge.finalize(comm);

    // Write phase: a small results artifact from rank 0.
    if comm.rank() == 0 {
        if let Some(path) = results_path {
            let t2 = probe::time::Wall::now();
            let text = format!(
                "posthoc steps={} readers={} writers={}\n",
                steps,
                comm.size(),
                writers
            );
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("posthoc: writing results: {e}");
            }
            report.write_seconds += t2.elapsed().as_secs_f64();
        }
    }
    (bridge, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vtkio::{write_manifest, write_piece, Piece};
    use datamodel::{partition_extent, Extent};
    use minimpi::World;
    use sensei::analysis::histogram::HistogramAnalysis;

    /// Write a 10-writer dataset of `steps` steps, value = global x.
    fn write_dataset(dir: &Path, steps: u64, writers: usize) {
        let global = Extent::whole([writers * 2 + 1, 3, 3]);
        for step in 0..steps {
            let mut extents = Vec::new();
            for w in 0..writers {
                let local = partition_extent(&global, [writers, 1, 1], w);
                extents.push(local);
                let piece = Piece {
                    extent: local,
                    global,
                    spacing: [1.0; 3],
                    arrays: vec![(
                        "data".to_string(),
                        local
                            .iter_points()
                            .map(|p| p[0] as f64 + step as f64)
                            .collect(),
                    )],
                };
                write_piece(dir, step, w, &piece).unwrap();
            }
            write_manifest(dir, step, &extents).unwrap();
        }
    }

    #[test]
    fn ten_percent_readers_reassemble_and_analyze() {
        let dir = std::env::temp_dir().join(format!("posthoc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let writers = 10usize;
        write_dataset(&dir, 3, writers);
        let d2 = dir.clone();
        // 1 reader = 10% of 10 writers.
        World::run(1, move |comm| {
            let hist = HistogramAnalysis::new("data", 8);
            let handle = hist.results_handle();
            let (bridge, report) = posthoc_analysis(
                comm,
                &d2,
                3,
                writers,
                vec![Box::new(hist)],
                Some(d2.join("results.txt")),
            );
            assert_eq!(bridge.steps(), 3);
            assert_eq!(report.steps, 3);
            assert!(report.read_seconds > 0.0);
            assert!(report.bytes_read > 0);
            let r = handle.lock().clone().expect("histogram");
            // Global grid 21×3×3; pieces overlap on shared planes:
            // 10 pieces of 3×3×3 = 270 values per step.
            assert_eq!(r.counts.iter().sum::<u64>(), 270);
            assert!(d2.join("results.txt").exists());
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_readers_split_the_writers() {
        let dir = std::env::temp_dir().join(format!("posthoc_multi_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_dataset(&dir, 2, 6);
        let d2 = dir.clone();
        World::run(2, move |comm| {
            let hist = HistogramAnalysis::new("data", 4);
            let handle = hist.results_handle();
            let (_, report) = posthoc_analysis(comm, &d2, 2, 6, vec![Box::new(hist)], None);
            // Each of 2 readers reads 3 of the 6 writers' pieces.
            assert_eq!(report.bytes_read, 2 * 3 * 27 * 8);
            if comm.rank() == 0 {
                let r = handle.lock().clone().unwrap();
                assert_eq!(r.counts.iter().sum::<u64>(), 6 * 27);
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn posthoc_equals_insitu_result() {
        // The central equivalence: the histogram computed post hoc over
        // the files matches the histogram computed in situ.
        let dir = std::env::temp_dir().join(format!("posthoc_eq_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_dataset(&dir, 1, 4);
        let d2 = dir.clone();

        let posthoc = World::run(1, move |comm| {
            let hist = HistogramAnalysis::new("data", 8);
            let handle = hist.results_handle();
            posthoc_analysis(comm, &d2, 1, 4, vec![Box::new(hist)], None);
            let result = handle.lock().clone();
            result.unwrap()
        });

        let insitu = World::run(4, move |comm| {
            let global = Extent::whole([9, 3, 3]);
            let local = partition_extent(&global, [4, 1, 1], comm.rank());
            let mut g = ImageData::new(local, global);
            g.add_point_array(DataArray::owned(
                "data",
                1,
                local.iter_points().map(|p| p[0] as f64).collect(),
            ));
            let mut hist = HistogramAnalysis::new("data", 8);
            let handle = hist.results_handle();
            use sensei::AnalysisAdaptor as _;
            hist.execute(
                &sensei::InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0),
                comm,
            );
            if comm.rank() == 0 {
                handle.lock().clone()
            } else {
                None
            }
        });
        let insitu_hist = insitu[0].clone().unwrap();
        assert_eq!(posthoc[0].counts, insitu_hist.counts);
        assert_eq!(posthoc[0].min, insitu_hist.min);
        assert_eq!(posthoc[0].max, insitu_hist.max);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
