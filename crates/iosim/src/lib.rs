//! # iosim — post hoc I/O paths and storage-model glue
//!
//! The paper's post hoc comparison (Table 1, Figs. 10–12) exercises two
//! write paths and a read-side workflow:
//!
//! * [`vtkio`] — **file-per-rank VTK-style I/O**: every rank writes its
//!   block to its own file plus a root-written manifest (the paper's
//!   "multi-file VTK I/O", the faster path at these scales);
//! * [`collective`] — **MPI-IO-style collective shared-file writes**:
//!   two-phase aggregation onto slab-owning writer ranks that each issue
//!   one positioned write into a single global row-major file (the
//!   `MPI_Type_create_subarray` + `MPI_File_write_all` pattern);
//! * [`posthoc`] — the read-side: a *smaller* reader group (the paper
//!   uses 10% of the write concurrency) reads the pieces back,
//!   reassembles blocks, and runs SENSEI analyses on them.
//!
//! All three run for real at thread scale; the `perfmodel::storage`
//! models (calibrated to Table 1) regenerate the paper-scale costs.

pub mod collective;
pub mod posthoc;
pub mod vtkio;

pub use collective::{collective_write, read_global};
pub use posthoc::{posthoc_analysis, PosthocReport};
pub use vtkio::{read_piece, write_manifest, write_piece, Manifest, Piece, VtkIoError};
