//! MPI-IO-style collective shared-file writes: the
//! `MPI_Type_create_subarray` + `MPI_File_set_view` +
//! `MPI_File_write_all` pattern of Table 1, implemented as real
//! two-phase collective buffering:
//!
//! 1. the global row-major file space is split into contiguous k-slabs,
//!    one per **aggregator** rank (collective buffering nodes);
//! 2. every rank routes the parts of its block falling in each slab to
//!    that slab's aggregator;
//! 3. aggregators assemble their slab and issue one positioned write.
//!
//! The resulting file is a dense row-major `f64` array of the global
//! extent — byte-identical regardless of the writer decomposition.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use datamodel::Extent;
use minimpi::Comm;

const TAG_ROUTE: u32 = 0x10C0_0001;

/// Which ranks aggregate: evenly spaced, `naggr` of them.
fn aggregator_ranks(p: usize, naggr: usize) -> Vec<usize> {
    (0..naggr).map(|a| a * p / naggr).collect()
}

/// The k-slab owned by aggregator `a` of `naggr`: global k-plane range
/// `[lo, hi)`.
fn slab(a: usize, naggr: usize, nk: usize) -> (usize, usize) {
    (a * nk / naggr, (a + 1) * nk / naggr)
}

/// Collectively write `values` (point data over `local`, row-major,
/// k slowest) into one shared dense file of the `global` extent.
/// Collective over `comm`; every rank must call it. `naggr` aggregators
/// perform the file writes (clamped to the communicator size).
pub fn collective_write(
    comm: &Comm,
    path: &Path,
    local: &Extent,
    global: &Extent,
    values: &[f64],
    naggr: usize,
) -> std::io::Result<()> {
    assert_eq!(values.len(), local.num_points(), "values sized to extent");
    let p = comm.size();
    let naggr = naggr.clamp(1, p);
    let aggs = aggregator_ranks(p, naggr);
    let gd = global.point_dims();
    let me = comm.rank();

    // Phase 1: route my rows to slab owners. A "row" is a contiguous x
    // run at fixed (j, k) — contiguous in the file too.
    let ld = local.point_dims();
    for (a, &agg) in aggs.iter().enumerate() {
        let (klo, khi) = slab(a, naggr, gd[2]);
        // Rows of mine whose global k falls in [klo, khi).
        let mut rows: Vec<(u64, Vec<f64>)> = Vec::new();
        for kz in 0..ld[2] {
            let gk = (local.lo[2] + kz as i64) as usize;
            if gk < klo || gk >= khi {
                continue;
            }
            for jy in 0..ld[1] {
                let gj = (local.lo[1] + jy as i64) as usize;
                let row_start = (kz * ld[1] + jy) * ld[0];
                let row = values[row_start..row_start + ld[0]].to_vec();
                let file_elem = ((gk * gd[1] + gj) * gd[0]) as u64 + local.lo[0] as u64;
                rows.push((file_elem, row));
            }
        }
        comm.send(agg, TAG_ROUTE, rows);
    }

    // Phase 2: aggregators assemble and write their slab.
    if let Some(a) = aggs.iter().position(|&r| r == me) {
        let (klo, khi) = slab(a, naggr, gd[2]);
        let plane = gd[0] * gd[1];
        let slab_elems = (khi - klo) * plane;
        let slab_base = (klo * plane) as u64;
        let mut buf = vec![0.0f64; slab_elems];
        for _ in 0..p {
            let (_src, rows): (usize, Vec<(u64, Vec<f64>)>) = comm.recv_any(TAG_ROUTE);
            for (file_elem, row) in rows {
                let off = (file_elem - slab_base) as usize;
                buf[off..off + row.len()].copy_from_slice(&row);
            }
        }
        if slab_elems > 0 {
            // Aggregators seek into a shared file; never truncate it.
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .open(path)?;
            f.seek(SeekFrom::Start(slab_base * 8))?;
            let mut bytes = Vec::with_capacity(slab_elems * 8);
            for v in &buf {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            f.write_all(&bytes)?;
        }
    }
    // File-system-level completion barrier (MPI_File_close semantics).
    comm.barrier();
    Ok(())
}

/// Read the whole shared file back as a dense global array (validation
/// and post hoc use).
pub fn read_global(path: &Path, global: &Extent) -> std::io::Result<Vec<f64>> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let n = global.num_points();
    if raw.len() != n * 8 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("file holds {} bytes, expected {}", raw.len(), n * 8),
        ));
    }
    Ok(raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{dims_create, partition_extent};
    use minimpi::World;

    fn field(p: [i64; 3]) -> f64 {
        (p[0] + 100 * p[1] + 10_000 * p[2]) as f64
    }

    fn run_collective(p: usize, naggr: usize, dims: [usize; 3]) -> Vec<f64> {
        let path = std::env::temp_dir().join(format!(
            "collective_{}_{p}_{naggr}_{}x{}x{}.bin",
            std::process::id(),
            dims[0],
            dims[1],
            dims[2]
        ));
        let _ = std::fs::remove_file(&path);
        let path2 = path.clone();
        World::run(p, move |comm| {
            let global = Extent::whole(dims);
            let pd = dims_create(comm.size());
            let local = partition_extent(&global, pd, comm.rank());
            let values: Vec<f64> = local.iter_points().map(field).collect();
            collective_write(comm, &path2, &local, &global, &values, naggr).unwrap();
        });
        let global = Extent::whole(dims);
        let out = read_global(&path, &global).unwrap();
        std::fs::remove_file(&path).unwrap();
        out
    }

    #[test]
    fn file_matches_global_field() {
        let dims = [9, 6, 5];
        let out = run_collective(4, 2, dims);
        let global = Extent::whole(dims);
        for (i, p) in global.iter_points().enumerate() {
            assert_eq!(out[i], field(p), "element {i} at {p:?}");
        }
    }

    #[test]
    fn decomposition_and_aggregator_invariance() {
        let dims = [8, 8, 8];
        let reference = run_collective(1, 1, dims);
        for (p, naggr) in [(2usize, 1usize), (4, 2), (8, 3), (6, 6)] {
            let out = run_collective(p, naggr, dims);
            assert_eq!(out, reference, "p={p} naggr={naggr}");
        }
    }

    #[test]
    fn more_aggregators_than_ranks_is_clamped() {
        let dims = [5, 5, 5];
        let out = run_collective(2, 99, dims);
        assert_eq!(out.len(), 125);
    }

    #[test]
    fn read_global_size_check() {
        let path = std::env::temp_dir().join(format!("collective_bad_{}.bin", std::process::id()));
        std::fs::write(&path, [0u8; 24]).unwrap();
        let err = read_global(&path, &Extent::whole([2, 2, 2])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
