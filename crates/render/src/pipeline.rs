//! End-to-end distributed render pipelines: extract → rasterize locally
//! → composite in parallel. These are the building blocks the
//! infrastructure crates (`catalyst`, `libsim`) configure differently
//! (image sizes, compositor family), per §4.1.3.

use datamodel::Extent;
use minimpi::Comm;

use crate::camera::Camera;
use crate::color::{Color, Colormap};
use crate::composite::{composite, Compositor};
use crate::framebuffer::Framebuffer;
use crate::isosurface::marching_tetrahedra;
use crate::raster::{fill_triangle, Vertex};
use crate::slice::{extract_plane, render_plane};

/// Configuration of a distributed pseudocolor-slice render.
#[derive(Clone, Debug)]
pub struct SliceRender {
    /// Sliced axis (0/1/2).
    pub axis: usize,
    /// Global point index of the plane.
    pub global_index: i64,
    /// Output image width.
    pub width: usize,
    /// Output image height.
    pub height: usize,
    /// Compositing algorithm.
    pub compositor: Compositor,
    /// Colormap for pseudocoloring.
    pub cmap: Colormap,
}

/// Render a slice of a block-decomposed structured point field.
/// Collective over `comm`; returns the composited image on rank 0.
///
/// Only ranks whose block intersects the plane rasterize anything (the
/// §4.1.3 behavior); everyone participates in compositing.
pub fn pseudocolor_slice(
    comm: &Comm,
    local: &Extent,
    global: &Extent,
    values: &[f64],
    cfg: &SliceRender,
) -> Option<Framebuffer> {
    // Global data range for a consistent color scale (two reductions).
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let glo = comm.allreduce_scalar(lo, f64::min);
    let ghi = comm.allreduce_scalar(hi, f64::max);

    let mut fb = Framebuffer::new(cfg.width, cfg.height);
    if let Some(slice) = extract_plane(local, global, values, cfg.axis, cfg.global_index) {
        render_plane(&mut fb, &slice, &cfg.cmap, (glo, ghi));
    }
    composite(comm, fb, cfg.compositor)
}

/// Configuration of a distributed isosurface render.
#[derive(Clone, Debug)]
pub struct IsosurfaceRender {
    /// Isovalues to extract (one surface each).
    pub isovalues: Vec<f64>,
    /// Camera.
    pub camera: Camera,
    /// Output image width.
    pub width: usize,
    /// Output image height.
    pub height: usize,
    /// Compositing algorithm.
    pub compositor: Compositor,
    /// Colormap indexed by isovalue position in the data range.
    pub cmap: Colormap,
    /// World-space origin of the structured grid.
    pub origin: [f64; 3],
    /// Grid spacing.
    pub spacing: [f64; 3],
}

/// Render isosurfaces of a block-decomposed structured point field with
/// flat diffuse shading. Collective; image lands on rank 0.
pub fn shaded_isosurface(
    comm: &Comm,
    local: &Extent,
    values: &[f64],
    cfg: &IsosurfaceRender,
) -> Option<Framebuffer> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let glo = comm.allreduce_scalar(lo, f64::min);
    let ghi = comm.allreduce_scalar(hi, f64::max);

    let mut fb = Framebuffer::new(cfg.width, cfg.height);
    let light = normalize([0.4, 0.5, -0.8]);
    for &iso in &cfg.isovalues {
        let base = cfg.cmap.map_range(iso, glo, ghi);
        let tris = marching_tetrahedra(local, values, iso, cfg.origin, cfg.spacing);
        for t in tris {
            let n = triangle_normal(&t);
            // Two-sided diffuse shade.
            let diffuse = (n[0] * light[0] + n[1] * light[1] + n[2] * light[2]).abs();
            let shade = 0.35 + 0.65 * diffuse;
            let c = Color::rgb(
                (base.r as f64 * shade) as u8,
                (base.g as f64 * shade) as u8,
                (base.b as f64 * shade) as u8,
            );
            let project = |p: [f64; 3]| cfg.camera.project(p, cfg.width, cfg.height);
            if let (Some(a), Some(b), Some(cc)) = (project(t[0]), project(t[1]), project(t[2])) {
                fill_triangle(
                    &mut fb,
                    Vertex {
                        x: a.0,
                        y: a.1,
                        z: a.2,
                        color: c,
                    },
                    Vertex {
                        x: b.0,
                        y: b.1,
                        z: b.2,
                        color: c,
                    },
                    Vertex {
                        x: cc.0,
                        y: cc.1,
                        z: cc.2,
                        color: c,
                    },
                );
            }
        }
    }
    composite(comm, fb, cfg.compositor)
}

fn triangle_normal(t: &[[f64; 3]; 3]) -> [f64; 3] {
    let u = [t[1][0] - t[0][0], t[1][1] - t[0][1], t[1][2] - t[0][2]];
    let v = [t[2][0] - t[0][0], t[2][1] - t[0][1], t[2][2] - t[0][2]];
    normalize([
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    ])
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if n < 1e-300 {
        return [0.0, 0.0, 1.0];
    }
    [v[0] / n, v[1] / n, v[2] / n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::partition_extent;
    use minimpi::World;

    #[test]
    fn distributed_slice_matches_single_rank() {
        let global = Extent::whole([9, 9, 9]);
        let field = |p: [i64; 3]| (p[0] + p[1] * 2) as f64;
        let cfg = SliceRender {
            axis: 2,
            global_index: 4,
            width: 24,
            height: 24,
            compositor: Compositor::BinarySwap,
            cmap: Colormap::cool_warm(),
        };
        let cfg1 = cfg.clone();
        let single = World::run(1, move |comm| {
            let vals: Vec<f64> = global.iter_points().map(field).collect();
            pseudocolor_slice(comm, &global, &global, &vals, &cfg1)
        });
        let cfg4 = cfg.clone();
        let multi = World::run(4, move |comm| {
            let local = partition_extent(&global, [2, 2, 1], comm.rank());
            let vals: Vec<f64> = local.iter_points().map(field).collect();
            pseudocolor_slice(comm, &local, &global, &vals, &cfg4)
        });
        let a = single[0].as_ref().unwrap();
        let b = multi[0].as_ref().unwrap();
        assert_eq!(a.color, b.color, "decomposition-invariant image");
        assert_eq!(a.covered_pixels(), 24 * 24);
    }

    #[test]
    fn non_intersecting_ranks_render_nothing_but_composite() {
        let global = Extent::whole([9, 3, 3]);
        let out = World::run(4, move |comm| {
            let local = partition_extent(&global, [4, 1, 1], comm.rank());
            let vals: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
            let cfg = SliceRender {
                axis: 0, // slice perpendicular to the decomposition axis
                global_index: 1,
                width: 8,
                height: 8,
                compositor: Compositor::DirectSendTree(2),
                cmap: Colormap::grayscale(),
            };
            pseudocolor_slice(comm, &local, &global, &vals, &cfg)
        });
        let root = out[0].as_ref().unwrap();
        assert_eq!(root.covered_pixels(), 64, "plane fully painted by one rank");
    }

    #[test]
    fn distributed_isosurface_renders_sphere() {
        let global = Extent::whole([17, 17, 17]);
        let out = World::run(8, move |comm| {
            let local = partition_extent(&global, [2, 2, 2], comm.rank());
            let c = 8.0;
            let vals: Vec<f64> = local
                .iter_points()
                .map(|p| {
                    let dx = p[0] as f64 - c;
                    let dy = p[1] as f64 - c;
                    let dz = p[2] as f64 - c;
                    (dx * dx + dy * dy + dz * dz).sqrt()
                })
                .collect();
            let cfg = IsosurfaceRender {
                isovalues: vec![5.0],
                camera: Camera::look_at([8.0, 8.0, -20.0], [8.0, 8.0, 8.0], [0.0, 1.0, 0.0], 0.9),
                width: 64,
                height: 64,
                compositor: Compositor::BinarySwap,
                cmap: Colormap::viridis(),
                origin: [0.0; 3],
                spacing: [1.0; 3],
            };
            shaded_isosurface(comm, &local, &vals, &cfg)
        });
        let root = out[0].as_ref().unwrap();
        // The sphere projects to a disc: a good chunk of pixels covered,
        // and the center pixel definitely hit.
        assert!(
            root.covered_pixels() > 200,
            "covered {}",
            root.covered_pixels()
        );
        assert_ne!(root.pixel(32, 32), crate::color::Color::TRANSPARENT);
        // Corners stay background.
        assert_eq!(root.pixel(1, 1), crate::color::Color::TRANSPARENT);
    }

    #[test]
    fn multiple_isovalues_nest() {
        let global = Extent::whole([17, 17, 17]);
        let covered: Vec<usize> = [vec![6.0], vec![6.0, 3.0]]
            .into_iter()
            .map(|isos| {
                let out = World::run(1, move |comm| {
                    let c = 8.0;
                    let vals: Vec<f64> = global
                        .iter_points()
                        .map(|p| {
                            let dx = p[0] as f64 - c;
                            let dy = p[1] as f64 - c;
                            let dz = p[2] as f64 - c;
                            (dx * dx + dy * dy + dz * dz).sqrt()
                        })
                        .collect();
                    let cfg = IsosurfaceRender {
                        isovalues: isos.clone(),
                        camera: Camera::look_at(
                            [8.0, 8.0, -20.0],
                            [8.0, 8.0, 8.0],
                            [0.0, 1.0, 0.0],
                            0.9,
                        ),
                        width: 48,
                        height: 48,
                        compositor: Compositor::BinarySwap,
                        cmap: Colormap::viridis(),
                        origin: [0.0; 3],
                        spacing: [1.0; 3],
                    };
                    shaded_isosurface(comm, &global, &vals, &cfg)
                        .unwrap()
                        .covered_pixels()
                });
                out[0]
            })
            .collect();
        // The outer surface dominates coverage; adding an inner level
        // must not reduce it.
        assert!(covered[1] >= covered[0]);
    }
}
