//! From-scratch DEFLATE (RFC 1951) and zlib (RFC 1950) encoding, plus a
//! matching inflater for round-trip verification.
//!
//! The encoder supports two modes:
//!
//! * **Stored** — uncompressed blocks (fast, ratio 1.0);
//! * **Fixed** — LZ77 (greedy, 3-byte hash chains, 32 KiB window) with
//!   the fixed Huffman code of RFC 1951 §3.2.6.
//!
//! The PHASTA study (Table 2) traced its per-step in situ cost to this
//! exact computation — serial zlib compression of the rendered PNG on
//! rank 0 — so the reproduction needs a real, measurable compressor.

/// Compression mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Uncompressed stored blocks.
    Stored,
    /// LZ77 + fixed Huffman coding.
    Fixed,
}

// --------------------------------------------------------------------
// Bit I/O (LSB-first, per RFC 1951)
// --------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Write `n` bits, LSB-first.
    fn bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        self.bitbuf |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Write a Huffman code: codes are emitted MSB-first.
    fn code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.bits(rev, len);
    }

    /// Pad to a byte boundary.
    fn align(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf = 0;
            self.nbits = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.align();
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bitbuf: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.bitbuf |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        self.refill();
        if self.nbits < n {
            return Err(InflateError::UnexpectedEof);
        }
        let v = (self.bitbuf & ((1u64 << n) - 1)) as u32;
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    fn align(&mut self) {
        let drop = self.nbits % 8;
        self.bitbuf >>= drop;
        self.nbits -= drop;
    }

    fn byte(&mut self) -> Result<u8, InflateError> {
        Ok(self.bits(8)? as u8)
    }
}

// --------------------------------------------------------------------
// Fixed Huffman tables
// --------------------------------------------------------------------

/// `(code, length)` for literal/length symbol `s` under the fixed code.
fn fixed_litlen_code(s: usize) -> (u32, u32) {
    match s {
        0..=143 => (0x30 + s as u32, 8),
        144..=255 => (0x190 + (s - 144) as u32, 9),
        256..=279 => ((s - 256) as u32, 7),
        280..=287 => (0xC0 + (s - 280) as u32, 8),
        _ => unreachable!("symbol out of range"),
    }
}

/// Length symbol table: `(symbol, extra_bits, base_length)`.
const LENGTH_TABLE: [(u32, u32, u32); 29] = [
    (257, 0, 3),
    (258, 0, 4),
    (259, 0, 5),
    (260, 0, 6),
    (261, 0, 7),
    (262, 0, 8),
    (263, 0, 9),
    (264, 0, 10),
    (265, 1, 11),
    (266, 1, 13),
    (267, 1, 15),
    (268, 1, 17),
    (269, 2, 19),
    (270, 2, 23),
    (271, 2, 27),
    (272, 2, 31),
    (273, 3, 35),
    (274, 3, 43),
    (275, 3, 51),
    (276, 3, 59),
    (277, 4, 67),
    (278, 4, 83),
    (279, 4, 99),
    (280, 4, 115),
    (281, 5, 131),
    (282, 5, 163),
    (283, 5, 195),
    (284, 5, 227),
    (285, 0, 258),
];

/// Distance symbol table: `(symbol, extra_bits, base_distance)`.
const DIST_TABLE: [(u32, u32, u32); 30] = [
    (0, 0, 1),
    (1, 0, 2),
    (2, 0, 3),
    (3, 0, 4),
    (4, 1, 5),
    (5, 1, 7),
    (6, 2, 9),
    (7, 2, 13),
    (8, 3, 17),
    (9, 3, 25),
    (10, 4, 33),
    (11, 4, 49),
    (12, 5, 65),
    (13, 5, 97),
    (14, 6, 129),
    (15, 6, 193),
    (16, 7, 257),
    (17, 7, 385),
    (18, 8, 513),
    (19, 8, 769),
    (20, 9, 1025),
    (21, 9, 1537),
    (22, 10, 2049),
    (23, 10, 3073),
    (24, 11, 4097),
    (25, 11, 6145),
    (26, 12, 8193),
    (27, 12, 12289),
    (28, 13, 16385),
    (29, 13, 24577),
];

fn length_symbol(len: u32) -> (u32, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    for i in (0..LENGTH_TABLE.len()).rev() {
        let (sym, extra, base) = LENGTH_TABLE[i];
        if len >= base && (len - base) < (1 << extra) || (sym == 285 && len == 258) {
            return (sym, extra, len - base);
        }
    }
    unreachable!("length {len} not in table")
}

fn dist_symbol(dist: u32) -> (u32, u32, u32) {
    debug_assert!((1..=32768).contains(&dist));
    for i in (0..DIST_TABLE.len()).rev() {
        let (sym, extra, base) = DIST_TABLE[i];
        if dist >= base {
            return (sym, extra, dist - base);
        }
    }
    unreachable!("distance {dist} not in table")
}

// --------------------------------------------------------------------
// LZ77
// --------------------------------------------------------------------

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 32;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// One LZ77 token.
enum Token {
    Literal(u8),
    Match { len: u32, dist: u32 },
}

fn lz77(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < MAX_CHAIN {
                if i - cand <= WINDOW {
                    let max_len = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < max_len && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break;
                }
                cand = prev[cand];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u32,
                dist: best_dist as u32,
            });
            // Insert the skipped positions so later matches can find them.
            let stop = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for (j, p) in prev.iter_mut().enumerate().take(stop).skip(i + 1) {
                let h = hash3(data, j);
                *p = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

// --------------------------------------------------------------------
// Public encode API
// --------------------------------------------------------------------

/// Raw DEFLATE-compress `data`.
pub fn deflate(data: &[u8], mode: Mode) -> Vec<u8> {
    match mode {
        Mode::Stored => deflate_stored(data),
        Mode::Fixed => deflate_fixed(data),
    }
}

fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(65535).collect()
    };
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        w.bits(u32::from(i == last), 1); // BFINAL
        w.bits(0b00, 2); // BTYPE = stored
        w.align();
        let len = chunk.len() as u16;
        w.out.extend_from_slice(&len.to_le_bytes());
        w.out.extend_from_slice(&(!len).to_le_bytes());
        w.out.extend_from_slice(chunk);
    }
    w.finish()
}

fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.bits(1, 1); // BFINAL
    w.bits(0b01, 2); // BTYPE = fixed Huffman
    for token in lz77(data) {
        match token {
            Token::Literal(b) => {
                let (code, len) = fixed_litlen_code(b as usize);
                w.code(code, len);
            }
            Token::Match { len, dist } => {
                let (sym, extra, rest) = length_symbol(len);
                let (code, clen) = fixed_litlen_code(sym as usize);
                w.code(code, clen);
                if extra > 0 {
                    w.bits(rest, extra);
                }
                let (dsym, dextra, drest) = dist_symbol(dist);
                w.code(dsym, 5); // fixed distance codes are 5 bits
                if dextra > 0 {
                    w.bits(drest, dextra);
                }
            }
        }
    }
    let (eob, eob_len) = fixed_litlen_code(256);
    w.code(eob, eob_len);
    w.finish()
}

/// Adler-32 checksum (RFC 1950).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// zlib-wrap (RFC 1950): header + DEFLATE stream + Adler-32.
pub fn zlib_compress(data: &[u8], mode: Mode) -> Vec<u8> {
    let mut out = vec![0x78, 0x01]; // 32K window, fastest-compression hint
    out.extend_from_slice(&deflate(data, mode));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

// --------------------------------------------------------------------
// Inflate (stored + fixed blocks; enough to verify our own output)
// --------------------------------------------------------------------

/// Decompression errors.
#[derive(Debug, PartialEq, Eq)]
pub enum InflateError {
    /// Ran out of input bits.
    UnexpectedEof,
    /// A stored block's length check failed.
    StoredLengthMismatch,
    /// Dynamic-Huffman blocks are not supported by this inflater.
    DynamicUnsupported,
    /// Reserved block type.
    BadBlockType,
    /// Invalid symbol or distance.
    BadSymbol,
    /// zlib header or checksum invalid.
    BadZlib,
}

/// Decode a raw DEFLATE stream produced by [`deflate`].
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.bits(1)?;
        let btype = r.bits(2)?;
        match btype {
            0b00 => {
                r.align();
                let len = r.byte()? as u16 | ((r.byte()? as u16) << 8);
                let nlen = r.byte()? as u16 | ((r.byte()? as u16) << 8);
                if len != !nlen {
                    return Err(InflateError::StoredLengthMismatch);
                }
                for _ in 0..len {
                    out.push(r.byte()?);
                }
            }
            0b01 => inflate_fixed_block(&mut r, &mut out)?,
            0b10 => return Err(InflateError::DynamicUnsupported),
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_fixed_litlen(r: &mut BitReader) -> Result<u32, InflateError> {
    // Fixed code lengths are 7–9 bits; decode by successive widening.
    let mut code = 0u32;
    for len in 1..=9u32 {
        code = (code << 1) | r.bits(1)?;
        let (lo, hi, base) = match len {
            7 => (0b000_0000, 0b001_0111, 256),
            8 if (0x30..=0xBF).contains(&code) => (0x30, 0xBF, 0),
            8 if (0xC0..=0xC7).contains(&code) => (0xC0, 0xC7, 280),
            9 => (0x190, 0x1FF, 144),
            _ => continue,
        };
        if (lo..=hi).contains(&code) {
            return Ok(base + (code - lo));
        }
    }
    Err(InflateError::BadSymbol)
}

fn inflate_fixed_block(r: &mut BitReader, out: &mut Vec<u8>) -> Result<(), InflateError> {
    loop {
        let sym = read_fixed_litlen(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (_, extra, base) = LENGTH_TABLE[(sym - 257) as usize];
                let len = base + r.bits(extra)?;
                // 5-bit distance code, MSB-first.
                let mut dcode = 0u32;
                for _ in 0..5 {
                    dcode = (dcode << 1) | r.bits(1)?;
                }
                if dcode >= 30 {
                    return Err(InflateError::BadSymbol);
                }
                let (_, dextra, dbase) = DIST_TABLE[dcode as usize];
                let dist = (dbase + r.bits(dextra)?) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(InflateError::BadSymbol);
                }
                let start = out.len() - dist;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

/// Decode a zlib stream (header + DEFLATE + Adler-32 check).
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    if data.len() < 6 || data[0] & 0x0F != 8 {
        return Err(InflateError::BadZlib);
    }
    if !((data[0] as u16) << 8 | data[1] as u16).is_multiple_of(31) {
        return Err(InflateError::BadZlib);
    }
    let body = &data[2..data.len() - 4];
    let out = inflate(body)?;
    let want = u32::from_be_bytes([
        data[data.len() - 4],
        data[data.len() - 3],
        data[data.len() - 2],
        data[data.len() - 1],
    ]);
    if adler32(&out) != want {
        return Err(InflateError::BadZlib);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], mode: Mode) {
        let comp = deflate(data, mode);
        let back = inflate(&comp).expect("inflate");
        assert_eq!(
            back,
            data,
            "roundtrip failed for {mode:?}, {} bytes",
            data.len()
        );
    }

    #[test]
    fn empty_input() {
        roundtrip(b"", Mode::Stored);
        roundtrip(b"", Mode::Fixed);
    }

    #[test]
    fn short_literals() {
        roundtrip(b"hello world", Mode::Stored);
        roundtrip(b"hello world", Mode::Fixed);
    }

    #[test]
    fn repetitive_data_roundtrips_and_compresses() {
        let data: Vec<u8> = b"abcabcabcabc"
            .iter()
            .cycle()
            .take(10_000)
            .cloned()
            .collect();
        roundtrip(&data, Mode::Fixed);
        let comp = deflate(&data, Mode::Fixed);
        assert!(
            comp.len() < data.len() / 4,
            "LZ77 should compress repeats well: {} vs {}",
            comp.len(),
            data.len()
        );
    }

    #[test]
    fn random_bytes_roundtrip() {
        // Pseudo-random: xorshift so no rand dependency needed here.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data, Mode::Stored); // crosses the 65535 block boundary
        roundtrip(&data, Mode::Fixed);
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        roundtrip(&data, Mode::Fixed);
    }

    #[test]
    fn image_like_data_compresses() {
        // Smooth gradient rows, like a rendered pseudocolor image.
        let mut data = Vec::new();
        for y in 0..200u32 {
            for x in 0..300u32 {
                data.push((x / 4) as u8);
                data.push((y / 2) as u8);
                data.push(128);
            }
        }
        let comp = deflate(&data, Mode::Fixed);
        assert!(
            comp.len() < data.len() / 3,
            "{} vs {}",
            comp.len(),
            data.len()
        );
        roundtrip(&data, Mode::Fixed);
    }

    #[test]
    fn zlib_wrapper_roundtrip_and_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let z = zlib_compress(data, Mode::Fixed);
        assert_eq!(zlib_decompress(&z).unwrap(), data);
        // Corrupt the checksum → rejected.
        let mut bad = z.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert_eq!(zlib_decompress(&bad), Err(InflateError::BadZlib));
    }

    #[test]
    fn zlib_header_is_valid() {
        let z = zlib_compress(b"x", Mode::Stored);
        assert_eq!(z[0] & 0x0F, 8, "deflate method");
        assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0, "FCHECK");
    }

    #[test]
    fn adler32_known_values() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
    }

    #[test]
    fn length_and_distance_symbols_cover_bounds() {
        assert_eq!(length_symbol(3), (257, 0, 0));
        assert_eq!(length_symbol(258), (285, 0, 0));
        assert_eq!(length_symbol(10), (264, 0, 0));
        assert_eq!(dist_symbol(1), (0, 0, 0));
        assert_eq!(dist_symbol(32768), (29, 13, 32768 - 24577));
    }

    #[test]
    fn max_length_match_roundtrips() {
        let data = vec![7u8; 600]; // forces 258-length matches
        roundtrip(&data, Mode::Fixed);
    }

    #[test]
    fn truncated_stream_errors() {
        let comp = deflate(b"some data to compress", Mode::Fixed);
        let cut = &comp[..comp.len() / 2];
        assert!(inflate(cut).is_err());
    }
}
