//! # render — the software visualization stack
//!
//! The paper's in situ visualization workloads (Catalyst-slice,
//! Libsim-slice, AVF-LESLIE's isosurfaces) run ParaView/VisIt rendering
//! through OSMesa — i.e. *software* rendering. This crate provides the
//! equivalent pieces from scratch:
//!
//! * [`color`] — colormaps (cool–warm diverging, viridis-like, grayscale)
//!   for pseudocoloring;
//! * [`framebuffer`] — RGBA color + depth buffers with over-blending;
//! * [`camera`] — orthographic and simple perspective projection;
//! * [`raster`] — z-buffered triangle rasterization;
//! * [`slice`] — axis-aligned slice extraction from structured grids;
//! * [`isosurface`] — marching-tetrahedra isosurfacing of structured
//!   fields;
//! * [`composite`] — parallel image compositing over `minimpi`, with the
//!   two algorithm families the infrastructures use (**binary swap** and
//!   **direct-send tree**);
//! * [`png`] + [`deflate`] — a real PNG encoder over a from-scratch
//!   DEFLATE (stored and fixed-Huffman + LZ77) with CRC-32/Adler-32,
//!   plus a matching inflater for round-trip verification. The serial
//!   zlib cost on rank 0 is the effect behind the paper's Table 2
//!   finding, so it has to be real, measurable code.

pub mod camera;
pub mod color;
pub mod composite;
pub mod deflate;
pub mod framebuffer;
pub mod isosurface;
pub mod pipeline;
pub mod png;
pub mod raster;
pub mod slice;

pub use camera::Camera;
pub use color::{Color, Colormap};
pub use framebuffer::Framebuffer;
