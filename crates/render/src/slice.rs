//! Axis-aligned slice extraction from block-decomposed structured grids.
//!
//! Mirrors the paper's slice workloads: "only those ranks whose domains
//! intersect the slice plane will extract and render the slice geometry"
//! (§4.1.3) — extraction returns `None` on non-intersecting ranks, and
//! rendering pseudocolors the local piece into a full-size framebuffer
//! that the parallel compositor then merges.

use datamodel::Extent;

use crate::color::Colormap;
use crate::framebuffer::Framebuffer;
use crate::raster::fill_rect;

/// One rank's piece of a global slice plane, in index space.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalSlice {
    /// The sliced axis (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Global point index along the sliced axis.
    pub global_index: i64,
    /// Local inclusive index range along the plane's u axis.
    pub u_range: [i64; 2],
    /// Local inclusive index range along the plane's v axis.
    pub v_range: [i64; 2],
    /// Global inclusive u range of the whole plane.
    pub global_u: [i64; 2],
    /// Global inclusive v range of the whole plane.
    pub global_v: [i64; 2],
    /// Point values, u fastest, row-major in (v, u).
    pub values: Vec<f64>,
}

/// The two in-plane axes for a slice along `axis`.
pub fn plane_axes(axis: usize) -> (usize, usize) {
    match axis {
        0 => (1, 2),
        1 => (0, 2),
        2 => (0, 1),
        _ => panic!("axis must be 0, 1, or 2"),
    }
}

/// Extract this rank's piece of the plane `axis = global_index` from
/// point data stored over `local` (row-major, k slowest). Returns `None`
/// when the rank's block does not intersect the plane.
pub fn extract_plane(
    local: &Extent,
    global: &Extent,
    values: &[f64],
    axis: usize,
    global_index: i64,
) -> Option<LocalSlice> {
    assert_eq!(
        values.len(),
        local.num_points(),
        "point data sized to the local extent"
    );
    assert!(
        global_index >= global.lo[axis] && global_index <= global.hi[axis],
        "slice index {global_index} outside the global extent on axis {axis}"
    );
    if global_index < local.lo[axis] || global_index > local.hi[axis] {
        return None;
    }
    let (ua, va) = plane_axes(axis);
    let mut out = Vec::with_capacity(
        ((local.hi[ua] - local.lo[ua] + 1) * (local.hi[va] - local.lo[va] + 1)) as usize,
    );
    for v in local.lo[va]..=local.hi[va] {
        for u in local.lo[ua]..=local.hi[ua] {
            let mut p = [0i64; 3];
            p[axis] = global_index;
            p[ua] = u;
            p[va] = v;
            out.push(values[local.linear_index(p)]);
        }
    }
    Some(LocalSlice {
        axis,
        global_index,
        u_range: [local.lo[ua], local.hi[ua]],
        v_range: [local.lo[va], local.hi[va]],
        global_u: [global.lo[ua], global.hi[ua]],
        global_v: [global.lo[va], global.hi[va]],
        values: out,
    })
}

impl LocalSlice {
    /// Local points along u.
    pub fn nu(&self) -> usize {
        (self.u_range[1] - self.u_range[0] + 1) as usize
    }

    /// Local points along v.
    pub fn nv(&self) -> usize {
        (self.v_range[1] - self.v_range[0] + 1) as usize
    }

    /// Value at local plane coordinates.
    pub fn value(&self, u: usize, v: usize) -> f64 {
        self.values[v * self.nu() + u]
    }

    /// Local min/max (NaN-free slices assumed).
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// Pseudocolor this rank's slice piece into `fb`, mapping the **global**
/// plane onto the full image so pieces from different ranks tile
/// seamlessly before compositing. `range` is the global data range.
pub fn render_plane(fb: &mut Framebuffer, slice: &LocalSlice, cmap: &Colormap, range: (f64, f64)) {
    let gu0 = slice.global_u[0] as f64;
    let gv0 = slice.global_v[0] as f64;
    // The plane spans one fewer cell than points per axis.
    let gu_cells = (slice.global_u[1] - slice.global_u[0]) as f64;
    let gv_cells = (slice.global_v[1] - slice.global_v[0]) as f64;
    if gu_cells <= 0.0 || gv_cells <= 0.0 {
        return;
    }
    let sx = fb.width() as f64 / gu_cells;
    let sy = fb.height() as f64 / gv_cells;

    // Paint one rect per local cell, colored by the cell's mean value.
    for v in 0..slice.nv().saturating_sub(1) {
        for u in 0..slice.nu().saturating_sub(1) {
            let mean = 0.25
                * (slice.value(u, v)
                    + slice.value(u + 1, v)
                    + slice.value(u, v + 1)
                    + slice.value(u + 1, v + 1));
            let color = cmap.map_range(mean, range.0, range.1);
            let x0 = (slice.u_range[0] as f64 + u as f64 - gu0) * sx;
            let x1 = (slice.u_range[0] as f64 + u as f64 + 1.0 - gu0) * sx;
            // Flip v so increasing v is up in the image.
            let y1 = fb.height() as f64 - (slice.v_range[0] as f64 + v as f64 - gv0) * sy;
            let y0 = fb.height() as f64 - (slice.v_range[0] as f64 + v as f64 + 1.0 - gv0) * sy;
            fill_rect(fb, x0, y0, x1, y1, 0.5, color);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::partition_extent;

    /// Point data where value = global x index (easy to verify).
    fn ramp(local: &Extent) -> Vec<f64> {
        local.iter_points().map(|p| p[0] as f64).collect()
    }

    #[test]
    fn extraction_only_on_intersecting_ranks() {
        let global = Extent::whole([9, 9, 9]);
        let left = partition_extent(&global, [2, 1, 1], 0); // x in 0..=4
        let right = partition_extent(&global, [2, 1, 1], 1); // x in 4..=8
        let vals_l = ramp(&left);
        let vals_r = ramp(&right);
        // Slice at x=2: only the left block intersects.
        assert!(extract_plane(&left, &global, &vals_l, 0, 2).is_some());
        assert!(extract_plane(&right, &global, &vals_r, 0, 2).is_none());
        // x=4 is the shared plane: both intersect.
        assert!(extract_plane(&left, &global, &vals_l, 0, 4).is_some());
        assert!(extract_plane(&right, &global, &vals_r, 0, 4).is_some());
    }

    #[test]
    fn extracted_values_match_field() {
        let global = Extent::whole([5, 4, 3]);
        let vals: Vec<f64> = global
            .iter_points()
            .map(|p| (p[0] + 10 * p[1] + 100 * p[2]) as f64)
            .collect();
        let s = extract_plane(&global, &global, &vals, 2, 1).unwrap();
        assert_eq!(s.nu(), 5);
        assert_eq!(s.nv(), 4);
        // value(u, v) should be u + 10 v + 100·1.
        for v in 0..4 {
            for u in 0..5 {
                assert_eq!(s.value(u, v), (u + 10 * v + 100) as f64);
            }
        }
        let (lo, hi) = s.range();
        assert_eq!(lo, 100.0);
        assert_eq!(hi, 134.0);
    }

    #[test]
    fn two_blocks_tile_the_image_seamlessly() {
        let global = Extent::whole([9, 9, 2]);
        let cmap = Colormap::grayscale();
        let mut fb = Framebuffer::new(32, 32);
        for rank in 0..2 {
            let local = partition_extent(&global, [2, 1, 1], rank);
            let vals = ramp(&local);
            let s = extract_plane(&local, &global, &vals, 2, 0).unwrap();
            render_plane(&mut fb, &s, &cmap, (0.0, 8.0));
        }
        // Every pixel painted exactly once by the union of the blocks.
        assert_eq!(fb.covered_pixels(), 32 * 32);
        // Grayscale ramp increases along x.
        assert!(fb.pixel(2, 16).r < fb.pixel(29, 16).r);
    }

    #[test]
    fn separate_rank_images_composite_to_full_cover() {
        let global = Extent::whole([9, 9, 2]);
        let cmap = Colormap::grayscale();
        let mut images: Vec<Framebuffer> = Vec::new();
        for rank in 0..2 {
            let local = partition_extent(&global, [2, 1, 1], rank);
            let vals = ramp(&local);
            let s = extract_plane(&local, &global, &vals, 2, 0).unwrap();
            let mut fb = Framebuffer::new(16, 16);
            render_plane(&mut fb, &s, &cmap, (0.0, 8.0));
            assert!(fb.covered_pixels() < 16 * 16, "each rank covers a part");
            images.push(fb);
        }
        let mut merged = images[0].clone();
        merged.composite_from(&images[1]);
        assert_eq!(merged.covered_pixels(), 16 * 16);
    }

    #[test]
    fn plane_axes_are_the_complement() {
        assert_eq!(plane_axes(0), (1, 2));
        assert_eq!(plane_axes(1), (0, 2));
        assert_eq!(plane_axes(2), (0, 1));
    }

    #[test]
    #[should_panic(expected = "outside the global extent")]
    fn out_of_domain_slice_panics() {
        let g = Extent::whole([4, 4, 4]);
        let vals = ramp(&g);
        let _ = extract_plane(&g, &g, &vals, 0, 99);
    }
}
