//! Parallel image compositing over `minimpi` — the "costly compositing
//! operation that involves communication of image-sized buffers among a
//! hierarchical set of ranks" (§4.1.3). Two algorithm families, matching
//! the paper's observation that Catalyst and Libsim use *different*
//! compositors with different scaling:
//!
//! * [`binary_swap`] — log₂p rounds; partners exchange half their
//!   current span and composite the half they keep; a final gather
//!   assembles the bands on the root (Catalyst-like);
//! * [`direct_send_tree`] — a fan-in tree of configurable arity; each
//!   parent composites its children's full images (Libsim-like).
//!
//! Both return the final image on rank 0 and `None` elsewhere.

use minimpi::Comm;

use crate::framebuffer::Framebuffer;

/// Tag space for compositing traffic.
const TAG_FOLD: u32 = 0x434F_0001;
const TAG_SWAP: u32 = 0x434F_0002;
const TAG_GATHER: u32 = 0x434F_0003;
const TAG_TREE: u32 = 0x434F_0004;

/// Row band `[lo, hi)` owned by `rank` among `pot` binary-swap
/// participants for an image of `height` rows.
fn band(rank: usize, pot: usize, height: usize) -> (usize, usize) {
    (rank * height / pot, (rank + 1) * height / pot)
}

/// Binary-swap compositing. Works for any rank count: ranks beyond the
/// largest power of two fold their image into a partner first.
///
/// # Panics
/// Panics if the image is shorter than the participating rank count
/// (bands would be empty) or framebuffer sizes differ across ranks.
pub fn binary_swap(comm: &Comm, mut fb: Framebuffer) -> Option<Framebuffer> {
    let p = comm.size();
    let me = comm.rank();
    if p == 1 {
        return Some(fb);
    }
    let pot = 1usize << (usize::BITS - 1 - p.leading_zeros()); // 2^⌊log2 p⌋
    assert!(
        fb.height() >= pot,
        "image height {} shorter than {} binary-swap bands",
        fb.height(),
        pot
    );

    // Fold phase: ranks >= pot ship their full image to rank - pot.
    if me >= pot {
        comm.send(me - pot, TAG_FOLD, fb);
        return None;
    }
    if me + pot < p {
        let other: Framebuffer = comm.recv(me + pot, TAG_FOLD);
        fb.composite_from(&other);
    }

    // Swap phase over the power-of-two group.
    let height = fb.height();
    let (mut lo, mut hi) = (0usize, height);
    let mut bit = pot >> 1;
    while bit > 0 {
        let partner = me ^ bit;
        let mid = lo + (hi - lo) / 2;
        let keep_low = me & bit == 0;
        let (keep, give) = if keep_low {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let outgoing = fb.extract_rows(give.0, give.1);
        comm.send(partner, TAG_SWAP, (give.0, outgoing));
        let (their_lo, their_band): (usize, Framebuffer) = comm.recv(partner, TAG_SWAP);
        debug_assert_eq!(their_lo, keep.0);
        let mut mine = fb.extract_rows(keep.0, keep.1);
        mine.composite_from(&their_band);
        fb.paste_rows(keep.0, &mine);
        lo = keep.0;
        hi = keep.1;
        bit >>= 1;
    }
    debug_assert_eq!((lo, hi), band(me, pot, height));

    // Gather bands to root.
    if me == 0 {
        let mut result = fb.extract_rows(lo, hi);
        let mut full = Framebuffer::new(fb.width(), height);
        full.paste_rows(0, &result);
        for _ in 1..pot {
            let (src_lo, their): (usize, Framebuffer) = comm.recv_any(TAG_GATHER).1;
            full.paste_rows(src_lo, &their);
        }
        result = full;
        Some(result)
    } else {
        comm.send(0, TAG_GATHER, (lo, fb.extract_rows(lo, hi)));
        None
    }
}

/// Direct-send fan-in tree compositing with arity `fanout`: children of
/// node `r` are `r*fanout + 1 ..= r*fanout + fanout`.
///
/// # Panics
/// Panics when `fanout < 2` or framebuffer sizes differ across ranks.
pub fn direct_send_tree(comm: &Comm, mut fb: Framebuffer, fanout: usize) -> Option<Framebuffer> {
    assert!(fanout >= 2, "tree fanout must be >= 2");
    let p = comm.size();
    let me = comm.rank();
    // Receive from children (deepest first is unnecessary; compositing is
    // order-independent for opaque fragments).
    for c in 1..=fanout {
        let child = me * fanout + c;
        if child < p {
            let theirs: Framebuffer = comm.recv(child, TAG_TREE);
            fb.composite_from(&theirs);
        }
    }
    if me == 0 {
        Some(fb)
    } else {
        let parent = (me - 1) / fanout;
        comm.send(parent, TAG_TREE, fb);
        None
    }
}

/// Compositor selection (infrastructure crates pick their family).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Compositor {
    /// Binary swap (Catalyst-like).
    BinarySwap,
    /// Direct-send tree with the given fan-in (Libsim-like).
    DirectSendTree(usize),
}

/// Run the selected compositor.
pub fn composite(comm: &Comm, fb: Framebuffer, which: Compositor) -> Option<Framebuffer> {
    match which {
        Compositor::BinarySwap => binary_swap(comm, fb),
        Compositor::DirectSendTree(fanout) => direct_send_tree(comm, fb, fanout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use minimpi::World;

    /// Each rank paints one column at depth = rank (so rank 0's pixels
    /// are in front where columns collide).
    fn rank_columns(rank: usize, p: usize, w: usize, h: usize) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h);
        for y in 0..h {
            for x in (rank..w).step_by(p) {
                fb.set_pixel(x, y, rank as f32, Color::rgb(rank as u8 + 1, 0, 0));
            }
        }
        fb
    }

    fn expect_full(final_fb: &Framebuffer, p: usize) {
        assert_eq!(
            final_fb.covered_pixels(),
            final_fb.width() * final_fb.height()
        );
        // Column x belongs to rank x mod p.
        for x in 0..final_fb.width() {
            let want = (x % p) as u8 + 1;
            assert_eq!(final_fb.pixel(x, 0).r, want, "column {x}");
        }
    }

    #[test]
    fn binary_swap_power_of_two() {
        for p in [2usize, 4, 8] {
            let out = World::run(p, move |comm| {
                binary_swap(comm, rank_columns(comm.rank(), p, 16, 8))
            });
            let root = out.into_iter().next().unwrap().expect("root image");
            expect_full(&root, p);
        }
    }

    #[test]
    fn binary_swap_non_power_of_two() {
        for p in [3usize, 5, 6, 7] {
            let out = World::run(p, move |comm| {
                binary_swap(comm, rank_columns(comm.rank(), p, 21, 8))
            });
            let mut images = out.into_iter();
            let root = images.next().unwrap().expect("root image");
            expect_full(&root, p);
            assert!(images.all(|i| i.is_none()), "only root has the image");
        }
    }

    #[test]
    fn binary_swap_single_rank_identity() {
        let out = World::run(1, |comm| binary_swap(comm, rank_columns(0, 1, 4, 4)));
        assert_eq!(out[0].as_ref().unwrap().covered_pixels(), 16);
    }

    #[test]
    fn direct_send_tree_various_fanouts() {
        for (p, fanout) in [(5usize, 2usize), (9, 3), (16, 4), (7, 8)] {
            let out = World::run(p, move |comm| {
                direct_send_tree(comm, rank_columns(comm.rank(), p, 16, 4), fanout)
            });
            let root = out.into_iter().next().unwrap().expect("root image");
            expect_full(&root, p);
        }
    }

    #[test]
    fn depth_wins_across_algorithms() {
        // All ranks paint the SAME pixel; the closest (rank 0) must win
        // under both compositors.
        for which in [Compositor::BinarySwap, Compositor::DirectSendTree(2)] {
            let out = World::run(4, move |comm| {
                let mut fb = Framebuffer::new(8, 8);
                fb.set_pixel(
                    3,
                    3,
                    comm.rank() as f32,
                    Color::rgb(comm.rank() as u8 + 1, 0, 0),
                );
                composite(comm, fb, which)
            });
            let root = out.into_iter().next().unwrap().unwrap();
            assert_eq!(root.pixel(3, 3).r, 1, "{which:?}");
            assert_eq!(root.covered_pixels(), 1);
        }
    }

    #[test]
    fn algorithms_agree_exactly() {
        let bs = World::run(6, |comm| {
            binary_swap(comm, rank_columns(comm.rank(), 6, 12, 8))
        });
        let ds = World::run(6, |comm| {
            direct_send_tree(comm, rank_columns(comm.rank(), 6, 12, 8), 3)
        });
        assert_eq!(bs[0], ds[0]);
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn image_too_short_for_bands_panics() {
        // 8 pot participants need >= 8 rows; give 2.
        World::run(8, |comm| {
            binary_swap(comm, rank_columns(comm.rank(), 8, 4, 2))
        });
    }
}
