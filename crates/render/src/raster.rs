//! Z-buffered triangle rasterization with per-vertex color
//! interpolation (Gouraud) — the software renderer under the slice and
//! isosurface pipelines.

use crate::color::Color;
use crate::framebuffer::Framebuffer;

/// A screen-space vertex: continuous pixel coordinates, depth, color.
#[derive(Clone, Copy, Debug)]
pub struct Vertex {
    /// Pixel x.
    pub x: f64,
    /// Pixel y.
    pub y: f64,
    /// Depth (smaller = closer).
    pub z: f32,
    /// Vertex color.
    pub color: Color,
}

/// Rasterize a filled triangle with barycentric interpolation of depth
/// and color.
pub fn fill_triangle(fb: &mut Framebuffer, v0: Vertex, v1: Vertex, v2: Vertex) {
    let min_x = v0.x.min(v1.x).min(v2.x).floor().max(0.0) as i64;
    let max_x = v0.x.max(v1.x).max(v2.x).ceil().min(fb.width() as f64) as i64;
    let min_y = v0.y.min(v1.y).min(v2.y).floor().max(0.0) as i64;
    let max_y = v0.y.max(v1.y).max(v2.y).ceil().min(fb.height() as f64) as i64;
    if min_x >= max_x || min_y >= max_y {
        return;
    }

    let area = edge(v0, v1, v2.x, v2.y);
    if area.abs() < 1e-12 {
        return; // degenerate
    }
    let inv_area = 1.0 / area;

    for py in min_y..max_y {
        for px in min_x..max_x {
            // Sample at the pixel center.
            let sx = px as f64 + 0.5;
            let sy = py as f64 + 0.5;
            let w0 = edge(v1, v2, sx, sy) * inv_area;
            let w1 = edge(v2, v0, sx, sy) * inv_area;
            let w2 = edge(v0, v1, sx, sy) * inv_area;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let z = (w0 * v0.z as f64 + w1 * v1.z as f64 + w2 * v2.z as f64) as f32;
            let blend =
                |a: u8, b: u8, c: u8| (w0 * a as f64 + w1 * b as f64 + w2 * c as f64).round() as u8;
            let color = Color {
                r: blend(v0.color.r, v1.color.r, v2.color.r),
                g: blend(v0.color.g, v1.color.g, v2.color.g),
                b: blend(v0.color.b, v1.color.b, v2.color.b),
                a: blend(v0.color.a, v1.color.a, v2.color.a),
            };
            fb.set_pixel(px as usize, py as usize, z, color);
        }
    }
}

/// Signed edge function (positive when `(x, y)` is left of `a→b`).
fn edge(a: Vertex, b: Vertex, x: f64, y: f64) -> f64 {
    (b.x - a.x) * (y - a.y) - (b.y - a.y) * (x - a.x)
}

/// Rasterize a filled axis-aligned rectangle of constant depth/color
/// (fast path for structured slice cells).
pub fn fill_rect(fb: &mut Framebuffer, x0: f64, y0: f64, x1: f64, y1: f64, z: f32, color: Color) {
    let (x0, x1) = (x0.min(x1), x0.max(x1));
    let (y0, y1) = (y0.min(y1), y0.max(y1));
    let px0 = x0.floor().max(0.0) as usize;
    let px1 = (x1.ceil().min(fb.width() as f64) as usize).max(px0);
    let py0 = y0.floor().max(0.0) as usize;
    let py1 = (y1.ceil().min(fb.height() as f64) as usize).max(py0);
    for py in py0..py1 {
        for px in px0..px1 {
            // Inclusion test at pixel center keeps adjacent rects seamless.
            let cx = px as f64 + 0.5;
            let cy = py as f64 + 0.5;
            if cx >= x0 && cx < x1 && cy >= y0 && cy < y1 {
                fb.set_pixel(px, py, z, color);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, z: f32, c: Color) -> Vertex {
        Vertex { x, y, z, color: c }
    }

    #[test]
    fn triangle_covers_interior() {
        let mut fb = Framebuffer::new(16, 16);
        fill_triangle(
            &mut fb,
            v(0.0, 0.0, 0.5, Color::WHITE),
            v(15.0, 0.0, 0.5, Color::WHITE),
            v(0.0, 15.0, 0.5, Color::WHITE),
        );
        // Roughly half the square, definitely the inner corner.
        assert!(fb.covered_pixels() > 60, "covered {}", fb.covered_pixels());
        assert_eq!(fb.pixel(2, 2), Color::WHITE);
        assert_eq!(fb.pixel(15, 15), Color::TRANSPARENT);
    }

    #[test]
    fn winding_order_does_not_matter() {
        let a = v(1.0, 1.0, 0.1, Color::WHITE);
        let b = v(12.0, 2.0, 0.1, Color::WHITE);
        let c = v(4.0, 13.0, 0.1, Color::WHITE);
        let mut f1 = Framebuffer::new(16, 16);
        fill_triangle(&mut f1, a, b, c);
        let mut f2 = Framebuffer::new(16, 16);
        fill_triangle(&mut f2, c, b, a);
        assert_eq!(f1.covered_pixels(), f2.covered_pixels());
    }

    #[test]
    fn depth_interpolates_between_vertices() {
        let mut fb = Framebuffer::new(10, 3);
        fill_triangle(
            &mut fb,
            v(0.0, 0.0, 0.0, Color::WHITE),
            v(10.0, 0.0, 1.0, Color::WHITE),
            v(0.0, 3.0, 0.0, Color::WHITE),
        );
        let d_left = fb.depth[0];
        let d_right = fb.depth[8];
        assert!(d_left < d_right, "{d_left} < {d_right}");
    }

    #[test]
    fn gouraud_color_gradient() {
        let mut fb = Framebuffer::new(11, 4);
        fill_triangle(
            &mut fb,
            v(0.0, 0.0, 0.5, Color::rgb(0, 0, 0)),
            v(11.0, 0.0, 0.5, Color::rgb(250, 0, 0)),
            v(0.0, 4.0, 0.5, Color::rgb(0, 0, 0)),
        );
        assert!(fb.pixel(1, 0).r < fb.pixel(9, 0).r);
    }

    #[test]
    fn degenerate_triangle_is_noop() {
        let mut fb = Framebuffer::new(8, 8);
        let p = v(3.0, 3.0, 0.5, Color::WHITE);
        fill_triangle(&mut fb, p, p, p);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn rect_fills_exact_cells_without_seams() {
        let mut fb = Framebuffer::new(8, 8);
        fill_rect(&mut fb, 0.0, 0.0, 4.0, 8.0, 0.5, Color::rgb(1, 1, 1));
        fill_rect(&mut fb, 4.0, 0.0, 8.0, 8.0, 0.5, Color::rgb(2, 2, 2));
        assert_eq!(fb.covered_pixels(), 64, "no gaps, no overdraw misses");
        assert_eq!(fb.pixel(3, 0), Color::rgb(1, 1, 1));
        assert_eq!(fb.pixel(4, 0), Color::rgb(2, 2, 2));
    }

    #[test]
    fn rect_clips_to_framebuffer() {
        let mut fb = Framebuffer::new(4, 4);
        fill_rect(&mut fb, -5.0, -5.0, 100.0, 100.0, 0.5, Color::WHITE);
        assert_eq!(fb.covered_pixels(), 16);
    }
}
