//! Isosurface extraction from structured point fields via marching
//! tetrahedra (each hexahedral cell split into 6 tets) — the geometry
//! pass of the AVF-LESLIE visualization (3 vorticity isosurfaces).

use datamodel::Extent;

/// One triangle of the surface, world-space vertices.
pub type Triangle = [[f64; 3]; 3];

/// The Kuhn 6-tetrahedron decomposition of a cube, as corner indices
/// (corner bit pattern: i → bit 0, j → bit 1, k → bit 2). Every tet
/// shares the 0→7 diagonal; the union exactly tiles the cube, so
/// adjacent cells produce watertight surfaces.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 1, 5, 7],
    [0, 2, 3, 7],
    [0, 2, 6, 7],
    [0, 4, 5, 7],
    [0, 4, 6, 7],
];

/// Extract the isosurface of `values` (point data over `local`, row-major
/// k-slowest) at `isovalue`. Vertex positions are
/// `origin + index * spacing`. Returns world-space triangles.
pub fn marching_tetrahedra(
    local: &Extent,
    values: &[f64],
    isovalue: f64,
    origin: [f64; 3],
    spacing: [f64; 3],
) -> Vec<Triangle> {
    assert_eq!(values.len(), local.num_points(), "point data size mismatch");
    let d = local.point_dims();
    let mut triangles = Vec::new();
    if d[0] < 2 || d[1] < 2 || d[2] < 2 {
        return triangles;
    }
    let val = |i: usize, j: usize, k: usize| values[(k * d[1] + j) * d[0] + i];
    for k in 0..d[2] - 1 {
        for j in 0..d[1] - 1 {
            for i in 0..d[0] - 1 {
                // Cube corner scalar values and positions.
                let mut corner_v = [0.0f64; 8];
                let mut corner_p = [[0.0f64; 3]; 8];
                for c in 0..8 {
                    let ci = i + (c & 1);
                    let cj = j + ((c >> 1) & 1);
                    let ck = k + ((c >> 2) & 1);
                    corner_v[c] = val(ci, cj, ck);
                    corner_p[c] = [
                        origin[0] + (local.lo[0] + ci as i64) as f64 * spacing[0],
                        origin[1] + (local.lo[1] + cj as i64) as f64 * spacing[1],
                        origin[2] + (local.lo[2] + ck as i64) as f64 * spacing[2],
                    ];
                }
                for tet in &TETS {
                    march_tet(
                        [
                            corner_p[tet[0]],
                            corner_p[tet[1]],
                            corner_p[tet[2]],
                            corner_p[tet[3]],
                        ],
                        [
                            corner_v[tet[0]],
                            corner_v[tet[1]],
                            corner_v[tet[2]],
                            corner_v[tet[3]],
                        ],
                        isovalue,
                        &mut triangles,
                    );
                }
            }
        }
    }
    triangles
}

/// Interpolate the isovalue crossing on an edge.
fn interp(p0: [f64; 3], p1: [f64; 3], v0: f64, v1: f64, iso: f64) -> [f64; 3] {
    let t = if (v1 - v0).abs() < 1e-300 {
        0.5
    } else {
        ((iso - v0) / (v1 - v0)).clamp(0.0, 1.0)
    };
    [
        p0[0] + t * (p1[0] - p0[0]),
        p0[1] + t * (p1[1] - p0[1]),
        p0[2] + t * (p1[2] - p0[2]),
    ]
}

/// March one tetrahedron: 16 sign cases collapse to 0, 1, or 2
/// triangles.
fn march_tet(p: [[f64; 3]; 4], v: [f64; 4], iso: f64, out: &mut Vec<Triangle>) {
    let mut inside = [false; 4];
    let mut case = 0usize;
    for c in 0..4 {
        inside[c] = v[c] >= iso;
        if inside[c] {
            case |= 1 << c;
        }
    }
    if case == 0 || case == 15 {
        return;
    }
    // Indices of inside / outside vertices.
    let ins: Vec<usize> = (0..4).filter(|&c| inside[c]).collect();
    let outs: Vec<usize> = (0..4).filter(|&c| !inside[c]).collect();
    match ins.len() {
        1 => {
            // One vertex inside: single triangle on the three edges.
            let a = ins[0];
            out.push([
                interp(p[a], p[outs[0]], v[a], v[outs[0]], iso),
                interp(p[a], p[outs[1]], v[a], v[outs[1]], iso),
                interp(p[a], p[outs[2]], v[a], v[outs[2]], iso),
            ]);
        }
        3 => {
            // One vertex outside: single triangle (mirrored case).
            let a = outs[0];
            out.push([
                interp(p[a], p[ins[0]], v[a], v[ins[0]], iso),
                interp(p[a], p[ins[1]], v[a], v[ins[1]], iso),
                interp(p[a], p[ins[2]], v[a], v[ins[2]], iso),
            ]);
        }
        2 => {
            // Two in, two out: a quad split into two triangles.
            let (a, b) = (ins[0], ins[1]);
            let (c, d) = (outs[0], outs[1]);
            let ac = interp(p[a], p[c], v[a], v[c], iso);
            let ad = interp(p[a], p[d], v[a], v[d], iso);
            let bc = interp(p[b], p[c], v[b], v[c], iso);
            let bd = interp(p[b], p[d], v[b], v[d], iso);
            out.push([ac, ad, bd]);
            out.push([ac, bd, bc]);
        }
        _ => unreachable!(),
    }
}

/// Surface area of a triangle soup (used to sanity-check extractions).
pub fn surface_area(triangles: &[Triangle]) -> f64 {
    triangles
        .iter()
        .map(|t| {
            let u = [t[1][0] - t[0][0], t[1][1] - t[0][1], t[1][2] - t[0][2]];
            let v = [t[2][0] - t[0][0], t[2][1] - t[0][1], t[2][2] - t[0][2]];
            let cx = u[1] * v[2] - u[2] * v[1];
            let cy = u[2] * v[0] - u[0] * v[2];
            let cz = u[0] * v[1] - u[1] * v[0];
            0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance field from the domain center over an n³ point grid.
    fn sphere_field(n: usize) -> (Extent, Vec<f64>) {
        let e = Extent::whole([n, n, n]);
        let c = (n - 1) as f64 / 2.0;
        let vals = e
            .iter_points()
            .map(|p| {
                let dx = p[0] as f64 - c;
                let dy = p[1] as f64 - c;
                let dz = p[2] as f64 - c;
                (dx * dx + dy * dy + dz * dz).sqrt()
            })
            .collect();
        (e, vals)
    }

    #[test]
    fn empty_when_isovalue_outside_range() {
        let (e, vals) = sphere_field(8);
        assert!(marching_tetrahedra(&e, &vals, 1e9, [0.0; 3], [1.0; 3]).is_empty());
        assert!(marching_tetrahedra(&e, &vals, -1e9, [0.0; 3], [1.0; 3]).is_empty());
    }

    #[test]
    fn sphere_surface_area_approximates_analytic() {
        let (e, vals) = sphere_field(33);
        let r = 10.0;
        let tris = marching_tetrahedra(&e, &vals, r, [0.0; 3], [1.0; 3]);
        assert!(!tris.is_empty());
        let area = surface_area(&tris);
        let analytic = 4.0 * std::f64::consts::PI * r * r;
        let rel = (area - analytic).abs() / analytic;
        assert!(rel < 0.10, "area {area} vs analytic {analytic} (rel {rel})");
    }

    #[test]
    fn vertices_lie_on_the_isosurface() {
        let (e, vals) = sphere_field(17);
        let r = 5.0;
        let tris = marching_tetrahedra(&e, &vals, r, [0.0; 3], [1.0; 3]);
        let c = 8.0;
        for t in &tris {
            for v in t {
                let d = ((v[0] - c).powi(2) + (v[1] - c).powi(2) + (v[2] - c).powi(2)).sqrt();
                // Linear interpolation error of the distance field.
                assert!((d - r).abs() < 0.25, "vertex at distance {d}");
            }
        }
    }

    #[test]
    fn planar_field_yields_flat_surface() {
        // Field = x: isosurface x = 1.5 is a plane of area (n-1)².
        let e = Extent::whole([4, 4, 4]);
        let vals: Vec<f64> = e.iter_points().map(|p| p[0] as f64).collect();
        let tris = marching_tetrahedra(&e, &vals, 1.5, [0.0; 3], [1.0; 3]);
        let area = surface_area(&tris);
        assert!((area - 9.0).abs() < 1e-9, "plane area {area}");
        for t in &tris {
            for v in t {
                assert!((v[0] - 1.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spacing_and_origin_scale_geometry() {
        let e = Extent::whole([4, 4, 4]);
        let vals: Vec<f64> = e.iter_points().map(|p| p[0] as f64).collect();
        let tris = marching_tetrahedra(&e, &vals, 1.5, [10.0, 0.0, 0.0], [2.0, 1.0, 1.0]);
        for t in &tris {
            for v in t {
                assert!((v[0] - 13.0).abs() < 1e-12, "x = 10 + 1.5·2");
            }
        }
    }

    #[test]
    fn degenerate_grid_no_cells() {
        let e = Extent::new([0, 0, 0], [3, 3, 0]); // a plane: no 3D cells
        let vals = vec![0.0; e.num_points()];
        assert!(marching_tetrahedra(&e, &vals, 0.5, [0.0; 3], [1.0; 3]).is_empty());
    }
}
