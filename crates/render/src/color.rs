//! Colors and colormaps for pseudocoloring ("heatmap technique", §4.1.3).

/// An RGBA8 color.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
    /// Alpha (255 = opaque).
    pub a: u8,
}

impl Color {
    /// Opaque color from components.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b, a: 255 }
    }

    /// Fully transparent black (the compositing identity).
    pub const TRANSPARENT: Color = Color {
        r: 0,
        g: 0,
        b: 0,
        a: 0,
    };

    /// Opaque white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);

    /// Opaque black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);

    /// Linear interpolation between two colors.
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
        Color {
            r: mix(a.r, b.r),
            g: mix(a.g, b.g),
            b: mix(a.b, b.b),
            a: mix(a.a, b.a),
        }
    }
}

/// A colormap: maps a normalized scalar in `[0, 1]` to a color by
/// piecewise-linear interpolation through control points.
#[derive(Clone, Debug)]
pub struct Colormap {
    stops: Vec<(f64, Color)>,
}

impl Colormap {
    /// Build from control points; positions must start at 0, end at 1,
    /// and be non-decreasing.
    pub fn new(stops: Vec<(f64, Color)>) -> Self {
        assert!(stops.len() >= 2, "need at least two stops");
        assert_eq!(stops[0].0, 0.0, "first stop must be at 0");
        assert_eq!(stops[stops.len() - 1].0, 1.0, "last stop must be at 1");
        assert!(
            stops.windows(2).all(|w| w[1].0 >= w[0].0),
            "stops must be non-decreasing"
        );
        Colormap { stops }
    }

    /// ParaView's default cool-to-warm diverging map (blue→white→red).
    pub fn cool_warm() -> Self {
        Colormap::new(vec![
            (0.0, Color::rgb(59, 76, 192)),
            (0.5, Color::rgb(221, 221, 221)),
            (1.0, Color::rgb(180, 4, 38)),
        ])
    }

    /// A viridis-like perceptually ordered map.
    pub fn viridis() -> Self {
        Colormap::new(vec![
            (0.0, Color::rgb(68, 1, 84)),
            (0.25, Color::rgb(59, 82, 139)),
            (0.5, Color::rgb(33, 145, 140)),
            (0.75, Color::rgb(94, 201, 98)),
            (1.0, Color::rgb(253, 231, 37)),
        ])
    }

    /// Grayscale ramp.
    pub fn grayscale() -> Self {
        Colormap::new(vec![(0.0, Color::BLACK), (1.0, Color::WHITE)])
    }

    /// Map a normalized value (clamped to `[0,1]`; NaN maps to 0).
    pub fn map(&self, t: f64) -> Color {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        for w in self.stops.windows(2) {
            let (t0, c0) = w[0];
            let (t1, c1) = w[1];
            if t <= t1 {
                if t1 == t0 {
                    return c1;
                }
                return Color::lerp(c0, c1, (t - t0) / (t1 - t0));
            }
        }
        self.stops[self.stops.len() - 1].1
    }

    /// Map a raw value given a data range (degenerate ranges map to the
    /// midpoint).
    pub fn map_range(&self, v: f64, min: f64, max: f64) -> Color {
        if max > min {
            self.map((v - min) / (max - min))
        } else {
            self.map(0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(200, 100, 50);
        assert_eq!(Color::lerp(a, b, 0.0), a);
        assert_eq!(Color::lerp(a, b, 1.0), b);
        assert_eq!(Color::lerp(a, b, 0.5), Color::rgb(100, 50, 25));
    }

    #[test]
    fn cool_warm_endpoints_and_middle() {
        let cm = Colormap::cool_warm();
        assert_eq!(cm.map(0.0), Color::rgb(59, 76, 192));
        assert_eq!(cm.map(1.0), Color::rgb(180, 4, 38));
        assert_eq!(cm.map(0.5), Color::rgb(221, 221, 221));
    }

    #[test]
    fn map_clamps_and_handles_nan() {
        let cm = Colormap::grayscale();
        assert_eq!(cm.map(-3.0), Color::BLACK);
        assert_eq!(cm.map(7.0), Color::WHITE);
        assert_eq!(cm.map(f64::NAN), Color::BLACK);
    }

    #[test]
    fn map_range_degenerate() {
        let cm = Colormap::grayscale();
        let mid = cm.map_range(5.0, 5.0, 5.0);
        assert_eq!(mid, cm.map(0.5));
    }

    #[test]
    fn viridis_is_monotone_in_green() {
        let cm = Colormap::viridis();
        let g: Vec<u8> = (0..=10).map(|i| cm.map(i as f64 / 10.0).g).collect();
        assert!(g.windows(2).all(|w| w[1] >= w[0]), "{g:?}");
    }

    #[test]
    #[should_panic(expected = "first stop")]
    fn bad_stops_panic() {
        let _ = Colormap::new(vec![(0.1, Color::BLACK), (1.0, Color::WHITE)]);
    }
}
