//! Minimal cameras: orthographic (slices) and look-at perspective
//! (isosurface scenes). Produces screen coordinates plus a depth value
//! for the z-buffer.

/// A camera projecting world-space points to pixel coordinates.
#[derive(Clone, Debug)]
pub enum Camera {
    /// Orthographic projection of an axis-aligned world rectangle onto
    /// the full image: used for slice views.
    Ortho {
        /// World-space rectangle `[xmin, xmax]`.
        x: [f64; 2],
        /// World-space rectangle `[ymin, ymax]`.
        y: [f64; 2],
    },
    /// Perspective look-at camera.
    LookAt {
        /// Eye position.
        eye: [f64; 3],
        /// Target position.
        target: [f64; 3],
        /// Up direction.
        up: [f64; 3],
        /// Vertical field of view, radians.
        fov_y: f64,
    },
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = dot(v, v).sqrt();
    assert!(n > 0.0, "cannot normalize zero vector");
    [v[0] / n, v[1] / n, v[2] / n]
}

impl Camera {
    /// An orthographic camera covering the rectangle `[x0,x1]×[y0,y1]`.
    pub fn ortho(x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        assert!(x1 > x0 && y1 > y0, "degenerate ortho window");
        Camera::Ortho {
            x: [x0, x1],
            y: [y0, y1],
        }
    }

    /// A perspective camera looking from `eye` to `target`.
    pub fn look_at(eye: [f64; 3], target: [f64; 3], up: [f64; 3], fov_y: f64) -> Self {
        assert!(fov_y > 0.0 && fov_y < std::f64::consts::PI, "bad fov");
        Camera::LookAt {
            eye,
            target,
            up,
            fov_y,
        }
    }

    /// Project a world point (2D slices pass z as the slice-normal
    /// coordinate, used only for depth). Returns `(px, py, depth)` in
    /// continuous pixel coordinates, or `None` behind the camera.
    pub fn project(&self, p: [f64; 3], width: usize, height: usize) -> Option<(f64, f64, f32)> {
        match self {
            Camera::Ortho { x, y } => {
                let u = (p[0] - x[0]) / (x[1] - x[0]);
                let v = (p[1] - y[0]) / (y[1] - y[0]);
                Some((
                    u * width as f64,
                    (1.0 - v) * height as f64, // image y grows downward
                    p[2] as f32,
                ))
            }
            Camera::LookAt {
                eye,
                target,
                up,
                fov_y,
            } => {
                let fwd = normalize(sub(*target, *eye));
                let right = normalize(cross(fwd, *up));
                let cam_up = cross(right, fwd);
                let rel = sub(p, *eye);
                let zc = dot(rel, fwd); // distance along view axis
                if zc <= 1e-9 {
                    return None;
                }
                let xc = dot(rel, right);
                let yc = dot(rel, cam_up);
                let half_h = (fov_y / 2.0).tan();
                let aspect = width as f64 / height as f64;
                let ndc_x = xc / (zc * half_h * aspect);
                let ndc_y = yc / (zc * half_h);
                Some((
                    (ndc_x + 1.0) * 0.5 * width as f64,
                    (1.0 - ndc_y) * 0.5 * height as f64,
                    zc as f32,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ortho_maps_corners() {
        let c = Camera::ortho(0.0, 2.0, 0.0, 1.0);
        let (px, py, _) = c.project([0.0, 0.0, 0.0], 200, 100).unwrap();
        assert_eq!((px, py), (0.0, 100.0)); // bottom-left → bottom row
        let (px, py, _) = c.project([2.0, 1.0, 0.5], 200, 100).unwrap();
        assert_eq!((px, py), (200.0, 0.0));
    }

    #[test]
    fn ortho_depth_passthrough() {
        let c = Camera::ortho(0.0, 1.0, 0.0, 1.0);
        let (_, _, z) = c.project([0.5, 0.5, 7.25], 10, 10).unwrap();
        assert_eq!(z, 7.25);
    }

    #[test]
    fn lookat_centers_target() {
        let c = Camera::look_at([0.0, 0.0, -5.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0], 1.0);
        let (px, py, z) = c.project([0.0, 0.0, 0.0], 100, 100).unwrap();
        assert!((px - 50.0).abs() < 1e-9);
        assert!((py - 50.0).abs() < 1e-9);
        assert!((z - 5.0).abs() < 1e-6);
    }

    #[test]
    fn lookat_rejects_points_behind() {
        let c = Camera::look_at([0.0, 0.0, -5.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0], 1.0);
        assert!(c.project([0.0, 0.0, -10.0], 100, 100).is_none());
    }

    #[test]
    fn lookat_depth_orders_points() {
        let c = Camera::look_at([0.0, 0.0, -5.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0], 1.0);
        let near = c.project([0.0, 0.0, -1.0], 64, 64).unwrap().2;
        let far = c.project([0.0, 0.0, 3.0], 64, 64).unwrap().2;
        assert!(near < far);
    }

    #[test]
    #[should_panic(expected = "degenerate ortho")]
    fn bad_ortho_panics() {
        let _ = Camera::ortho(1.0, 1.0, 0.0, 1.0);
    }
}
