//! RGBA + depth framebuffers and the blending/compositing primitives.

use crate::color::Color;

/// A color+depth image. Depth follows the convention "smaller is
/// closer"; empty pixels carry `f32::INFINITY` depth and transparent
/// color, so depth-compositing two partial images is associative.
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// RGBA8, row-major from the top-left.
    pub color: Vec<[u8; 4]>,
    /// Per-pixel depth.
    pub depth: Vec<f32>,
}

impl Framebuffer {
    /// A cleared framebuffer (transparent, infinitely far).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "degenerate framebuffer");
        Framebuffer {
            width,
            height,
            color: vec![[0, 0, 0, 0]; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Clear to transparent/far, optionally with a background color at
    /// infinite depth.
    pub fn clear(&mut self, background: Option<Color>) {
        let c = background.map(|c| [c.r, c.g, c.b, c.a]).unwrap_or([0; 4]);
        self.color.fill(c);
        self.depth.fill(f32::INFINITY);
    }

    /// Write a pixel if it wins the depth test.
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, z: f32, c: Color) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = y * self.width + x;
        if z < self.depth[i] {
            self.depth[i] = z;
            self.color[i] = [c.r, c.g, c.b, c.a];
        }
    }

    /// Read a pixel.
    pub fn pixel(&self, x: usize, y: usize) -> Color {
        let i = y * self.width + x;
        let [r, g, b, a] = self.color[i];
        Color { r, g, b, a }
    }

    /// Depth-composite `other` into `self`: per pixel, keep the closer
    /// opaque fragment; transparent pixels lose to anything.
    ///
    /// This is the merge operator of the parallel compositors. It is
    /// commutative for opaque geometry and associative, as binary swap
    /// requires.
    pub fn composite_from(&mut self, other: &Framebuffer) {
        assert_eq!(self.width, other.width, "composite: width mismatch");
        assert_eq!(self.height, other.height, "composite: height mismatch");
        for i in 0..self.color.len() {
            let take_other = match (other.color[i][3], self.color[i][3]) {
                (0, _) => false,
                (_, 0) => true,
                _ => other.depth[i] < self.depth[i],
            };
            if take_other {
                self.color[i] = other.color[i];
                self.depth[i] = other.depth[i];
            }
        }
    }

    /// Flatten to opaque RGB8 over a background color (PNG input).
    pub fn to_rgb(&self, background: Color) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width * self.height * 3);
        for px in &self.color {
            if px[3] == 0 {
                out.extend_from_slice(&[background.r, background.g, background.b]);
            } else {
                out.extend_from_slice(&px[..3]);
            }
        }
        out
    }

    /// Count of non-transparent pixels (diagnostics and tests).
    pub fn covered_pixels(&self) -> usize {
        self.color.iter().filter(|p| p[3] != 0).count()
    }

    /// Extract a horizontal band of rows `[y0, y1)` (binary swap splits
    /// images into spans).
    pub fn extract_rows(&self, y0: usize, y1: usize) -> Framebuffer {
        assert!(y0 < y1 && y1 <= self.height, "bad band [{y0}, {y1})");
        Framebuffer {
            width: self.width,
            height: y1 - y0,
            color: self.color[y0 * self.width..y1 * self.width].to_vec(),
            depth: self.depth[y0 * self.width..y1 * self.width].to_vec(),
        }
    }

    /// Paste a band previously extracted at row `y0`.
    pub fn paste_rows(&mut self, y0: usize, band: &Framebuffer) {
        assert_eq!(band.width, self.width, "paste: width mismatch");
        assert!(y0 + band.height <= self.height, "paste: band overflows");
        let start = y0 * self.width;
        let n = band.color.len();
        self.color[start..start + n].copy_from_slice(&band.color);
        self.depth[start..start + n].copy_from_slice(&band.depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test_keeps_closer_fragment() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_pixel(1, 1, 0.5, Color::rgb(10, 0, 0));
        fb.set_pixel(1, 1, 0.9, Color::rgb(0, 10, 0)); // behind: rejected
        assert_eq!(fb.pixel(1, 1), Color::rgb(10, 0, 0));
        fb.set_pixel(1, 1, 0.1, Color::rgb(0, 0, 10)); // in front: wins
        assert_eq!(fb.pixel(1, 1), Color::rgb(0, 0, 10));
    }

    #[test]
    fn out_of_bounds_writes_ignored() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set_pixel(5, 0, 0.0, Color::WHITE);
        fb.set_pixel(0, 9, 0.0, Color::WHITE);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn composite_is_commutative_for_disjoint_and_overlapping() {
        let mut a = Framebuffer::new(3, 1);
        a.set_pixel(0, 0, 0.3, Color::rgb(1, 0, 0));
        a.set_pixel(1, 0, 0.5, Color::rgb(2, 0, 0));
        let mut b = Framebuffer::new(3, 1);
        b.set_pixel(1, 0, 0.2, Color::rgb(0, 3, 0)); // closer at x=1
        b.set_pixel(2, 0, 0.9, Color::rgb(0, 4, 0));

        let mut ab = a.clone();
        ab.composite_from(&b);
        let mut ba = b.clone();
        ba.composite_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.pixel(0, 0), Color::rgb(1, 0, 0));
        assert_eq!(ab.pixel(1, 0), Color::rgb(0, 3, 0));
        assert_eq!(ab.pixel(2, 0), Color::rgb(0, 4, 0));
    }

    #[test]
    fn composite_is_associative() {
        let mk = |x: usize, z: f32, c: u8| {
            let mut f = Framebuffer::new(4, 1);
            f.set_pixel(x, 0, z, Color::rgb(c, c, c));
            f
        };
        let (a, b, c) = (mk(0, 0.1, 1), mk(0, 0.2, 2), mk(0, 0.05, 3));
        let mut left = a.clone();
        left.composite_from(&b);
        left.composite_from(&c);
        let mut bc = b.clone();
        bc.composite_from(&c);
        let mut right = a.clone();
        right.composite_from(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn bands_roundtrip() {
        let mut fb = Framebuffer::new(2, 4);
        for y in 0..4 {
            fb.set_pixel(0, y, 0.1, Color::rgb(y as u8, 0, 0));
        }
        let band = fb.extract_rows(1, 3);
        assert_eq!(band.height(), 2);
        let mut fresh = Framebuffer::new(2, 4);
        fresh.paste_rows(1, &band);
        assert_eq!(fresh.pixel(0, 1), Color::rgb(1, 0, 0));
        assert_eq!(fresh.pixel(0, 2), Color::rgb(2, 0, 0));
        assert_eq!(fresh.pixel(0, 0), Color::TRANSPARENT);
    }

    #[test]
    fn to_rgb_fills_background() {
        let mut fb = Framebuffer::new(2, 1);
        fb.set_pixel(0, 0, 0.0, Color::rgb(9, 8, 7));
        let rgb = fb.to_rgb(Color::rgb(100, 100, 100));
        assert_eq!(rgb, vec![9, 8, 7, 100, 100, 100]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn composite_size_mismatch_panics() {
        let mut a = Framebuffer::new(2, 2);
        let b = Framebuffer::new(3, 2);
        a.composite_from(&b);
    }
}
