//! Minimal PNG encoding (and decoding of our own files) over the
//! from-scratch zlib. 8-bit RGB, filter type 0 per scanline — the same
//! "render, compress on rank 0, write" path the paper's slice pipelines
//! take.

use crate::color::Color;
use crate::deflate::{self, Mode};
use crate::framebuffer::Framebuffer;

/// CRC-32 (ISO 3309), as required by the PNG chunk format.
/// Table-driven, like zlib's implementation.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (n, e) in t.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                let mask = (c & 1).wrapping_neg();
                c = (c >> 1) ^ (0xEDB8_8320 & mask);
            }
            *e = c;
        }
        t
    })
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let table = crc_table();
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

fn chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Encode 8-bit RGB pixels (`width*height*3` bytes, top row first) to a
/// PNG file image. `mode` selects the zlib strategy — the knob the
/// PHASTA discussion turns when it "skips the compression portion".
pub fn encode_rgb(width: usize, height: usize, rgb: &[u8], mode: Mode) -> Vec<u8> {
    assert_eq!(rgb.len(), width * height * 3, "pixel buffer size mismatch");
    assert!(width > 0 && height > 0, "degenerate image");
    let mut out = Vec::new();
    out.extend_from_slice(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(width as u32).to_be_bytes());
    ihdr.extend_from_slice(&(height as u32).to_be_bytes());
    ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // 8-bit, RGB, deflate, adaptive, no interlace
    chunk(&mut out, b"IHDR", &ihdr);

    // Raw image stream: one filter byte (0 = None) per scanline.
    let mut raw = Vec::with_capacity(height * (1 + width * 3));
    for row in rgb.chunks(width * 3) {
        raw.push(0);
        raw.extend_from_slice(row);
    }
    chunk(&mut out, b"IDAT", &deflate::zlib_compress(&raw, mode));
    chunk(&mut out, b"IEND", &[]);
    out
}

/// Encode a framebuffer flattened over `background`.
pub fn encode_framebuffer(fb: &Framebuffer, background: Color, mode: Mode) -> Vec<u8> {
    encode_rgb(fb.width(), fb.height(), &fb.to_rgb(background), mode)
}

/// PNG decode errors.
#[derive(Debug, PartialEq, Eq)]
pub enum PngError {
    /// Missing or wrong signature.
    BadSignature,
    /// Chunk structure invalid or CRC mismatch.
    BadChunk,
    /// Unsupported format (we only decode our own 8-bit RGB output).
    Unsupported,
    /// zlib/deflate decode failure.
    BadData,
}

/// Decode a PNG produced by [`encode_rgb`] back to
/// `(width, height, rgb)`. Verifies signature, chunk CRCs, and the zlib
/// checksum — a real structural validation of the writer.
pub fn decode_rgb(png: &[u8]) -> Result<(usize, usize, Vec<u8>), PngError> {
    if png.len() < 8 || png[..8] != [0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A] {
        return Err(PngError::BadSignature);
    }
    let mut pos = 8;
    let mut width = 0usize;
    let mut height = 0usize;
    let mut idat = Vec::new();
    while pos + 12 <= png.len() {
        let len = u32::from_be_bytes(png[pos..pos + 4].try_into().unwrap()) as usize;
        let kind = &png[pos + 4..pos + 8];
        if pos + 12 + len > png.len() {
            return Err(PngError::BadChunk);
        }
        let payload = &png[pos + 8..pos + 8 + len];
        let want_crc = u32::from_be_bytes(png[pos + 8 + len..pos + 12 + len].try_into().unwrap());
        if crc32(&png[pos + 4..pos + 8 + len]) != want_crc {
            return Err(PngError::BadChunk);
        }
        match kind {
            b"IHDR" => {
                if len != 13 || payload[8] != 8 || payload[9] != 2 {
                    return Err(PngError::Unsupported);
                }
                width = u32::from_be_bytes(payload[0..4].try_into().unwrap()) as usize;
                height = u32::from_be_bytes(payload[4..8].try_into().unwrap()) as usize;
            }
            b"IDAT" => idat.extend_from_slice(payload),
            b"IEND" => break,
            _ => {} // ancillary chunks ignored
        }
        pos += 12 + len;
    }
    if width == 0 || height == 0 {
        return Err(PngError::BadChunk);
    }
    let raw = deflate::zlib_decompress(&idat).map_err(|_| PngError::BadData)?;
    let stride = 1 + width * 3;
    if raw.len() != height * stride {
        return Err(PngError::BadData);
    }
    let mut rgb = Vec::with_capacity(width * height * 3);
    for row in raw.chunks(stride) {
        if row[0] != 0 {
            return Err(PngError::Unsupported); // we only write filter 0
        }
        rgb.extend_from_slice(&row[1..]);
    }
    Ok((width, height, rgb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Vec<u8> {
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                rgb.push((x * 255 / w.max(1)) as u8);
                rgb.push((y * 255 / h.max(1)) as u8);
                rgb.push(60);
            }
        }
        rgb
    }

    #[test]
    fn crc32_known_value() {
        // The canonical test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_stored_and_fixed() {
        for mode in [Mode::Stored, Mode::Fixed] {
            let rgb = gradient(37, 23);
            let png = encode_rgb(37, 23, &rgb, mode);
            let (w, h, back) = decode_rgb(&png).unwrap();
            assert_eq!((w, h), (37, 23));
            assert_eq!(back, rgb, "{mode:?}");
        }
    }

    #[test]
    fn compression_shrinks_pseudocolor_like_images() {
        // Pseudocolor slices have large constant-color regions (discrete
        // colormap bands), which LZ77 compresses well.
        let (w, h) = (320usize, 200usize);
        let mut rgb = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                let band = (((x / 20) + (y / 25)) % 16) as u8;
                rgb.extend_from_slice(&[band * 16, 255 - band * 16, 40]);
            }
        }
        let stored = encode_rgb(w, h, &rgb, Mode::Stored);
        let fixed = encode_rgb(w, h, &rgb, Mode::Fixed);
        assert!(
            fixed.len() < stored.len() / 4,
            "fixed {} vs stored {}",
            fixed.len(),
            stored.len()
        );
        // Smooth per-pixel gradients (the worst case for filter-0 rows)
        // still never expand beyond stored size plus framing.
        let grad = gradient(w, h);
        let g_fixed = encode_rgb(w, h, &grad, Mode::Fixed);
        let g_stored = encode_rgb(w, h, &grad, Mode::Stored);
        assert!(g_fixed.len() < g_stored.len());
    }

    #[test]
    fn framebuffer_encode_uses_background() {
        let mut fb = Framebuffer::new(2, 1);
        fb.set_pixel(0, 0, 0.0, Color::rgb(1, 2, 3));
        let png = encode_framebuffer(&fb, Color::rgb(9, 9, 9), Mode::Stored);
        let (_, _, rgb) = decode_rgb(&png).unwrap();
        assert_eq!(rgb, vec![1, 2, 3, 9, 9, 9]);
    }

    #[test]
    fn signature_and_structure_validated() {
        let rgb = gradient(4, 4);
        let mut png = encode_rgb(4, 4, &rgb, Mode::Fixed);
        assert_eq!(decode_rgb(&png[1..]), Err(PngError::BadSignature));
        // Corrupt a payload byte inside IHDR → CRC failure.
        png[16] ^= 0xFF;
        assert_eq!(decode_rgb(&png), Err(PngError::BadChunk));
    }

    #[test]
    fn single_pixel_image() {
        let png = encode_rgb(1, 1, &[255, 0, 127], Mode::Fixed);
        let (w, h, rgb) = decode_rgb(&png).unwrap();
        assert_eq!((w, h, rgb), (1, 1, vec![255, 0, 127]));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let _ = encode_rgb(4, 4, &[0; 10], Mode::Stored);
    }
}
