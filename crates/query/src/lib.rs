//! # query — the interactive in situ endpoint
//!
//! The fifth endpoint of the reproduction: a [`QueryServer`] registered
//! on the SENSEI `Bridge` that exposes **live per-step field
//! summaries, histograms, and leaf slices** to N concurrent polling
//! clients, plus a **write-back steering channel** that turns
//! [`sensei::Steering`] verdicts into a real control surface —
//! pause/resume, trigger-refine, and oscillator retarget commands
//! applied at the next step boundary.
//!
//! ## Transport: the staging broker, not a new socket layer
//!
//! Query clients are subscriber-class consumers of a generic
//! [`adios::Broker`]: each registered query gets a topic, each polling
//! client a bounded [`adios::Subscription`] queue, and a client that
//! stops draining is **evicted** under the broker's deadline rather
//! than stalling the simulation — the same discipline the
//! `run_endpoint_with_broker` fan-out applies to analysis consumers.
//!
//! ## Replayability contract
//!
//! An interactive session is a *reproducible artifact*. Queries and
//! steering commands are scheduled events: every command the server
//! applies is recorded in the minimpi delivery trace as an
//! `Interactive` event — `(world slot, client id, bridge step, FNV-1a
//! payload digest)` — via [`minimpi::Comm::record_interactive`]. Under
//! `SchedPolicy::Replay` the recorded session replays byte-identically
//! (query responses and `RunReport` alike), and a session whose command
//! stream changed diverges with a diff instead of silently producing
//! different results. Commands therefore come from a [`SessionScript`]
//! pinned to bridge step numbers, which doubles as the wire format a
//! live front end would produce.
//!
//! ## Snapshot discipline
//!
//! Summaries and histograms stream the live publish window (covered by
//! the bridge's sanitizer window). Leaf slices are answered from a
//! double-buffered snapshot of the *previous* step — read-only windows
//! over the same double-buffer scheme the offload executor uses, one
//! step late by design — and the reads are wrapped in their own
//! `publish_dataset` window so the happens-before sanitizer covers the
//! query snapshot path.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use adios::{AdmissionError, Broker, BrokerConfig, EvictionRecord, Subscription, TopicKey};
use minimpi::{Comm, FaultHandle};
use sensei::analysis::for_each_value;
use sensei::{AnalysisAdaptor, Association, DataAdaptor, FailureReport, Steering};

/// Interactive client identity. Stable across record and replay: the
/// script assigns ids, not the transport.
pub type ClientId = u64;

/// FNV-1a 64-bit digest — the payload fingerprint recorded in the
/// delivery trace for every applied command.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A live query a client registers against the running simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Global (count, min, max, sum) of a field, reduced collectively.
    Summary {
        /// Field name (e.g. `"data"`).
        field: String,
    },
    /// Global histogram of a field; bin count may be refined live via
    /// [`SteerCommand::Refine`].
    Histogram {
        /// Field name.
        field: String,
        /// Requested bin count.
        bins: u32,
    },
    /// The leading values of one local leaf of the serving rank,
    /// answered from the previous step's snapshot (one step late, like
    /// offloaded verdicts).
    LeafSlice {
        /// Field name.
        field: String,
        /// Local leaf ordinal on the serving rank.
        leaf: u32,
    },
}

impl Query {
    /// Canonical serialization — digest input and log key.
    pub fn canonical(&self) -> String {
        match self {
            Query::Summary { field } => format!("summary field={field}"),
            Query::Histogram { field, bins } => format!("histogram field={field} bins={bins}"),
            Query::LeafSlice { field, leaf } => format!("slice field={field} leaf={leaf}"),
        }
    }
}

/// A write-back steering command, applied at the next step boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum SteerCommand {
    /// Suspend query evaluation (and signal the driver to hold the
    /// simulation) until [`SteerCommand::Resume`].
    Pause,
    /// Resume a paused session.
    Resume,
    /// Trigger refined analysis: histogram queries switch to this bin
    /// count from the next boundary on.
    Refine {
        /// Refined bin count.
        bins: u32,
    },
    /// Retarget an oscillator: move its center and retune its
    /// frequency. The driver drains these via
    /// [`QueryHandle::take_retargets`] and applies them to the
    /// simulation deck — identically on every rank.
    Retarget {
        /// Deck index of the oscillator.
        oscillator: usize,
        /// New center.
        center: [f64; 3],
        /// New angular frequency.
        omega: f64,
    },
    /// Request a steering stop; the bridge records who and why.
    Stop {
        /// Human-readable cause.
        reason: String,
    },
    /// Liveness beacon from a watched steering client.
    Heartbeat,
}

impl SteerCommand {
    /// Canonical serialization — digest input and log key.
    pub fn canonical(&self) -> String {
        match self {
            SteerCommand::Pause => "pause".to_string(),
            SteerCommand::Resume => "resume".to_string(),
            SteerCommand::Refine { bins } => format!("refine bins={bins}"),
            SteerCommand::Retarget {
                oscillator,
                center,
                omega,
            } => format!(
                "retarget osc={oscillator} center={:?},{:?},{:?} omega={omega:?}",
                center[0], center[1], center[2]
            ),
            SteerCommand::Stop { reason } => format!("stop reason={reason}"),
            SteerCommand::Heartbeat => "heartbeat".to_string(),
        }
    }
}

/// One scripted client action.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Register a live query (opens a broker topic + subscription).
    Register(Query),
    /// Apply a steering command.
    Steer(SteerCommand),
}

impl Action {
    /// Canonical serialization — digest input and log key.
    pub fn canonical(&self) -> String {
        match self {
            Action::Register(q) => format!("register {}", q.canonical()),
            Action::Steer(s) => format!("steer {}", s.canonical()),
        }
    }

    /// The payload digest recorded in the delivery trace.
    pub fn digest(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// One command in a session script.
#[derive(Clone, Debug, PartialEq)]
pub struct ScriptedCommand {
    /// Issuing client.
    pub client: ClientId,
    /// Bridge step boundary at which the command applies.
    pub at_step: u64,
    /// What the client asked for.
    pub action: Action,
}

/// A scripted interactive session: the deterministic command stream
/// every rank's server drains at step boundaries. A live front end
/// produces exactly this shape (client, step, action) — scripting it
/// is what makes a session recordable and replayable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionScript {
    commands: Vec<ScriptedCommand>,
}

impl SessionScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a command applying at step boundary `at_step` (builder).
    #[must_use]
    pub fn at(mut self, at_step: u64, client: ClientId, action: Action) -> Self {
        self.commands.push(ScriptedCommand {
            client,
            at_step,
            action,
        });
        self
    }

    /// The commands, in insertion order.
    pub fn commands(&self) -> &[ScriptedCommand] {
        &self.commands
    }
}

/// Liveness watch over one steering client: the server expects periodic
/// commands (or heartbeats) and degrades to run-to-completion — with a
/// [`FailureReport::DeadSteering`] entry — when the client goes silent
/// past the grace window or its link is severed by fault injection.
#[derive(Clone)]
pub struct SteeringWatch {
    /// Watched client.
    pub client: ClientId,
    /// World slot the client is modeled on (fault-injection key).
    pub peer_slot: usize,
    /// World slot of the serving rank (fault-injection key).
    pub home_slot: usize,
    /// Bridge steps of silence tolerated before declaring it dead.
    pub grace_steps: u64,
    /// Fault switchboard: a severed `peer_slot → home_slot` link
    /// declares the client dead immediately instead of burning the
    /// grace window.
    pub faults: Option<FaultHandle>,
}

/// Query server configuration.
#[derive(Clone)]
pub struct QueryConfig {
    /// Per-client response queue bound (broker queue depth).
    pub queue_depth: usize,
    /// Max concurrent clients per query topic.
    pub max_clients: usize,
    /// How long a publish waits on a slow client before evicting it.
    pub eviction_deadline: Duration,
    /// Cap on values returned by a [`Query::LeafSlice`] response.
    pub slice_cap: usize,
    /// Optional liveness watch over a steering client.
    pub steering_watch: Option<SteeringWatch>,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            queue_depth: 4,
            max_clients: 64,
            eviction_deadline: Duration::from_micros(50),
            slice_cap: 32,
            steering_watch: None,
        }
    }
}

/// One response payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponsePayload {
    /// Global field summary.
    Summary {
        /// Non-ghost values summarized.
        count: u64,
        /// Global minimum (0 when `count == 0`).
        min: f64,
        /// Global maximum (0 when `count == 0`).
        max: f64,
        /// Global sum.
        sum: f64,
    },
    /// Global histogram.
    Histogram {
        /// Global minimum of the field.
        min: f64,
        /// Global maximum of the field.
        max: f64,
        /// Per-bin global counts.
        counts: Vec<u64>,
    },
    /// Leading values of one local leaf (previous step's snapshot).
    Slice {
        /// Local leaf ordinal.
        leaf: u32,
        /// Total non-capped length of the leaf's field.
        len: u64,
        /// The first `slice_cap` values.
        values: Vec<f64>,
    },
}

/// One message published to a query topic.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// Client the response answers.
    pub client: ClientId,
    /// Bridge step the response describes.
    pub step: u64,
    /// Simulation time at that step.
    pub time: f64,
    /// The answer.
    pub payload: ResponsePayload,
}

impl QueryResponse {
    /// Deterministic one-line JSON rendering — the bytes compared for
    /// replay identity and fed to the trace digest.
    pub fn to_json(&self) -> String {
        use probe::Json;
        let payload = match &self.payload {
            ResponsePayload::Summary {
                count,
                min,
                max,
                sum,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("summary".into())),
                ("count".into(), Json::Num(*count as f64)),
                ("min".into(), Json::Num(*min)),
                ("max".into(), Json::Num(*max)),
                ("sum".into(), Json::Num(*sum)),
            ]),
            ResponsePayload::Histogram { min, max, counts } => Json::Obj(vec![
                ("kind".into(), Json::Str("histogram".into())),
                ("min".into(), Json::Num(*min)),
                ("max".into(), Json::Num(*max)),
                (
                    "counts".into(),
                    Json::Arr(counts.iter().map(|c| Json::Num(*c as f64)).collect()),
                ),
            ]),
            ResponsePayload::Slice { leaf, len, values } => Json::Obj(vec![
                ("kind".into(), Json::Str("slice".into())),
                ("leaf".into(), Json::Num(f64::from(*leaf))),
                ("len".into(), Json::Num(*len as f64)),
                (
                    "values".into(),
                    Json::Arr(values.iter().map(|v| Json::Num(*v)).collect()),
                ),
            ]),
        };
        Json::Obj(vec![
            ("client".into(), Json::Num(self.client as f64)),
            ("step".into(), Json::Num(self.step as f64)),
            ("time".into(), Json::Num(self.time)),
            ("payload".into(), payload),
        ])
        .to_string()
    }
}

/// A pending oscillator retarget, drained by the simulation driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetargetCmd {
    /// Deck index.
    pub oscillator: usize,
    /// New center.
    pub center: [f64; 3],
    /// New angular frequency.
    pub omega: f64,
}

/// One live client registration: the query, its topic, and (on the
/// serving rank) the client's subscription.
struct ClientReg {
    client: ClientId,
    query: Query,
    topic: TopicKey,
    sub: Option<Subscription<QueryResponse>>,
    /// Sanitizer obligation id for this live registration: opened at
    /// register/join, discharged at leave, eviction pruning, or server
    /// finalize. `None` when the sanitizer is off.
    obligation: Option<u64>,
}

/// State shared between the server (registered on the bridge) and the
/// [`QueryHandle`] the driver/tests hold.
struct SharedState {
    broker: Broker<QueryResponse>,
    regs: Vec<ClientReg>,
    paused: bool,
    refine_bins: Option<u32>,
    retargets: Vec<RetargetCmd>,
    failures: Vec<FailureReport>,
    evicted: Vec<EvictionRecord>,
    /// Deterministic receive log: one line per message a poll drained.
    log: String,
    responses_published: u64,
    clients_peak: u64,
}

impl SharedState {
    /// Prune registrations whose subscriptions the broker evicted, and
    /// surface the eviction records as typed failures.
    fn drain_evictions(&mut self) -> u64 {
        let records = self.broker.take_evictions();
        let n = records.len() as u64;
        for r in records {
            self.failures.push(r.clone().into());
            self.evicted.push(r);
        }
        self.regs.retain_mut(|r| {
            let keep = r.sub.as_ref().is_none_or(|s| !s.is_evicted());
            if !keep {
                sanitizer::close_obligation(r.obligation.take());
            }
            keep
        });
        n
    }
}

/// Cloneable handle over a [`QueryServer`]'s shared state: the control
/// surface the simulation driver and the clients use.
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<Mutex<SharedState>>,
}

impl QueryHandle {
    /// Is the session paused? The driver holds the simulation (but
    /// keeps executing bridge steps, so the resume command can arrive).
    pub fn paused(&self) -> bool {
        self.shared.lock().paused
    }

    /// Drain the retargets steered in since the last call. The driver
    /// applies them to the simulation deck — on every rank, in order.
    pub fn take_retargets(&self) -> Vec<RetargetCmd> {
        std::mem::take(&mut self.shared.lock().retargets)
    }

    /// Dynamically join a client outside the script: subscribe `client`
    /// to a new registration of `query`. For single-rank endpoints
    /// (e.g. the broker soak's churn); multi-rank sessions must script
    /// registrations so every rank sees the same collective sequence.
    pub fn join(
        &self,
        client: ClientId,
        query: Query,
        label: impl Into<String>,
    ) -> Result<(), AdmissionError> {
        let mut s = self.shared.lock();
        let shard = s.regs.iter().filter(|r| r.client == client).count() as u32;
        let topic = TopicKey::new(format!("query/{client}"), shard);
        let sub = s.broker.subscribe_labeled(topic.clone(), label)?;
        let obligation =
            sanitizer::open_obligation("query-client", &format!("client {client} @ {topic}"));
        s.regs.push(ClientReg {
            client,
            query,
            topic,
            sub: Some(sub),
            obligation,
        });
        Ok(())
    }

    /// Disconnect every registration of `client` (client-side leave).
    pub fn leave(&self, client: ClientId) {
        let mut s = self.shared.lock();
        for reg in s.regs.iter_mut().filter(|r| r.client == client) {
            if let Some(sub) = &reg.sub {
                sub.disconnect();
            }
            sanitizer::close_obligation(reg.obligation.take());
        }
        s.regs.retain(|r| r.client != client);
    }

    /// Poll one client: drain its response queues, appending each
    /// message to the deterministic receive log. Returns messages
    /// drained.
    pub fn poll(&self, client: ClientId) -> usize {
        let mut s = self.shared.lock();
        Self::poll_filtered(&mut s, Some(client))
    }

    /// Poll every live client (the "N concurrent polling clients"
    /// tick). Returns messages drained.
    pub fn poll_all(&self) -> usize {
        let mut s = self.shared.lock();
        Self::poll_filtered(&mut s, None)
    }

    fn poll_filtered(s: &mut SharedState, only: Option<ClientId>) -> usize {
        let mut lines = String::new();
        let mut n = 0;
        for reg in &s.regs {
            if only.is_some_and(|c| c != reg.client) {
                continue;
            }
            let Some(sub) = &reg.sub else { continue };
            while let Some(msg) = sub.try_next() {
                use std::fmt::Write as _;
                let _ = writeln!(
                    lines,
                    "client {} topic {} seq {} {}",
                    reg.client,
                    reg.topic,
                    msg.seq,
                    msg.payload.to_json()
                );
                n += 1;
            }
        }
        s.log.push_str(&lines);
        n
    }

    /// The deterministic receive log: every message every poll drained,
    /// in drain order. Byte-identical across record and replay.
    pub fn session_log(&self) -> String {
        self.shared.lock().log.clone()
    }

    /// Live registration count.
    pub fn live_clients(&self) -> usize {
        self.shared.lock().regs.len()
    }

    /// Responses published so far.
    pub fn responses_published(&self) -> u64 {
        self.shared.lock().responses_published
    }

    /// Eviction records accumulated so far (also surfaced as typed
    /// [`FailureReport::Eviction`] entries through the bridge).
    pub fn evictions(&self) -> Vec<EvictionRecord> {
        self.shared.lock().evicted.clone()
    }

    /// Fairness over the live query topics: min/max messages delivered
    /// across subscribers, minimized over topics. `None` until
    /// something was published.
    pub fn fairness(&self) -> Option<f64> {
        let s = self.shared.lock();
        let mut worst: Option<f64> = None;
        for reg in &s.regs {
            if let Some(f) = s.broker.fairness(&reg.topic) {
                worst = Some(worst.map_or(f, |w: f64| w.min(f)));
            }
        }
        worst
    }
}

/// Tracks the liveness of a watched steering client.
struct WatchState {
    watch: SteeringWatch,
    last_seen: u64,
    dead: bool,
}

/// The interactive query server. Register it on a `Bridge` like any
/// analysis; drive the session with a [`SessionScript`]; control the
/// simulation through the [`QueryHandle`].
pub struct QueryServer {
    shared: Arc<Mutex<SharedState>>,
    script: Arc<SessionScript>,
    /// Script indices in stable (at_step, insertion) order.
    order: Vec<usize>,
    cursor: usize,
    cfg: QueryConfig,
    watch: Option<WatchState>,
    /// Bridge steps executed (the boundary counter the script is
    /// pinned to).
    step: u64,
    /// Double-buffered snapshots for slice queries: the window being
    /// read and the window being filled coexist, mirroring the offload
    /// executor's payload slots.
    slots: [Option<Arc<datamodel::DataSet>>; 2],
    /// Stop verdict drained this step, if any.
    pending_stop: Option<String>,
    /// Set on first execute: this rank serves the broker fan-out.
    serving: Option<bool>,
}

impl QueryServer {
    /// Build a server around a session script.
    pub fn new(script: Arc<SessionScript>, cfg: QueryConfig) -> Self {
        let mut order: Vec<usize> = (0..script.commands().len()).collect();
        order.sort_by_key(|&i| script.commands()[i].at_step);
        let watch = cfg.steering_watch.clone().map(|watch| WatchState {
            watch,
            last_seen: 0,
            dead: false,
        });
        let shared = Arc::new(Mutex::new(SharedState {
            broker: Broker::new(BrokerConfig {
                queue_depth: cfg.queue_depth,
                max_subscribers: cfg.max_clients,
                eviction_deadline: cfg.eviction_deadline,
            }),
            regs: Vec::new(),
            paused: false,
            refine_bins: None,
            retargets: Vec::new(),
            failures: Vec::new(),
            evicted: Vec::new(),
            log: String::new(),
            responses_published: 0,
            clients_peak: 0,
        }));
        QueryServer {
            shared,
            script,
            order,
            cursor: 0,
            cfg,
            watch,
            step: 0,
            slots: [None, None],
            pending_stop: None,
            serving: None,
        }
    }

    /// The control handle shared with the driver and the clients.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Apply one scripted command at boundary `step`. Records the trace
    /// event, then mutates session state. Returns `true` when the
    /// command requests a stop.
    fn apply(&mut self, idx: usize, step: u64, comm: &Comm, probe: &probe::Probe) {
        let cmd = self.script.commands()[idx].clone();
        if let Some(w) = &self.watch {
            if w.dead && cmd.client == w.watch.client {
                // Commands from a client already declared dead are
                // unreachable in a real deployment; skip them so the
                // degraded run stays deterministic.
                return;
            }
        }
        let canonical = cmd.action.canonical();
        comm.record_interactive(cmd.client, step, cmd.action.digest());
        probe.bulk(
            &probe::key::of("query", "commands"),
            1,
            1,
            canonical.len() as u64,
        );
        if let Some(w) = &mut self.watch {
            if cmd.client == w.watch.client {
                w.last_seen = step;
            }
        }
        let serving = self.serving.unwrap_or(false);
        match cmd.action {
            Action::Register(query) => {
                let mut s = self.shared.lock();
                let shard = s.regs.iter().filter(|r| r.client == cmd.client).count() as u32;
                let topic = TopicKey::new(format!("query/{}", cmd.client), shard);
                // Only the serving rank hosts subscriptions; every rank
                // tracks the registration so collective evaluation
                // stays aligned.
                let sub = if serving {
                    match s
                        .broker
                        .subscribe_labeled(topic.clone(), format!("client-{}", cmd.client))
                    {
                        Ok(sub) => Some(sub),
                        Err(err) => {
                            s.failures.push(FailureReport::Other {
                                detail: format!("query: admission refused: {err}"),
                            });
                            return;
                        }
                    }
                } else {
                    None
                };
                let obligation = sanitizer::open_obligation(
                    "query-client",
                    &format!("client {} @ {topic}", cmd.client),
                );
                s.regs.push(ClientReg {
                    client: cmd.client,
                    query,
                    topic,
                    sub,
                    obligation,
                });
                s.clients_peak = s.clients_peak.max(s.regs.len() as u64);
            }
            Action::Steer(steer) => {
                let mut s = self.shared.lock();
                match steer {
                    SteerCommand::Pause => s.paused = true,
                    SteerCommand::Resume => s.paused = false,
                    SteerCommand::Refine { bins } => s.refine_bins = Some(bins),
                    SteerCommand::Retarget {
                        oscillator,
                        center,
                        omega,
                    } => s.retargets.push(RetargetCmd {
                        oscillator,
                        center,
                        omega,
                    }),
                    SteerCommand::Stop { reason } => self.pending_stop = Some(reason),
                    SteerCommand::Heartbeat => {}
                }
            }
        }
    }

    /// Check the steering watch at boundary `step`; on death, record
    /// the typed failure and degrade to run-to-completion.
    fn check_watch(&mut self, step: u64) {
        let Some(w) = &mut self.watch else { return };
        if w.dead {
            return;
        }
        let waited = step.saturating_sub(w.last_seen);
        let severed = w
            .watch
            .faults
            .as_ref()
            .is_some_and(|f| f.is_severed(w.watch.peer_slot, w.watch.home_slot));
        if severed || waited >= w.watch.grace_steps {
            w.dead = true;
            self.shared
                .lock()
                .failures
                .push(FailureReport::DeadSteering {
                    client: w.watch.client,
                    step,
                    waited_steps: waited,
                });
        }
    }

    /// Evaluate every registered query and publish the responses from
    /// the serving rank. Collective: summary and histogram queries
    /// reduce over `comm` on every rank.
    fn evaluate(&mut self, data: &dyn DataAdaptor, comm: &Comm, probe: &probe::Probe) {
        let serving = self.serving.unwrap_or(false);
        let step = self.step;
        let refine = self.shared.lock().refine_bins;
        // Registration list is identical on every rank (script-driven),
        // so the collective sequence below stays aligned.
        let regs: Vec<(ClientId, Query)> = self
            .shared
            .lock()
            .regs
            .iter()
            .map(|r| (r.client, r.query.clone()))
            .collect();
        let mut responses: Vec<(usize, QueryResponse)> = Vec::new();
        for (i, (client, query)) in regs.iter().enumerate() {
            let payload = match query {
                Query::Summary { field } => {
                    let mut local = (0u64, f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
                    let n = each_value(data, field, |v| {
                        local.1 = local.1.min(v);
                        local.2 = local.2.max(v);
                        local.3 += v;
                    });
                    local.0 = n as u64;
                    let global = comm.allreduce(local, |a, b| {
                        (a.0 + b.0, a.1.min(b.1), a.2.max(b.2), a.3 + b.3)
                    });
                    Some(ResponsePayload::Summary {
                        count: global.0,
                        min: if global.0 == 0 { 0.0 } else { global.1 },
                        max: if global.0 == 0 { 0.0 } else { global.2 },
                        sum: global.3,
                    })
                }
                Query::Histogram { field, bins } => {
                    let bins = refine.unwrap_or(*bins).max(1) as usize;
                    let mut range = (f64::INFINITY, f64::NEG_INFINITY);
                    each_value(data, field, |v| {
                        range.0 = range.0.min(v);
                        range.1 = range.1.max(v);
                    });
                    let (min, max) = comm.allreduce(range, |a, b| (a.0.min(b.0), a.1.max(b.1)));
                    let width = if max > min {
                        (max - min) / bins as f64
                    } else {
                        1.0
                    };
                    let mut counts = vec![0u64; bins];
                    each_value(data, field, |v| {
                        let b = (((v - min) / width) as usize).min(bins - 1);
                        counts[b] += 1;
                    });
                    let counts = comm.allreduce_vec(counts, |a, b| a + b);
                    let empty = counts.iter().all(|&c| c == 0);
                    Some(ResponsePayload::Histogram {
                        min: if empty { 0.0 } else { min },
                        max: if empty { 0.0 } else { max },
                        counts,
                    })
                }
                Query::LeafSlice { field, leaf } => {
                    // One step late, from the previous snapshot slot;
                    // nothing collective here.
                    if !serving {
                        None
                    } else {
                        self.slots[((step + 1) % 2) as usize]
                            .as_ref()
                            .map(Arc::clone)
                            .and_then(|snap| {
                                // Sanitizer coverage for the query
                                // snapshot path: a read-only publish
                                // window over the double-buffered data.
                                let _window = if sanitizer::active() {
                                    Some(datamodel::publish_dataset(&snap, "query"))
                                } else {
                                    None
                                };
                                slice_leaf(&snap, field, *leaf, self.cfg.slice_cap)
                            })
                    }
                }
            };
            if let Some(payload) = payload {
                responses.push((
                    i,
                    QueryResponse {
                        client: *client,
                        step,
                        time: data.time(),
                        payload,
                    },
                ));
            }
        }
        if !serving {
            return;
        }
        let mut s = self.shared.lock();
        let mut bytes = 0u64;
        let mut published = 0u64;
        for (i, response) in responses {
            let Some(reg) = s.regs.get(i) else { continue };
            if reg.sub.as_ref().is_some_and(|sub| sub.is_evicted()) {
                continue;
            }
            let topic = reg.topic.clone();
            bytes += response.to_json().len() as u64;
            s.broker.publish(&topic, response);
            published += 1;
        }
        s.responses_published += published;
        if published > 0 {
            probe.bulk(
                &probe::key::of("query", "responses"),
                published,
                published,
                bytes,
            );
        }
        let evicted = s.drain_evictions();
        if evicted > 0 {
            probe.bulk(&probe::key::of("query", "evictions"), evicted, 0, 0);
        }
        probe.gauge_max(&probe::key::of("query", "clients_peak"), s.clients_peak);
    }
}

/// Stream a field's non-ghost values, trying point association first
/// and falling back to cell.
fn each_value(data: &dyn DataAdaptor, field: &str, mut f: impl FnMut(f64)) -> usize {
    let n = for_each_value(data, Association::Point, field, &mut f);
    if n > 0 {
        return n;
    }
    for_each_value(data, Association::Cell, field, &mut f)
}

/// Read the leading values of leaf `leaf`'s field from a snapshot.
fn slice_leaf(
    snap: &datamodel::DataSet,
    field: &str,
    leaf: u32,
    cap: usize,
) -> Option<ResponsePayload> {
    let leaf_ds = snap.leaves().nth(leaf as usize)?;
    let attrs = [leaf_ds.point_data(), leaf_ds.cell_data()]
        .into_iter()
        .flatten()
        .find(|a| a.get(field).is_some())?;
    let arr = attrs.get(field)?;
    let len = arr.num_tuples();
    let take = len.min(cap);
    let mut values = Vec::with_capacity(take);
    match arr.as_slice_in::<f64>(datamodel::current_space()) {
        Ok(slice) => values.extend_from_slice(&slice[..take]),
        Err(_) => {
            for t in 0..take {
                values.push(arr.get(t, 0));
            }
        }
    }
    Some(ResponsePayload::Slice {
        leaf,
        len: len as u64,
        values,
    })
}

impl AnalysisAdaptor for QueryServer {
    fn name(&self) -> &str {
        "query-server"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        let probe = comm.probe();
        let _span = probe.span("per-step/query-server");
        if self.serving.is_none() {
            // Rank 0 of the bridge's communicator hosts the fan-out.
            self.serving = Some(comm.rank() == 0);
            if comm.rank() == 0 {
                // Query evictions and queue peaks flow into the same
                // probe surface the staging broker reports on
                // (`broker/evictions`, `broker/<topic>/queue_peak`).
                self.shared.lock().broker.attach_probe(probe.clone());
            }
        }
        let step = self.step;
        // 1. Drain the script up to this boundary, in stable step
        //    order. Every applied command lands in the delivery trace.
        while self.cursor < self.order.len() {
            let idx = self.order[self.cursor];
            if self.script.commands()[idx].at_step > step {
                break;
            }
            self.cursor += 1;
            self.apply(idx, step, comm, &probe);
        }
        // 2. Liveness: a silent (or severed) steering client degrades
        //    the session to run-to-completion instead of blocking.
        self.check_watch(step);
        // 3. Evaluate and publish, unless paused.
        let paused = self.shared.lock().paused;
        if paused {
            probe.bulk(&probe::key::of("query", "paused_steps"), 1, 0, 0);
        } else {
            self.evaluate(data, comm, &probe);
            if self.serving == Some(true) {
                let has_slice = self
                    .shared
                    .lock()
                    .regs
                    .iter()
                    .any(|r| matches!(r.query, Query::LeafSlice { .. }));
                if has_slice {
                    // Fill this step's snapshot slot after evaluation:
                    // slices always answer from the previous window.
                    self.slots[(step % 2) as usize] = Some(Arc::new(data.full_mesh()));
                }
            }
        }
        self.step += 1;
        match self.pending_stop.take() {
            Some(reason) => Steering::Stop { reason },
            None => Steering::Continue,
        }
    }

    fn finalize(&mut self, _comm: &Comm) {
        let mut s = self.shared.lock();
        s.broker.finish_all();
        let _ = s.drain_evictions();
        // Server teardown is the legitimate discharge point for
        // scripted registrations: clients that never left are closed
        // with the broker, not leaked.
        for reg in s.regs.iter_mut() {
            sanitizer::close_obligation(reg.obligation.take());
        }
    }

    fn take_failure_reports(&mut self) -> Vec<FailureReport> {
        std::mem::take(&mut self.shared.lock().failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{DataArray, DataSet, Extent, ImageData};
    use minimpi::World;
    use sensei::{Bridge, InMemoryAdaptor};

    fn adaptor(step: u64) -> InMemoryAdaptor {
        let e = Extent::whole([4, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned(
            "data",
            1,
            vec![1.0, 2.0, 3.0, 4.0 + step as f64],
        ));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        let a = Action::Register(Query::Summary {
            field: "data".into(),
        });
        let b = Action::Steer(SteerCommand::Retarget {
            oscillator: 1,
            center: [0.5, 0.25, 0.125],
            omega: 3.5,
        });
        assert_eq!(a.digest(), a.digest());
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.canonical(), "register summary field=data");
        assert_eq!(
            b.canonical(),
            "steer retarget osc=1 center=0.5,0.25,0.125 omega=3.5"
        );
    }

    #[test]
    fn scripted_session_publishes_summaries_and_applies_steering() {
        let script = Arc::new(
            SessionScript::new()
                .at(
                    0,
                    1,
                    Action::Register(Query::Summary {
                        field: "data".into(),
                    }),
                )
                .at(
                    0,
                    2,
                    Action::Register(Query::Histogram {
                        field: "data".into(),
                        bins: 4,
                    }),
                )
                .at(1, 1, Action::Steer(SteerCommand::Pause))
                .at(
                    2,
                    1,
                    Action::Steer(SteerCommand::Retarget {
                        oscillator: 0,
                        center: [0.9, 0.1, 0.9],
                        omega: 7.0,
                    }),
                )
                .at(2, 1, Action::Steer(SteerCommand::Resume))
                .at(3, 2, Action::Steer(SteerCommand::Refine { bins: 8 })),
        );
        World::run(1, move |comm| {
            let server = QueryServer::new(Arc::clone(&script), QueryConfig::default());
            let handle = server.handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(server));
            for s in 0..5 {
                assert!(bridge.execute(&adaptor(s), comm).should_continue());
                handle.poll_all();
            }
            bridge.finalize(comm);
            // Step 1 was paused: 2 registrations × 4 live steps.
            assert_eq!(handle.responses_published(), 8);
            let retargets = handle.take_retargets();
            assert_eq!(
                retargets,
                vec![RetargetCmd {
                    oscillator: 0,
                    center: [0.9, 0.1, 0.9],
                    omega: 7.0,
                }]
            );
            let log = handle.session_log();
            // Step 0 histogram: values 1..=4 over 4 bins, one each.
            assert!(log.contains(r#""counts":[1,1,1,1]"#), "{log}");
            // The refine command widened the histogram to 8 bins from
            // step 3 on.
            assert!(log.contains(r#""counts":[1,1,1,0,0,0,0,1]"#), "{log}");
            assert!(!handle.paused());
        });
    }

    #[test]
    fn slices_answer_from_the_previous_snapshot() {
        let script = Arc::new(SessionScript::new().at(
            0,
            9,
            Action::Register(Query::LeafSlice {
                field: "data".into(),
                leaf: 0,
            }),
        ));
        World::run(1, move |comm| {
            let server = QueryServer::new(Arc::clone(&script), QueryConfig::default());
            let handle = server.handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(server));
            // Step 0: no snapshot yet — nothing published.
            bridge.execute(&adaptor(0), comm);
            handle.poll_all();
            assert_eq!(handle.responses_published(), 0);
            // Step 1: answers from step 0's window (last value 4.0).
            bridge.execute(&adaptor(1), comm);
            handle.poll_all();
            bridge.finalize(comm);
            assert_eq!(handle.responses_published(), 1);
            let log = handle.session_log();
            assert!(
                log.contains(r#""values":[1,2,3,4]"#),
                "one step late: {log}"
            );
        });
    }

    #[test]
    fn slow_clients_are_evicted_not_waited_for() {
        let script = Arc::new(
            SessionScript::new()
                .at(
                    0,
                    5,
                    Action::Register(Query::Summary {
                        field: "data".into(),
                    }),
                )
                .at(
                    0,
                    6,
                    Action::Register(Query::Summary {
                        field: "data".into(),
                    }),
                ),
        );
        World::run(1, move |comm| {
            let cfg = QueryConfig {
                queue_depth: 1,
                eviction_deadline: Duration::from_micros(10),
                ..QueryConfig::default()
            };
            let server = QueryServer::new(Arc::clone(&script), cfg);
            let handle = server.handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(server));
            for s in 0..4 {
                bridge.execute(&adaptor(s), comm);
                // Client 5 polls; client 6 stalls and must be evicted.
                handle.poll(5);
            }
            bridge.finalize(comm);
            let evictions = handle.evictions();
            assert_eq!(evictions.len(), 1, "{evictions:?}");
            assert_eq!(evictions[0].label, "client-6");
            let failures = bridge.failure_reports();
            assert!(
                failures.iter().any(|f| f.kind() == "eviction"),
                "{failures:?}"
            );
            assert_eq!(handle.live_clients(), 1);
        });
    }

    #[test]
    fn silent_steering_client_degrades_to_run_to_completion() {
        let script = Arc::new(SessionScript::new());
        World::run(1, move |comm| {
            let cfg = QueryConfig {
                steering_watch: Some(SteeringWatch {
                    client: 42,
                    peer_slot: 1,
                    home_slot: 0,
                    grace_steps: 2,
                    faults: None,
                }),
                ..QueryConfig::default()
            };
            let server = QueryServer::new(Arc::clone(&script), cfg);
            let mut bridge = Bridge::new();
            bridge.register(Box::new(server));
            for s in 0..4 {
                assert!(bridge.execute(&adaptor(s), comm).should_continue());
            }
            bridge.finalize(comm);
            let failures = bridge.failure_reports();
            let dead: Vec<_> = failures
                .iter()
                .filter(|f| f.kind() == "dead-steering")
                .collect();
            assert_eq!(dead.len(), 1, "{failures:?}");
            assert!(dead[0].to_string().contains("steering client 42"));
        });
    }
}
