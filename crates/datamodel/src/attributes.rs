//! Point/cell attribute collections and the ghost-marking convention.

use std::sync::Arc;

use crate::array::DataArray;
use crate::MemoryFootprint;

/// Name of the ghost-marking array, following VTK's convention. Entries
/// are `u8` flags: `0` = real, nonzero = ghost (duplicated from a
/// neighboring rank and to be blanked by analyses).
pub const GHOST_ARRAY_NAME: &str = "vtkGhostType";

/// Ghost flag value for a duplicated (ghost) point or cell.
pub const GHOST_DUPLICATE: u8 = 1;

/// An ordered collection of named [`DataArray`]s attached to points or
/// cells of a mesh (the analogue of `vtkPointData` / `vtkCellData`).
#[derive(Clone, Debug, Default)]
pub struct Attributes {
    arrays: Vec<DataArray>,
}

impl Attributes {
    /// Empty attribute set.
    pub fn new() -> Self {
        Attributes { arrays: Vec::new() }
    }

    /// Add or replace an array by name.
    ///
    /// When the sanitizer is active and a ghost array is (or becomes)
    /// present, the ghost flags are mirrored into the shadow ledgers of
    /// the sibling arrays so tuple-level writes can be checked against
    /// the ghost rule.
    pub fn insert(&mut self, array: DataArray) {
        if let Some(existing) = self.arrays.iter_mut().find(|a| a.name() == array.name()) {
            *existing = array;
        } else {
            self.arrays.push(array);
        }
        if sanitizer::active() {
            self.rearm_ghost_shadows();
        }
    }

    /// Copy the ghost flags into every shadowed sibling array's ledger.
    /// No-op when there is no ghost array or no shadowed arrays.
    fn rearm_ghost_shadows(&self) {
        let Some(flags) = self
            .get(GHOST_ARRAY_NAME)
            .and_then(|g| g.typed_slice::<u8>())
            .map(|s| Arc::new(s.to_vec()))
        else {
            return;
        };
        for a in &self.arrays {
            if a.name() == GHOST_ARRAY_NAME {
                continue;
            }
            if let Some(shadow) = a.shadow() {
                shadow.arm_ghosts(Arc::clone(&flags));
            }
        }
    }

    /// Look up an array by name.
    pub fn get(&self, name: &str) -> Option<&DataArray> {
        self.arrays.iter().find(|a| a.name() == name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut DataArray> {
        self.arrays.iter_mut().find(|a| a.name() == name)
    }

    /// Remove an array by name, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<DataArray> {
        let idx = self.arrays.iter().position(|a| a.name() == name)?;
        Some(self.arrays.remove(idx))
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True when no arrays are attached.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Iterate arrays in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &DataArray> {
        self.arrays.iter()
    }

    /// Array names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.arrays.iter().map(|a| a.name()).collect()
    }

    /// The ghost-marking array, if any.
    pub fn ghosts(&self) -> Option<&DataArray> {
        self.get(GHOST_ARRAY_NAME)
    }

    /// Is tuple `t` marked as a ghost? (False when no ghost array exists.)
    pub fn is_ghost(&self, t: usize) -> bool {
        self.ghosts().map(|g| g.get(t, 0) != 0.0).unwrap_or(false)
    }

    /// Rebuild this collection with every array deep-copied into
    /// `space` via [`DataArray::snapshot_in`] — each array is a
    /// tracked, shadow-clocked transfer, and the originals are left
    /// untouched in their own space.
    pub fn snapshot_in(&self, space: crate::space::MemorySpace) -> Attributes {
        Attributes {
            arrays: self.arrays.iter().map(|a| a.snapshot_in(space)).collect(),
        }
    }

    /// Total payload bytes across all arrays (what a cross-space copy
    /// of this collection moves).
    pub fn payload_bytes(&self) -> usize {
        self.arrays.iter().map(|a| a.payload_bytes()).sum()
    }
}

impl MemoryFootprint for Attributes {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        self.arrays.iter().map(|a| a.heap_bytes(count_shared)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut at = Attributes::new();
        at.insert(DataArray::owned("a", 1, vec![1.0f64]));
        at.insert(DataArray::owned("b", 1, vec![2.0f64]));
        assert_eq!(at.len(), 2);
        assert_eq!(at.get("a").unwrap().get(0, 0), 1.0);
        // Replacement keeps len stable.
        at.insert(DataArray::owned("a", 1, vec![9.0f64]));
        assert_eq!(at.len(), 2);
        assert_eq!(at.get("a").unwrap().get(0, 0), 9.0);
    }

    #[test]
    fn remove_returns_array() {
        let mut at = Attributes::new();
        at.insert(DataArray::owned("x", 1, vec![5i32]));
        let got = at.remove("x").unwrap();
        assert_eq!(got.name(), "x");
        assert!(at.is_empty());
        assert!(at.remove("x").is_none());
    }

    #[test]
    fn ghost_convention() {
        let mut at = Attributes::new();
        assert!(!at.is_ghost(0));
        at.insert(DataArray::owned(GHOST_ARRAY_NAME, 1, vec![0u8, 1, 0]));
        assert!(!at.is_ghost(0));
        assert!(at.is_ghost(1));
        assert!(!at.is_ghost(2));
    }

    #[test]
    fn names_in_insertion_order() {
        let mut at = Attributes::new();
        at.insert(DataArray::owned("z", 1, vec![0.0f64]));
        at.insert(DataArray::owned("a", 1, vec![0.0f64]));
        assert_eq!(at.names(), vec!["z", "a"]);
    }
}
