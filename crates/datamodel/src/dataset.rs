//! The polymorphic dataset wrapper analyses consume.

use crate::attributes::Attributes;
use crate::grids::{ImageData, RectilinearGrid};
use crate::multiblock::MultiBlock;
use crate::unstructured::UnstructuredGrid;
use crate::MemoryFootprint;

/// Any mesh the data model can describe — what a data adaptor hands to an
/// analysis adaptor (the analogue of `vtkDataObject`).
#[derive(Clone, Debug)]
pub enum DataSet {
    /// Uniform structured grid.
    Image(ImageData),
    /// Rectilinear grid.
    Rectilinear(RectilinearGrid),
    /// Unstructured mesh.
    Unstructured(UnstructuredGrid),
    /// Collection of blocks (one per rank or per box).
    Multi(MultiBlock),
}

impl DataSet {
    /// Total points in this dataset (summed over blocks).
    pub fn num_points(&self) -> usize {
        match self {
            DataSet::Image(g) => g.num_points(),
            DataSet::Rectilinear(g) => g.num_points(),
            DataSet::Unstructured(g) => g.num_points(),
            DataSet::Multi(m) => m.blocks().map(|b| b.num_points()).sum(),
        }
    }

    /// Total cells in this dataset (summed over blocks).
    pub fn num_cells(&self) -> usize {
        match self {
            DataSet::Image(g) => g.num_cells(),
            DataSet::Rectilinear(g) => g.num_cells(),
            DataSet::Unstructured(g) => g.num_cells(),
            DataSet::Multi(m) => m.blocks().map(|b| b.num_cells()).sum(),
        }
    }

    /// Point attributes of a leaf dataset (`None` for multiblock).
    pub fn point_data(&self) -> Option<&Attributes> {
        match self {
            DataSet::Image(g) => Some(&g.point_data),
            DataSet::Rectilinear(g) => Some(&g.point_data),
            DataSet::Unstructured(g) => Some(&g.point_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Cell attributes of a leaf dataset (`None` for multiblock).
    pub fn cell_data(&self) -> Option<&Attributes> {
        match self {
            DataSet::Image(g) => Some(&g.cell_data),
            DataSet::Rectilinear(g) => Some(&g.cell_data),
            DataSet::Unstructured(g) => Some(&g.cell_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Mutable point attributes of a leaf dataset (`None` for multiblock).
    pub fn point_data_mut(&mut self) -> Option<&mut Attributes> {
        match self {
            DataSet::Image(g) => Some(&mut g.point_data),
            DataSet::Rectilinear(g) => Some(&mut g.point_data),
            DataSet::Unstructured(g) => Some(&mut g.point_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Mutable cell attributes of a leaf dataset (`None` for multiblock).
    pub fn cell_data_mut(&mut self) -> Option<&mut Attributes> {
        match self {
            DataSet::Image(g) => Some(&mut g.cell_data),
            DataSet::Rectilinear(g) => Some(&mut g.cell_data),
            DataSet::Unstructured(g) => Some(&mut g.cell_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Iterate this dataset's leaves (itself, or each multiblock block).
    pub fn leaves(&self) -> Box<dyn Iterator<Item = &DataSet> + '_> {
        match self {
            DataSet::Multi(m) => Box::new(m.blocks()),
            other => Box::new(std::iter::once(other)),
        }
    }

    /// Deep-copy every attribute array of every leaf into `space`: the
    /// explicit whole-window transfer the offload executor uses to
    /// build a device-side payload of one publish window. Mesh
    /// structure (extents, geometry, connectivity) is cloned as-is;
    /// each array goes through [`crate::DataArray::snapshot_in`], so
    /// the copy is a tracked transfer with a shadow-clock edge per
    /// array, and the returned dataset aliases nothing in the source.
    pub fn snapshot_in(&self, space: crate::space::MemorySpace) -> DataSet {
        let mut out = self.clone();
        out.retarget(space);
        out
    }

    /// Replace every attribute collection with a `space` snapshot of
    /// the corresponding source collection (recursing into blocks).
    fn retarget(&mut self, space: crate::space::MemorySpace) {
        if let DataSet::Multi(m) = self {
            for i in 0..m.num_slots() {
                if let Some(b) = m.block_mut(i) {
                    b.retarget(space);
                }
            }
            return;
        }
        if let Some(pd) = self.point_data_mut() {
            *pd = pd.snapshot_in(space);
        }
        if let Some(cd) = self.cell_data_mut() {
            *cd = cd.snapshot_in(space);
        }
    }

    /// Total attribute payload bytes over every leaf (what one
    /// cross-space snapshot of this dataset moves).
    pub fn payload_bytes(&self) -> usize {
        self.leaves()
            .map(|l| {
                l.point_data().map(|a| a.payload_bytes()).unwrap_or(0)
                    + l.cell_data().map(|a| a.payload_bytes()).unwrap_or(0)
            })
            .sum()
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            DataSet::Image(_) => "image",
            DataSet::Rectilinear(_) => "rectilinear",
            DataSet::Unstructured(_) => "unstructured",
            DataSet::Multi(_) => "multiblock",
        }
    }
}

impl MemoryFootprint for DataSet {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        match self {
            DataSet::Image(g) => g.heap_bytes(count_shared),
            DataSet::Rectilinear(g) => g.heap_bytes(count_shared),
            DataSet::Unstructured(g) => g.heap_bytes(count_shared),
            DataSet::Multi(m) => m.heap_bytes(count_shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;

    #[test]
    fn leaves_of_leaf_is_self() {
        let g = ImageData::new(Extent::whole([2, 2, 2]), Extent::whole([2, 2, 2]));
        let ds = DataSet::Image(g);
        assert_eq!(ds.leaves().count(), 1);
        assert_eq!(ds.kind(), "image");
        assert_eq!(ds.num_points(), 8);
        assert_eq!(ds.num_cells(), 1);
    }

    #[test]
    fn snapshot_in_moves_every_leaf_array_to_the_target_space() {
        use crate::space::MemorySpace;
        let mut m = MultiBlock::new();
        for i in 0..2 {
            let e = Extent::whole([2, 1, 1]);
            let mut g = ImageData::new(e, e);
            g.add_point_array(crate::DataArray::owned("f", 1, vec![i as f64; 2]));
            m.push(DataSet::Image(g));
        }
        let ds = DataSet::Multi(m);
        let dev = ds.snapshot_in(MemorySpace::DeviceSim(3));
        for (i, leaf) in dev.leaves().enumerate() {
            let arr = leaf.point_data().unwrap().get("f").unwrap();
            assert_eq!(arr.space(), MemorySpace::DeviceSim(3));
            assert_eq!(arr.get(0, 0), i as f64, "values copied, not remapped");
        }
        // The source stays put in its own space and the payload
        // accounting sees the same bytes on both sides.
        assert_eq!(dev.payload_bytes(), ds.payload_bytes());
        let src = ds.leaves().next().unwrap();
        let arr = src.point_data().unwrap().get("f").unwrap();
        assert_eq!(arr.space(), MemorySpace::Host);
    }

    #[test]
    fn multiblock_sums_counts() {
        let mut m = MultiBlock::new();
        m.push(DataSet::Image(ImageData::new(
            Extent::whole([2, 2, 2]),
            Extent::whole([4, 2, 2]),
        )));
        m.push(DataSet::Image(ImageData::new(
            Extent::new([2, 0, 0], [3, 1, 1]),
            Extent::whole([4, 2, 2]),
        )));
        let ds = DataSet::Multi(m);
        assert_eq!(ds.num_points(), 16);
        assert_eq!(ds.leaves().count(), 2);
        assert!(ds.point_data().is_none());
    }
}
