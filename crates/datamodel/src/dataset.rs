//! The polymorphic dataset wrapper analyses consume.

use crate::attributes::Attributes;
use crate::grids::{ImageData, RectilinearGrid};
use crate::multiblock::MultiBlock;
use crate::unstructured::UnstructuredGrid;
use crate::MemoryFootprint;

/// Any mesh the data model can describe — what a data adaptor hands to an
/// analysis adaptor (the analogue of `vtkDataObject`).
#[derive(Clone, Debug)]
pub enum DataSet {
    /// Uniform structured grid.
    Image(ImageData),
    /// Rectilinear grid.
    Rectilinear(RectilinearGrid),
    /// Unstructured mesh.
    Unstructured(UnstructuredGrid),
    /// Collection of blocks (one per rank or per box).
    Multi(MultiBlock),
}

impl DataSet {
    /// Total points in this dataset (summed over blocks).
    pub fn num_points(&self) -> usize {
        match self {
            DataSet::Image(g) => g.num_points(),
            DataSet::Rectilinear(g) => g.num_points(),
            DataSet::Unstructured(g) => g.num_points(),
            DataSet::Multi(m) => m.blocks().map(|b| b.num_points()).sum(),
        }
    }

    /// Total cells in this dataset (summed over blocks).
    pub fn num_cells(&self) -> usize {
        match self {
            DataSet::Image(g) => g.num_cells(),
            DataSet::Rectilinear(g) => g.num_cells(),
            DataSet::Unstructured(g) => g.num_cells(),
            DataSet::Multi(m) => m.blocks().map(|b| b.num_cells()).sum(),
        }
    }

    /// Point attributes of a leaf dataset (`None` for multiblock).
    pub fn point_data(&self) -> Option<&Attributes> {
        match self {
            DataSet::Image(g) => Some(&g.point_data),
            DataSet::Rectilinear(g) => Some(&g.point_data),
            DataSet::Unstructured(g) => Some(&g.point_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Cell attributes of a leaf dataset (`None` for multiblock).
    pub fn cell_data(&self) -> Option<&Attributes> {
        match self {
            DataSet::Image(g) => Some(&g.cell_data),
            DataSet::Rectilinear(g) => Some(&g.cell_data),
            DataSet::Unstructured(g) => Some(&g.cell_data),
            DataSet::Multi(_) => None,
        }
    }

    /// Iterate this dataset's leaves (itself, or each multiblock block).
    pub fn leaves(&self) -> Box<dyn Iterator<Item = &DataSet> + '_> {
        match self {
            DataSet::Multi(m) => Box::new(m.blocks()),
            other => Box::new(std::iter::once(other)),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            DataSet::Image(_) => "image",
            DataSet::Rectilinear(_) => "rectilinear",
            DataSet::Unstructured(_) => "unstructured",
            DataSet::Multi(_) => "multiblock",
        }
    }
}

impl MemoryFootprint for DataSet {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        match self {
            DataSet::Image(g) => g.heap_bytes(count_shared),
            DataSet::Rectilinear(g) => g.heap_bytes(count_shared),
            DataSet::Unstructured(g) => g.heap_bytes(count_shared),
            DataSet::Multi(m) => m.heap_bytes(count_shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;

    #[test]
    fn leaves_of_leaf_is_self() {
        let g = ImageData::new(Extent::whole([2, 2, 2]), Extent::whole([2, 2, 2]));
        let ds = DataSet::Image(g);
        assert_eq!(ds.leaves().count(), 1);
        assert_eq!(ds.kind(), "image");
        assert_eq!(ds.num_points(), 8);
        assert_eq!(ds.num_cells(), 1);
    }

    #[test]
    fn multiblock_sums_counts() {
        let mut m = MultiBlock::new();
        m.push(DataSet::Image(ImageData::new(
            Extent::whole([2, 2, 2]),
            Extent::whole([4, 2, 2]),
        )));
        m.push(DataSet::Image(ImageData::new(
            Extent::new([2, 0, 0], [3, 1, 1]),
            Extent::whole([4, 2, 2]),
        )));
        let ds = DataSet::Multi(m);
        assert_eq!(ds.num_points(), 16);
        assert_eq!(ds.leaves().count(), 2);
        assert!(ds.point_data().is_none());
    }
}
