//! Structured index-space algebra (VTK-style inclusive extents).
//!
//! An extent `[i0..=i1, j0..=j1, k0..=k1]` names a box of **points** in a
//! global structured grid; a box with `i1 == i0` is a plane. Cell counts
//! are one less per non-degenerate axis, as in VTK.

/// Inclusive structured extent in point-index space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Extent {
    /// Inclusive lower corner `[i0, j0, k0]`.
    pub lo: [i64; 3],
    /// Inclusive upper corner `[i1, j1, k1]`.
    pub hi: [i64; 3],
}

impl Extent {
    /// Build an extent; `hi` must dominate `lo` on every axis.
    pub fn new(lo: [i64; 3], hi: [i64; 3]) -> Self {
        assert!(
            (0..3).all(|a| hi[a] >= lo[a]),
            "degenerate extent: lo {lo:?} hi {hi:?}"
        );
        Extent { lo, hi }
    }

    /// Extent of a whole grid with `dims` points per axis, rooted at 0.
    pub fn whole(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "zero-sized grid");
        Extent {
            lo: [0, 0, 0],
            hi: [dims[0] as i64 - 1, dims[1] as i64 - 1, dims[2] as i64 - 1],
        }
    }

    /// Points per axis.
    pub fn point_dims(&self) -> [usize; 3] {
        [
            (self.hi[0] - self.lo[0] + 1) as usize,
            (self.hi[1] - self.lo[1] + 1) as usize,
            (self.hi[2] - self.lo[2] + 1) as usize,
        ]
    }

    /// Cells per axis (`max(points-1, 1)` on degenerate axes is *not*
    /// applied: a flat axis has zero cells, so a plane has no 3D cells).
    pub fn cell_dims(&self) -> [usize; 3] {
        let p = self.point_dims();
        [
            p[0].saturating_sub(1),
            p[1].saturating_sub(1),
            p[2].saturating_sub(1),
        ]
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        let d = self.point_dims();
        d[0] * d[1] * d[2]
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        let c = self.cell_dims();
        c[0] * c[1] * c[2]
    }

    /// Does this extent contain global point index `(i, j, k)`?
    pub fn contains(&self, p: [i64; 3]) -> bool {
        (0..3).all(|a| self.lo[a] <= p[a] && p[a] <= self.hi[a])
    }

    /// Row-major (k slowest) linear offset of a **global** point index
    /// within this extent's local storage.
    pub fn linear_index(&self, p: [i64; 3]) -> usize {
        debug_assert!(self.contains(p), "point {p:?} outside extent {self:?}");
        let d = self.point_dims();
        let i = (p[0] - self.lo[0]) as usize;
        let j = (p[1] - self.lo[1]) as usize;
        let k = (p[2] - self.lo[2]) as usize;
        (k * d[1] + j) * d[0] + i
    }

    /// Inverse of [`Extent::linear_index`].
    pub fn point_at(&self, linear: usize) -> [i64; 3] {
        let d = self.point_dims();
        let i = linear % d[0];
        let j = (linear / d[0]) % d[1];
        let k = linear / (d[0] * d[1]);
        [
            self.lo[0] + i as i64,
            self.lo[1] + j as i64,
            self.lo[2] + k as i64,
        ]
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Extent) -> Option<Extent> {
        let lo = [
            self.lo[0].max(other.lo[0]),
            self.lo[1].max(other.lo[1]),
            self.lo[2].max(other.lo[2]),
        ];
        let hi = [
            self.hi[0].min(other.hi[0]),
            self.hi[1].min(other.hi[1]),
            self.hi[2].min(other.hi[2]),
        ];
        if (0..3).all(|a| lo[a] <= hi[a]) {
            Some(Extent { lo, hi })
        } else {
            None
        }
    }

    /// Grow by `g` layers on every face, clipped to `bounds`.
    pub fn grow_within(&self, g: i64, bounds: &Extent) -> Extent {
        Extent {
            lo: [
                (self.lo[0] - g).max(bounds.lo[0]),
                (self.lo[1] - g).max(bounds.lo[1]),
                (self.lo[2] - g).max(bounds.lo[2]),
            ],
            hi: [
                (self.hi[0] + g).min(bounds.hi[0]),
                (self.hi[1] + g).min(bounds.hi[1]),
                (self.hi[2] + g).min(bounds.hi[2]),
            ],
        }
    }

    /// Iterate all global point indices in row-major (k slowest) order.
    pub fn iter_points(&self) -> impl Iterator<Item = [i64; 3]> + '_ {
        let lo = self.lo;
        let d = self.point_dims();
        (0..d[2]).flat_map(move |k| {
            (0..d[1]).flat_map(move |j| {
                (0..d[0]).map(move |i| [lo[0] + i as i64, lo[1] + j as i64, lo[2] + k as i64])
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_counts() {
        let e = Extent::whole([4, 3, 2]);
        assert_eq!(e.num_points(), 24);
        assert_eq!(e.num_cells(), 6);
        assert_eq!(e.point_dims(), [4, 3, 2]);
    }

    #[test]
    fn plane_has_no_cells() {
        let e = Extent::new([0, 0, 5], [9, 9, 5]);
        assert_eq!(e.num_points(), 100);
        assert_eq!(e.num_cells(), 0);
    }

    #[test]
    fn linear_index_roundtrip() {
        let e = Extent::new([2, 3, 4], [5, 7, 6]);
        for (n, p) in e.iter_points().enumerate() {
            assert_eq!(e.linear_index(p), n);
            assert_eq!(e.point_at(n), p);
        }
        assert_eq!(e.iter_points().count(), e.num_points());
    }

    #[test]
    fn intersect_overlapping() {
        let a = Extent::new([0, 0, 0], [10, 10, 10]);
        let b = Extent::new([5, 5, 5], [15, 15, 15]);
        assert_eq!(a.intersect(&b), Some(Extent::new([5, 5, 5], [10, 10, 10])));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Extent::new([0, 0, 0], [4, 4, 4]);
        let b = Extent::new([5, 0, 0], [9, 4, 4]);
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn grow_is_clipped() {
        let bounds = Extent::whole([10, 10, 10]);
        let e = Extent::new([0, 4, 8], [2, 6, 9]);
        let g = e.grow_within(1, &bounds);
        assert_eq!(g, Extent::new([0, 3, 7], [3, 7, 9]));
    }

    #[test]
    fn contains_boundary_points() {
        let e = Extent::new([1, 1, 1], [3, 3, 3]);
        assert!(e.contains([1, 1, 1]));
        assert!(e.contains([3, 3, 3]));
        assert!(!e.contains([0, 1, 1]));
        assert!(!e.contains([4, 3, 3]));
    }

    #[test]
    #[should_panic(expected = "degenerate extent")]
    fn inverted_extent_panics() {
        let _ = Extent::new([0, 0, 0], [-1, 0, 0]);
    }
}
