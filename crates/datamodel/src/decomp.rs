//! Regular block decomposition of structured grids across ranks —
//! the "partitioned between the processes using regular decomposition" of
//! the oscillator miniapp (§3.3).

use crate::extent::Extent;

/// Factor `p` ranks into a near-cubic 3D process grid, like
/// `MPI_Dims_create`: the product of the dims equals `p` and the dims are
/// as balanced as possible, in non-increasing order.
pub fn dims_create(p: usize) -> [usize; 3] {
    assert!(p > 0, "cannot decompose over zero ranks");
    let mut best = [p, 1, 1];
    let mut best_spread = p - 1;
    // Enumerate factor triples a*b*c = p with a <= b <= c.
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let rest = p / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    let spread = c - a;
                    if spread < best_spread {
                        best_spread = spread;
                        best = [c, b, a];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Split a global point extent into `dims` blocks per axis and return the
/// block owned by rank `rank` (row-major rank order: x fastest).
///
/// Blocks partition the **cells**: adjacent blocks share a face of points
/// (each block's point extent overlaps its +axis neighbor by one plane),
/// matching VTK's structured-piece convention.
pub fn partition_extent(global: &Extent, dims: [usize; 3], rank: usize) -> Extent {
    let p = dims[0] * dims[1] * dims[2];
    assert!(rank < p, "rank {rank} out of range for {dims:?}");
    let coords = [
        rank % dims[0],
        (rank / dims[0]) % dims[1],
        rank / (dims[0] * dims[1]),
    ];
    let mut lo = [0i64; 3];
    let mut hi = [0i64; 3];
    for a in 0..3 {
        let cells = global.cell_dims()[a].max(1);
        assert!(
            dims[a] <= cells,
            "axis {a}: cannot split {cells} cells across {} ranks",
            dims[a]
        );
        let base = cells / dims[a];
        let extra = cells % dims[a];
        // First `extra` blocks take one extra cell.
        let my_cells = base + usize::from(coords[a] < extra);
        let start = coords[a] * base + coords[a].min(extra);
        lo[a] = global.lo[a] + start as i64;
        hi[a] = lo[a] + my_cells as i64; // +1 point plane shared with neighbor
        hi[a] = hi[a].min(global.hi[a]);
    }
    Extent::new(lo, hi)
}

/// Ghost flags marking the point planes a block *duplicates* from its
/// lower-axis neighbours.
///
/// [`partition_extent`] partitions cells, so adjacent blocks share a
/// point plane: the plane at `local.lo[a]` is owned by the `-a`
/// neighbour whenever the block does not touch the global lower
/// boundary on that axis. Point-associated analyses that fold every
/// tuple (histograms, moments) would count those planes once per
/// adjacent block — making their results depend on the decomposition —
/// unless the producer marks them with the VTK duplicate-ghost
/// convention ([`crate::GHOST_ARRAY_NAME`]).
///
/// Returns one flag per point in `local.iter_points()` order:
/// [`crate::GHOST_DUPLICATE`] on duplicated planes, 0 elsewhere. The
/// non-ghost points of all blocks of a decomposition tile the global
/// extent exactly once.
pub fn duplicate_point_ghosts(local: &Extent, global: &Extent) -> Vec<u8> {
    let shared: Vec<usize> = (0..3).filter(|&a| local.lo[a] > global.lo[a]).collect();
    local
        .iter_points()
        .map(|p| {
            if shared.iter().any(|&a| p[a] == local.lo[a]) {
                crate::GHOST_DUPLICATE
            } else {
                0
            }
        })
        .collect()
}

/// The ready-to-insert [`crate::GHOST_ARRAY_NAME`] array for `local`
/// within `global` (see [`duplicate_point_ghosts`]). Inserting it into
/// a dataset's attributes is also what arms the sanitizer's
/// ghost-write checks on the sibling zero-copy arrays.
pub fn ghost_array(local: &Extent, global: &Extent) -> crate::array::DataArray {
    crate::array::DataArray::owned(
        crate::GHOST_ARRAY_NAME,
        1,
        duplicate_point_ghosts(local, global),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_balanced() {
        assert_eq!(dims_create(1), [1, 1, 1]);
        assert_eq!(dims_create(8), [2, 2, 2]);
        assert_eq!(dims_create(64), [4, 4, 4]);
        assert_eq!(dims_create(12), [3, 2, 2]);
        let d = dims_create(7); // prime
        assert_eq!(d.iter().product::<usize>(), 7);
    }

    #[test]
    fn dims_product_always_p() {
        for p in 1..200 {
            let d = dims_create(p);
            assert_eq!(d.iter().product::<usize>(), p, "p={p}");
            assert!(d[0] >= d[1] && d[1] >= d[2]);
        }
    }

    #[test]
    fn partition_covers_all_cells_once() {
        let global = Extent::whole([17, 13, 9]);
        let dims = [4, 3, 2];
        let p: usize = dims.iter().product();
        let mut cell_owner = vec![0usize; global.num_cells()];
        let gc = global.cell_dims();
        for rank in 0..p {
            let e = partition_extent(&global, dims, rank);
            // Cells of block = points minus the shared upper plane.
            for k in e.lo[2]..e.hi[2] {
                for j in e.lo[1]..e.hi[1] {
                    for i in e.lo[0]..e.hi[0] {
                        let idx = ((k as usize) * gc[1] + j as usize) * gc[0] + i as usize;
                        cell_owner[idx] += 1;
                    }
                }
            }
        }
        assert!(
            cell_owner.iter().all(|&c| c == 1),
            "every cell owned exactly once"
        );
    }

    #[test]
    fn neighbors_share_point_plane() {
        let global = Extent::whole([11, 11, 11]);
        let dims = [2, 1, 1];
        let a = partition_extent(&global, dims, 0);
        let b = partition_extent(&global, dims, 1);
        assert_eq!(a.hi[0], b.lo[0], "blocks share a point plane on x");
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_ranks_per_axis_panics() {
        let global = Extent::whole([3, 3, 3]); // 2 cells per axis
        let _ = partition_extent(&global, [5, 1, 1], 0);
    }

    #[test]
    fn single_block_has_no_duplicate_ghosts() {
        let global = Extent::whole([9, 7, 5]);
        let flags = duplicate_point_ghosts(&global, &global);
        assert_eq!(flags.len(), global.num_points());
        assert!(flags.iter().all(|&f| f == 0));
    }

    #[test]
    fn non_ghost_points_tile_the_global_extent_once() {
        let global = Extent::whole([17, 13, 9]);
        for dims in [[1, 1, 1], [4, 1, 1], [2, 2, 1], [4, 3, 2]] {
            let p: usize = dims.iter().product();
            let mut owner = vec![0usize; global.num_points()];
            for rank in 0..p {
                let local = partition_extent(&global, dims, rank);
                let flags = duplicate_point_ghosts(&local, &global);
                for (pt, &f) in local.iter_points().zip(&flags) {
                    if f == 0 {
                        owner[global.linear_index(pt)] += 1;
                    }
                }
            }
            assert!(
                owner.iter().all(|&c| c == 1),
                "dims {dims:?}: every point owned exactly once"
            );
        }
    }

    #[test]
    fn shared_planes_are_marked_on_the_low_side() {
        let global = Extent::whole([11, 11, 11]);
        let b = partition_extent(&global, [2, 1, 1], 1);
        let flags = duplicate_point_ghosts(&b, &global);
        for (pt, &f) in b.iter_points().zip(&flags) {
            assert_eq!(
                f != 0,
                pt[0] == b.lo[0],
                "only the shared lo-x plane is a ghost"
            );
        }
    }
}
