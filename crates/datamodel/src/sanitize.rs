//! Zero-copy publish windows for the happens-before sanitizer.
//!
//! An endpoint that stages a dataset zero-copy (Catalyst, Libsim,
//! ADIOS, GLEAN) holds borrowed views of the simulation's arrays for
//! the duration of a marshal/execute window. While that window is
//! open, any mutation of a shared array by a rank without a
//! happens-before edge to the window's close is a use-after-publish
//! hazard. [`publish_dataset`] opens the window on every shadowed
//! array reachable from a [`DataSet`]; dropping the returned
//! [`PublishGuard`] closes it and records the release clock.
//!
//! Everything here is free when the sanitizer is inactive: arrays
//! carry no shadows, so the guard holds an empty vector.

use std::sync::Arc;

use crate::dataset::DataSet;

/// Open publish windows on every shadowed array in `data`, attributed
/// to `endpoint` (e.g. `"catalyst"`). The windows close when the
/// returned guard drops.
///
/// Walks multiblock structures leaf-by-leaf, covering both point and
/// cell attributes, so the guard protects exactly the arrays an
/// endpoint can reach through zero-copy views.
pub fn publish_dataset(data: &DataSet, endpoint: &str) -> PublishGuard {
    let mut open = Vec::new();
    if sanitizer::active() {
        for leaf in data.leaves() {
            for attrs in [leaf.point_data(), leaf.cell_data()].into_iter().flatten() {
                for array in attrs.iter() {
                    if let Some(shadow) = array.shadow() {
                        if let Some(pub_id) = shadow.begin_publish(endpoint) {
                            open.push((Arc::clone(shadow), pub_id));
                        }
                    }
                }
            }
        }
    }
    PublishGuard { open }
}

/// RAII token for a set of open publish windows; closing happens on
/// drop so early returns and panics still release the windows.
pub struct PublishGuard {
    open: Vec<(Arc<sanitizer::Shadow>, u64)>,
}

impl PublishGuard {
    /// How many shadowed arrays this guard is protecting.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// True when no shadowed arrays were found (sanitizer off, or the
    /// dataset holds only owned storage).
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }
}

impl Drop for PublishGuard {
    fn drop(&mut self) {
        for (shadow, pub_id) in self.open.drain(..) {
            shadow.end_publish(pub_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataArray;
    use crate::extent::Extent;
    use crate::grids::ImageData;

    fn shared_image() -> DataSet {
        let whole = Extent::whole([2, 2, 1]);
        let mut img = ImageData::new(whole, whole);
        let n = img.num_points();
        img.point_data
            .insert(DataArray::shared("u", 1, Arc::new(vec![0.0f64; n])));
        DataSet::Image(img)
    }

    #[test]
    fn guard_is_empty_when_sanitizer_off() {
        let data = shared_image();
        let guard = publish_dataset(&data, "test");
        assert!(guard.is_empty());
    }

    #[test]
    fn guard_opens_and_closes_windows() {
        let session = sanitizer::Session::new(1, sanitizer::Mode::Collect);
        let _ctx = sanitizer::install(Arc::clone(&session), 0);
        let data = shared_image();
        let array = data.point_data().unwrap().get("u").unwrap();
        let shadow = array.shadow().expect("shared array should carry a shadow");
        {
            let guard = publish_dataset(&data, "test");
            assert_eq!(guard.len(), 1);
            assert_eq!(shadow.open_publishes(), 1);
        }
        assert_eq!(shadow.open_publishes(), 0);
        assert_eq!(session.finish_world(), 0);
    }
}
