//! # datamodel — a VTK-like scientific data model
//!
//! The SENSEI interface (SC16) standardizes on the VTK data model as the
//! lingua franca between simulations and in situ infrastructures. This
//! crate is a from-scratch Rust equivalent of the subset the paper uses:
//!
//! * [`DataArray`] — named, typed, multi-component arrays supporting both
//!   *array-of-structures* and *structure-of-arrays* layouts, exactly the
//!   enhancement the paper contributed to VTK so simulation arrays map
//!   **zero-copy**. Zero-copy is expressed with shared buffers
//!   ([`Buffer::Shared`]): constructing a view of a simulation field is
//!   O(1) and does not touch the field's bytes.
//! * [`ImageData`] / [`RectilinearGrid`] / [`UnstructuredGrid`] — the mesh
//!   types exercised by the oscillator miniapp (uniform), Nyx
//!   (rectilinear boxes) and PHASTA (unstructured), plus [`MultiBlock`]
//!   for per-rank block collections.
//! * ghost-cell marking via the `vtkGhostType` attribute convention
//!   ([`attributes::GHOST_ARRAY_NAME`]), used by the Nyx and AVF-LESLIE
//!   adaptors to blank ghost zones.
//! * [`Extent`] index-space algebra and a block [`decomp`]osition helper
//!   mirroring `MPI_Dims_create` + regular decomposition.
//!
//! Every structure reports its heap footprint ([`MemoryFootprint`]) so the
//! paper's memory-overhead studies (Figs. 4, 7) can attribute bytes to
//! simulation vs. analysis ownership.

pub mod array;
pub mod attributes;
pub mod dataset;
pub mod decomp;
pub mod extent;
pub mod grids;
pub mod multiblock;
pub mod sanitize;
pub mod space;
pub mod unstructured;

pub use array::{Buffer, DataArray, Layout, Scalar, ScalarType};
pub use attributes::{Attributes, GHOST_ARRAY_NAME, GHOST_DUPLICATE};
pub use dataset::DataSet;
pub use decomp::{dims_create, duplicate_point_ghosts, ghost_array, partition_extent};
pub use extent::Extent;
pub use grids::{ImageData, RectilinearGrid};
pub use multiblock::MultiBlock;
pub use sanitize::{publish_dataset, PublishGuard};
pub use space::{current_space, enter_space, AccessError, MemorySpace, SpaceGuard};
pub use unstructured::{CellType, UnstructuredGrid};

/// Anything that can report how many heap bytes it owns.
///
/// `count_shared` controls whether bytes behind shared (zero-copy) buffers
/// are attributed to this structure. The paper's memory studies need both
/// views: the analysis' *own* footprint excludes shared simulation data,
/// while a total high-water mark includes it once.
pub trait MemoryFootprint {
    /// Heap bytes reachable from this value.
    fn heap_bytes(&self, count_shared: bool) -> usize;
}
