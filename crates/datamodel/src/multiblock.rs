//! Multiblock collections (`vtkMultiBlockDataSet`): a list of child
//! datasets, some of which may be absent on this rank (each rank typically
//! owns one block of a global collection).

use crate::dataset::DataSet;
use crate::MemoryFootprint;

/// An ordered collection of optional child datasets.
#[derive(Clone, Debug, Default)]
pub struct MultiBlock {
    children: Vec<Option<DataSet>>,
}

impl MultiBlock {
    /// Empty collection.
    pub fn new() -> Self {
        MultiBlock {
            children: Vec::new(),
        }
    }

    /// A collection with `n` empty slots (global block count known, local
    /// blocks filled in by [`MultiBlock::set`]).
    pub fn with_slots(n: usize) -> Self {
        MultiBlock {
            children: (0..n).map(|_| None).collect(),
        }
    }

    /// Append a present block.
    pub fn push(&mut self, ds: DataSet) {
        self.children.push(Some(ds));
    }

    /// Fill slot `i` (grows the collection if needed).
    pub fn set(&mut self, i: usize, ds: DataSet) {
        if i >= self.children.len() {
            self.children.resize_with(i + 1, || None);
        }
        self.children[i] = Some(ds);
    }

    /// Slot count, including empty slots.
    pub fn num_slots(&self) -> usize {
        self.children.len()
    }

    /// The block in slot `i`, if present.
    pub fn block(&self, i: usize) -> Option<&DataSet> {
        self.children.get(i).and_then(|c| c.as_ref())
    }

    /// Mutable access to the block in slot `i`, if present.
    pub fn block_mut(&mut self, i: usize) -> Option<&mut DataSet> {
        self.children.get_mut(i).and_then(|c| c.as_mut())
    }

    /// Iterate present blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &DataSet> {
        self.children.iter().filter_map(|c| c.as_ref())
    }

    /// Iterate present blocks mutably.
    pub fn blocks_mut(&mut self) -> impl Iterator<Item = &mut DataSet> {
        self.children.iter_mut().filter_map(|c| c.as_mut())
    }

    /// Number of present blocks.
    pub fn num_present(&self) -> usize {
        self.children.iter().filter(|c| c.is_some()).count()
    }
}

impl MemoryFootprint for MultiBlock {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        self.blocks().map(|b| b.heap_bytes(count_shared)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use crate::grids::ImageData;

    fn img() -> DataSet {
        DataSet::Image(ImageData::new(
            Extent::whole([2, 2, 2]),
            Extent::whole([2, 2, 2]),
        ))
    }

    #[test]
    fn slots_and_sparse_fill() {
        let mut m = MultiBlock::with_slots(4);
        assert_eq!(m.num_slots(), 4);
        assert_eq!(m.num_present(), 0);
        m.set(2, img());
        assert_eq!(m.num_present(), 1);
        assert!(m.block(2).is_some());
        assert!(m.block(0).is_none());
        assert!(m.block(9).is_none());
    }

    #[test]
    fn set_grows() {
        let mut m = MultiBlock::new();
        m.set(3, img());
        assert_eq!(m.num_slots(), 4);
        assert_eq!(m.blocks().count(), 1);
    }
}
