//! Typed, multi-component data arrays with zero-copy buffer sharing and
//! AoS/SoA layout support — the heart of the paper's "enhanced VTK data
//! model" (§3.2).

use std::sync::Arc;

use crate::space::{self, AccessError, MemorySpace};
use crate::MemoryFootprint;

/// Scalar element types supported by [`DataArray`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ScalarType {
    F32,
    F64,
    I32,
    I64,
    U8,
}

impl ScalarType {
    /// Size of one element in bytes.
    pub fn size_of(self) -> usize {
        match self {
            ScalarType::F32 | ScalarType::I32 => 4,
            ScalarType::F64 | ScalarType::I64 => 8,
            ScalarType::U8 => 1,
        }
    }
}

/// Element types storable in a [`DataArray`].
pub trait Scalar: Copy + PartialOrd + Send + Sync + 'static {
    /// The runtime tag for this type.
    const TYPE: ScalarType;
    /// Lossy widening to `f64` for generic analysis code.
    fn to_f64(self) -> f64;
    /// Narrowing from `f64`.
    fn from_f64(v: f64) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $tag:expr) => {
        impl Scalar for $t {
            const TYPE: ScalarType = $tag;
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
        }
    };
}
impl_scalar!(f32, ScalarType::F32);
impl_scalar!(f64, ScalarType::F64);
impl_scalar!(i32, ScalarType::I32);
impl_scalar!(i64, ScalarType::I64);
impl_scalar!(u8, ScalarType::U8);

/// Memory layout of a multi-component array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Array-of-structures: components interleaved in one buffer
    /// (`x0 y0 z0 x1 y1 z1 …`) — VTK's historical default.
    AoS,
    /// Structure-of-arrays: one buffer per component — the layout the
    /// paper added native support for, so Fortran codes map zero-copy.
    SoA,
}

/// A buffer that is either owned or shared with the producing simulation.
///
/// `Shared` is this crate's expression of the paper's *zero-copy*
/// property: wrapping a simulation field costs one reference count, not a
/// memcpy, and the analysis reads the simulation's bytes in place.
#[derive(Clone, Debug)]
pub enum Buffer<T> {
    /// The array owns its storage (a deep copy was made).
    Owned(Vec<T>),
    /// Zero-copy view of storage owned elsewhere (e.g. by the simulation).
    Shared(Arc<Vec<T>>),
}

impl<T: Copy> Buffer<T> {
    /// Read access to the elements.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Buffer::Owned(v) => v,
            Buffer::Shared(a) => a,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this is a zero-copy view.
    pub fn is_shared(&self) -> bool {
        matches!(self, Buffer::Shared(_))
    }

    /// Mutable access; copies shared storage on first write
    /// (copy-on-write, like `Arc::make_mut`).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Buffer::Shared(a) = self {
            *self = Buffer::Owned(a.as_ref().clone());
        }
        match self {
            Buffer::Owned(v) => v,
            Buffer::Shared(_) => unreachable!(),
        }
    }
}

impl<T> MemoryFootprint for Buffer<T> {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        match self {
            Buffer::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            Buffer::Shared(a) => {
                if count_shared {
                    a.capacity() * std::mem::size_of::<T>()
                } else {
                    0
                }
            }
        }
    }
}

/// Component storage for one scalar type.
#[derive(Clone, Debug)]
pub struct Components<T> {
    layout: Layout,
    /// AoS: exactly one interleaved buffer. SoA: one buffer per component.
    buffers: Vec<Buffer<T>>,
    num_components: usize,
}

impl<T: Scalar> Components<T> {
    /// A deep, type- and layout-preserving copy whose buffers are
    /// `Shared` — a fresh `Arc` per buffer, so re-cloning the snapshot
    /// (for worker fan-out) costs a reference count, not a memcpy.
    fn snapshot(&self) -> Components<T> {
        Components {
            layout: self.layout,
            buffers: self
                .buffers
                .iter()
                .map(|b| Buffer::Shared(Arc::new(b.as_slice().to_vec())))
                .collect(),
            num_components: self.num_components,
        }
    }

    fn num_tuples(&self) -> usize {
        match self.layout {
            Layout::AoS => self.buffers[0].len() / self.num_components,
            Layout::SoA => self.buffers[0].len(),
        }
    }

    fn get(&self, tuple: usize, comp: usize) -> T {
        debug_assert!(comp < self.num_components);
        match self.layout {
            Layout::AoS => self.buffers[0].as_slice()[tuple * self.num_components + comp],
            Layout::SoA => self.buffers[comp].as_slice()[tuple],
        }
    }

    fn set(&mut self, tuple: usize, comp: usize, v: T) {
        let n = self.num_components;
        match self.layout {
            Layout::AoS => self.buffers[0].to_mut()[tuple * n + comp] = v,
            Layout::SoA => self.buffers[comp].to_mut()[tuple] = v,
        }
    }
}

/// Type-erased storage.
#[derive(Clone, Debug)]
pub enum Storage {
    F32(Components<f32>),
    F64(Components<f64>),
    I32(Components<i32>),
    I64(Components<i64>),
    U8(Components<u8>),
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            Storage::F32($c) => $body,
            Storage::F64($c) => $body,
            Storage::I32($c) => $body,
            Storage::I64($c) => $body,
            Storage::U8($c) => $body,
        }
    };
}

/// A named, typed, multi-component array — the analogue of
/// `vtkDataArray` with the paper's SoA/AoS generality.
#[derive(Clone, Debug)]
pub struct DataArray {
    name: String,
    storage: Storage,
    /// Happens-before shadow ledger (see the `sanitizer` crate).
    /// Attached only to zero-copy-capable arrays created while a
    /// sanitizer context is active; clones share the ledger, so the
    /// sanitizer follows the array's *lineage* — the logical array
    /// the simulation publishes — not one particular allocation
    /// (copy-on-write can silently fork the storage underneath).
    shadow: Option<Arc<sanitizer::Shadow>>,
    /// Which memory space the array's buffers live in. All of an
    /// array's buffers share one placement; crossing spaces is an
    /// explicit transfer ([`DataArray::move_to`] /
    /// [`DataArray::snapshot_in`]), never a silent copy.
    space: MemorySpace,
}

impl DataArray {
    /// Build an AoS array that **owns** its (possibly interleaved) data.
    pub fn owned<T: Scalar>(name: impl Into<String>, num_components: usize, data: Vec<T>) -> Self {
        assert!(num_components > 0, "need at least one component");
        assert_eq!(
            data.len() % num_components,
            0,
            "data length {} not a multiple of component count {num_components}",
            data.len()
        );
        Self::from_components(
            name,
            Components {
                layout: Layout::AoS,
                buffers: vec![Buffer::Owned(data)],
                num_components,
            },
        )
    }

    /// Build an AoS array that **shares** the simulation's storage
    /// (zero-copy; O(1) construction).
    pub fn shared<T: Scalar>(
        name: impl Into<String>,
        num_components: usize,
        data: Arc<Vec<T>>,
    ) -> Self {
        assert!(num_components > 0, "need at least one component");
        assert_eq!(
            data.len() % num_components,
            0,
            "data length {} not a multiple of component count {num_components}",
            data.len()
        );
        let mut a = Self::from_components(
            name,
            Components {
                layout: Layout::AoS,
                buffers: vec![Buffer::Shared(data)],
                num_components,
            },
        );
        if sanitizer::active() {
            a.shadow = Some(sanitizer::Shadow::new(&a.name));
        }
        a
    }

    /// Build an SoA array from one buffer per component; buffers may mix
    /// owned and shared storage but must share a length.
    pub fn soa<T: Scalar>(name: impl Into<String>, components: Vec<Buffer<T>>) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        let n = components[0].len();
        assert!(
            components.iter().all(|b| b.len() == n),
            "all SoA component buffers must have equal length"
        );
        let num_components = components.len();
        let any_shared = components.iter().any(|b| b.is_shared());
        let mut a = Self::from_components(
            name,
            Components {
                layout: Layout::SoA,
                buffers: components,
                num_components,
            },
        );
        if any_shared && sanitizer::active() {
            a.shadow = Some(sanitizer::Shadow::new(&a.name));
        }
        a
    }

    fn from_components<T: Scalar>(name: impl Into<String>, c: Components<T>) -> Self {
        let storage = match T::TYPE {
            ScalarType::F32 => Storage::F32(transmute_components(c)),
            ScalarType::F64 => Storage::F64(transmute_components(c)),
            ScalarType::I32 => Storage::I32(transmute_components(c)),
            ScalarType::I64 => Storage::I64(transmute_components(c)),
            ScalarType::U8 => Storage::U8(transmute_components(c)),
        };
        DataArray {
            name: name.into(),
            storage,
            shadow: None,
            space: MemorySpace::Host,
        }
    }

    /// Array name (field name, e.g. `"data"`, `"velocity"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the array.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The sanitizer's shadow ledger, when one is attached (zero-copy
    /// arrays created under an active sanitizer context).
    pub fn shadow(&self) -> Option<&Arc<sanitizer::Shadow>> {
        self.shadow.as_ref()
    }

    /// The memory space this array's buffers live in.
    pub fn space(&self) -> MemorySpace {
        self.space
    }

    /// Builder-style placement override (constructors default to
    /// [`MemorySpace::Host`]). Placing a freshly built array is free —
    /// no bytes existed elsewhere — so this records no transfer; use
    /// [`DataArray::move_to`] to relocate existing data.
    pub fn with_space(mut self, space: MemorySpace) -> Self {
        self.space = space;
        self
    }

    /// Payload bytes this array holds (elements only, no metadata) —
    /// what a cross-space transfer of it costs on the wire.
    pub fn payload_bytes(&self) -> usize {
        self.num_tuples() * self.num_components() * self.scalar_type().size_of()
    }

    /// Legacy-accessor space check: the untyped accessors (`get`,
    /// `set`, `typed_slice`, `component_slice`) still hand out data —
    /// simulated devices are host RAM — but an access from the wrong
    /// execution space is a missing transfer on a real machine, so it
    /// is reported to the sanitizer as a `wrong-space-access` finding.
    fn check_exec_space(&self) {
        let exec = space::current_space();
        if !self.space.accessible_from(exec) {
            sanitizer::report_wrong_space(&self.name, &self.space.label(), &exec.label());
        }
    }

    /// Move this array's bytes to `space`: an explicit, tracked
    /// transfer. Returns the payload bytes that crossed the
    /// interconnect (0 when already resident). The storage itself is
    /// untouched (simulated devices share the host's RAM); what moves
    /// is the placement the space checks enforce.
    pub fn move_to(&mut self, space: MemorySpace) -> usize {
        if self.space == space {
            return 0;
        }
        let bytes = self.payload_bytes();
        space::record_transfer(bytes);
        if let Some(shadow) = &self.shadow {
            shadow.on_transfer(&self.space.label(), &space.label());
        }
        self.space = space;
        bytes
    }

    /// Snapshot this array into `space`: a deep, type- and
    /// layout-preserving copy placed in `space`, with every buffer
    /// `Shared` so re-cloning the snapshot (double-buffered payloads,
    /// worker fan-out) costs a reference count. The explicit transfer
    /// is recorded in the process ledger and on the shadow (the
    /// transfer clock is the happens-before edge proving the device
    /// copy cannot race later host writes).
    pub fn snapshot_in(&self, space: MemorySpace) -> DataArray {
        let storage = match &self.storage {
            Storage::F32(c) => Storage::F32(c.snapshot()),
            Storage::F64(c) => Storage::F64(c.snapshot()),
            Storage::I32(c) => Storage::I32(c.snapshot()),
            Storage::I64(c) => Storage::I64(c.snapshot()),
            Storage::U8(c) => Storage::U8(c.snapshot()),
        };
        space::record_transfer(self.payload_bytes());
        if let Some(shadow) = &self.shadow {
            shadow.on_transfer(&self.space.label(), &space.label());
        }
        DataArray {
            name: self.name.clone(),
            storage,
            shadow: self.shadow.clone(),
            space,
        }
    }

    /// Space-checked typed view of a single-buffer array, for code
    /// executing in `exec` (normally [`space::current_space`]). The
    /// typed-error twin of [`DataArray::typed_slice`]: wrong-space
    /// access is an [`AccessError::WrongSpace`], not a silent copy.
    pub fn as_slice_in<T: Scalar>(&self, exec: MemorySpace) -> Result<&[T], AccessError> {
        if !self.space.accessible_from(exec) {
            return Err(AccessError::WrongSpace {
                array: self.name.clone(),
                have: self.space,
                want: exec,
            });
        }
        let c = self
            .components_ref::<T>()
            .ok_or_else(|| AccessError::TypeMismatch {
                array: self.name.clone(),
                want: std::any::type_name::<T>(),
            })?;
        if c.buffers.len() != 1 {
            return Err(AccessError::LayoutUnsupported {
                array: self.name.clone(),
                detail: "multi-buffer SoA storage has no single contiguous slice; \
                         use component_slice_in per component"
                    .to_string(),
            });
        }
        if let Some(shadow) = &self.shadow {
            shadow.on_read();
        }
        Ok(c.buffers[0].as_slice())
    }

    /// Space-checked typed view of one component buffer, for code
    /// executing in `exec`. Typed-error twin of
    /// [`DataArray::component_slice`].
    pub fn component_slice_in<T: Scalar>(
        &self,
        comp: usize,
        exec: MemorySpace,
    ) -> Result<&[T], AccessError> {
        if !self.space.accessible_from(exec) {
            return Err(AccessError::WrongSpace {
                array: self.name.clone(),
                have: self.space,
                want: exec,
            });
        }
        let c = self
            .components_ref::<T>()
            .ok_or_else(|| AccessError::TypeMismatch {
                array: self.name.clone(),
                want: std::any::type_name::<T>(),
            })?;
        if let Some(shadow) = &self.shadow {
            shadow.on_read();
        }
        let slice = match c.layout {
            Layout::SoA => c.buffers.get(comp).map(|b| b.as_slice()),
            Layout::AoS if c.num_components == 1 && comp == 0 => Some(c.buffers[0].as_slice()),
            Layout::AoS => None,
        };
        slice.ok_or_else(|| AccessError::LayoutUnsupported {
            array: self.name.clone(),
            detail: format!(
                "component {comp} of a {}-component AoS array has no contiguous slice",
                c.num_components
            ),
        })
    }

    /// Space-checked widening read of one whole component, for code
    /// executing in `exec`: the migration surface for endpoints that
    /// marshal values out of arbitrary-typed arrays (the old pattern
    /// was an unchecked `get` loop).
    pub fn values_in(&self, comp: usize, exec: MemorySpace) -> Result<Vec<f64>, AccessError> {
        if !self.space.accessible_from(exec) {
            return Err(AccessError::WrongSpace {
                array: self.name.clone(),
                have: self.space,
                want: exec,
            });
        }
        if let Some(shadow) = &self.shadow {
            shadow.on_read();
        }
        Ok((0..self.num_tuples())
            .map(|t| dispatch!(&self.storage, c => c.get(t, comp).to_f64()))
            .collect())
    }

    /// The runtime scalar type.
    pub fn scalar_type(&self) -> ScalarType {
        match &self.storage {
            Storage::F32(_) => ScalarType::F32,
            Storage::F64(_) => ScalarType::F64,
            Storage::I32(_) => ScalarType::I32,
            Storage::I64(_) => ScalarType::I64,
            Storage::U8(_) => ScalarType::U8,
        }
    }

    /// Memory layout.
    pub fn layout(&self) -> Layout {
        dispatch!(&self.storage, c => c.layout)
    }

    /// Number of components per tuple (1 = scalar field, 3 = vector…).
    pub fn num_components(&self) -> usize {
        dispatch!(&self.storage, c => c.num_components)
    }

    /// Number of tuples (points or cells).
    pub fn num_tuples(&self) -> usize {
        dispatch!(&self.storage, c => c.num_tuples())
    }

    /// True if any backing buffer is a zero-copy view.
    pub fn is_zero_copy(&self) -> bool {
        dispatch!(&self.storage, c => c.buffers.iter().any(|b| b.is_shared()))
    }

    /// Generic element access, widened to `f64`. Space-checked: an
    /// access from an execution space the array is not resident in is
    /// reported to the sanitizer (see [`DataArray::as_slice_in`] for
    /// the typed-error surface).
    pub fn get(&self, tuple: usize, comp: usize) -> f64 {
        self.check_exec_space();
        dispatch!(&self.storage, c => c.get(tuple, comp).to_f64())
    }

    /// Generic element store, narrowed from `f64` (copy-on-write for
    /// shared buffers).
    pub fn set(&mut self, tuple: usize, comp: usize, v: f64) {
        self.check_exec_space();
        if let Some(shadow) = &self.shadow {
            // Tuple-level write event: checks open publish windows and
            // the ghost rule before the store lands.
            shadow.on_write_tuple(tuple);
        }
        match &mut self.storage {
            Storage::F32(c) => c.set(tuple, comp, v as f32),
            Storage::F64(c) => c.set(tuple, comp, v),
            Storage::I32(c) => c.set(tuple, comp, v as i32),
            Storage::I64(c) => c.set(tuple, comp, v as i64),
            Storage::U8(c) => c.set(tuple, comp, v as u8),
        }
    }

    /// Direct typed view of a single-buffer array (AoS, any component
    /// count; or single-component SoA). Returns `None` on type mismatch.
    pub fn typed_slice<T: Scalar>(&self) -> Option<&[T]> {
        self.check_exec_space();
        let c = self.components_ref::<T>()?;
        if c.buffers.len() == 1 {
            if let Some(shadow) = &self.shadow {
                shadow.on_read();
            }
            Some(c.buffers[0].as_slice())
        } else {
            None
        }
    }

    /// Typed view of one SoA component buffer (or the sole AoS buffer of a
    /// 1-component array).
    pub fn component_slice<T: Scalar>(&self, comp: usize) -> Option<&[T]> {
        self.check_exec_space();
        let c = self.components_ref::<T>()?;
        if let Some(shadow) = &self.shadow {
            shadow.on_read();
        }
        match c.layout {
            Layout::SoA => c.buffers.get(comp).map(|b| b.as_slice()),
            Layout::AoS if c.num_components == 1 && comp == 0 => Some(c.buffers[0].as_slice()),
            Layout::AoS => None,
        }
    }

    fn components_ref<T: Scalar>(&self) -> Option<&Components<T>> {
        // Safety-free downcast via the type tag.
        macro_rules! try_cast {
            ($variant:ident, $ty:ty) => {
                if let Storage::$variant(c) = &self.storage {
                    if T::TYPE == <$ty as Scalar>::TYPE {
                        let ptr = c as *const Components<$ty> as *const Components<T>;
                        // SAFETY: the `ScalarType` tags match, and tags
                        // are in bijection with concrete element types,
                        // so `T` and `$ty` are the same type and the
                        // two `Components<_>` layouts are identical.
                        return Some(unsafe { &*ptr });
                    }
                }
            };
        }
        try_cast!(F32, f32);
        try_cast!(F64, f64);
        try_cast!(I32, i32);
        try_cast!(I64, i64);
        try_cast!(U8, u8);
        None
    }

    /// `(min, max)` of one component, ignoring NaNs. `None` when empty.
    pub fn range(&self, comp: usize) -> Option<(f64, f64)> {
        let n = self.num_tuples();
        if n == 0 {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in 0..n {
            let v = self.get(t, comp);
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            None
        } else {
            Some((lo, hi))
        }
    }

    /// Euclidean norm of a tuple across all components (e.g. velocity
    /// magnitude for a 3-vector field).
    pub fn tuple_magnitude(&self, tuple: usize) -> f64 {
        let nc = self.num_components();
        (0..nc)
            .map(|c| {
                let v = self.get(tuple, c);
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Iterate one component as `f64`.
    pub fn iter_component(&self, comp: usize) -> impl Iterator<Item = f64> + '_ {
        (0..self.num_tuples()).map(move |t| self.get(t, comp))
    }

    /// Materialize a deep (owned, AoS) copy of this array, resident in
    /// the same space. Reads the storage directly (not via `get`), so
    /// it carries no per-element space check of its own.
    pub fn deep_copy(&self) -> DataArray {
        let n = self.num_tuples();
        let nc = self.num_components();
        let mut out = Vec::with_capacity(n * nc);
        for t in 0..n {
            for c in 0..nc {
                out.push(dispatch!(&self.storage, s => s.get(t, c).to_f64()));
            }
        }
        let mut copy = DataArray::owned(self.name.clone(), nc, out);
        // Preserve the original element type tag where it matters for size
        // accounting; analyses operate in f64 regardless.
        copy.name = self.name.clone();
        copy.space = self.space;
        copy
    }
}

/// Reinterpret `Components<T>` as `Components<U>` when `T == U` (checked
/// by the caller via the `ScalarType` tag). Avoids `unsafe` leaking into
/// every constructor.
fn transmute_components<T: Scalar, U: Scalar>(c: Components<T>) -> Components<U> {
    assert_eq!(T::TYPE, U::TYPE);
    // SAFETY: the tag equality just asserted means `T` and `U` are the
    // same concrete type (tags are in bijection with element types),
    // so source and target are the *same* monomorphized layout.
    unsafe { std::mem::transmute::<Components<T>, Components<U>>(c) }
}

impl MemoryFootprint for DataArray {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        let buf_bytes = dispatch!(&self.storage, c => c
            .buffers
            .iter()
            .map(|b| b.heap_bytes(count_shared))
            .sum::<usize>());
        buf_bytes + self.name.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_aos_roundtrip() {
        let a = DataArray::owned("v", 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.num_tuples(), 2);
        assert_eq!(a.num_components(), 3);
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.layout(), Layout::AoS);
        assert!(!a.is_zero_copy());
    }

    #[test]
    fn shared_is_zero_copy_and_cheap() {
        let sim_field = Arc::new(vec![0.5f64; 1024]);
        let a = DataArray::shared("data", 1, Arc::clone(&sim_field));
        assert!(a.is_zero_copy());
        // No second allocation of the payload: strong count is 2.
        assert_eq!(Arc::strong_count(&sim_field), 2);
        assert_eq!(a.get(1023, 0), 0.5);
        // Own footprint excludes shared bytes; total includes them.
        assert_eq!(a.heap_bytes(false), a.name().len());
        assert!(a.heap_bytes(true) >= 1024 * 8);
    }

    #[test]
    fn soa_component_access() {
        let x = Buffer::Owned(vec![1.0f32, 2.0]);
        let y = Buffer::Owned(vec![10.0f32, 20.0]);
        let a = DataArray::soa("xy", vec![x, y]);
        assert_eq!(a.layout(), Layout::SoA);
        assert_eq!(a.num_components(), 2);
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(0, 1), 10.0);
        assert_eq!(a.component_slice::<f32>(1), Some(&[10.0f32, 20.0][..]));
    }

    #[test]
    fn soa_can_mix_shared_and_owned() {
        let sim = Arc::new(vec![7.0f64; 4]);
        let a = DataArray::soa(
            "mix",
            vec![
                Buffer::Shared(Arc::clone(&sim)),
                Buffer::Owned(vec![0.0; 4]),
            ],
        );
        assert!(a.is_zero_copy());
        assert_eq!(a.get(3, 0), 7.0);
        assert_eq!(a.get(3, 1), 0.0);
    }

    #[test]
    fn copy_on_write_preserves_simulation_data() {
        let sim = Arc::new(vec![1.0f64, 2.0]);
        let mut a = DataArray::shared("d", 1, Arc::clone(&sim));
        a.set(0, 0, 99.0);
        assert_eq!(a.get(0, 0), 99.0);
        // Simulation's buffer untouched.
        assert_eq!(sim[0], 1.0);
        assert!(!a.is_zero_copy());
    }

    #[test]
    fn typed_slice_requires_matching_type() {
        let a = DataArray::owned("i", 1, vec![1i32, 2, 3]);
        assert!(a.typed_slice::<i32>().is_some());
        assert!(a.typed_slice::<f64>().is_none());
    }

    #[test]
    fn range_ignores_nan() {
        let a = DataArray::owned("r", 1, vec![3.0f64, f64::NAN, -1.0, 2.0]);
        assert_eq!(a.range(0), Some((-1.0, 3.0)));
    }

    #[test]
    fn range_of_empty_is_none() {
        let a = DataArray::owned("e", 1, Vec::<f64>::new());
        assert_eq!(a.range(0), None);
        assert_eq!(a.num_tuples(), 0);
    }

    #[test]
    fn tuple_magnitude_is_euclidean() {
        let a = DataArray::owned("v", 3, vec![3.0f64, 4.0, 0.0]);
        assert!((a.tuple_magnitude(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deep_copy_detaches() {
        let sim = Arc::new(vec![1.0f64, 2.0]);
        let a = DataArray::shared("d", 1, sim);
        let b = a.deep_copy();
        assert!(!b.is_zero_copy());
        assert_eq!(b.get(1, 0), 2.0);
    }

    #[test]
    fn u8_ghost_style_array() {
        let a = DataArray::owned("vtkGhostType", 1, vec![0u8, 1, 0]);
        assert_eq!(a.scalar_type(), ScalarType::U8);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn arrays_default_to_host_space() {
        let a = DataArray::owned("u", 1, vec![1.0f64, 2.0]);
        assert_eq!(a.space(), MemorySpace::Host);
        assert_eq!(a.as_slice_in::<f64>(MemorySpace::Host), Ok(&[1.0, 2.0][..]));
    }

    #[test]
    fn wrong_space_access_is_a_typed_error() {
        let a = DataArray::owned("u", 1, vec![1.0f64, 2.0]);
        match a.as_slice_in::<f64>(MemorySpace::DeviceSim(0)) {
            Err(AccessError::WrongSpace { array, have, want }) => {
                assert_eq!(array, "u");
                assert_eq!(have, MemorySpace::Host);
                assert_eq!(want, MemorySpace::DeviceSim(0));
            }
            other => panic!("expected WrongSpace, got {other:?}"),
        }
        assert!(a.values_in(0, MemorySpace::DeviceSim(1)).is_err());
        assert!(a
            .component_slice_in::<f64>(0, MemorySpace::DeviceSim(0))
            .is_err());
    }

    #[test]
    fn shared_space_is_reachable_from_any_exec_space() {
        let a = DataArray::owned("pinned", 1, vec![3.0f64]).with_space(MemorySpace::Shared);
        assert!(a.as_slice_in::<f64>(MemorySpace::Host).is_ok());
        assert!(a.as_slice_in::<f64>(MemorySpace::DeviceSim(7)).is_ok());
    }

    #[test]
    fn as_slice_in_reports_type_and_layout_errors() {
        let a = DataArray::owned("i", 1, vec![1i32, 2]);
        assert!(matches!(
            a.as_slice_in::<f64>(MemorySpace::Host),
            Err(AccessError::TypeMismatch { .. })
        ));
        let s = DataArray::soa(
            "xy",
            vec![Buffer::Owned(vec![1.0f64]), Buffer::Owned(vec![2.0f64])],
        );
        assert!(matches!(
            s.as_slice_in::<f64>(MemorySpace::Host),
            Err(AccessError::LayoutUnsupported { .. })
        ));
        assert_eq!(
            s.component_slice_in::<f64>(1, MemorySpace::Host),
            Ok(&[2.0f64][..])
        );
    }

    #[test]
    fn move_to_is_a_tracked_transfer() {
        let mut a = DataArray::owned("u", 1, vec![0.0f64; 16]);
        assert_eq!(a.move_to(MemorySpace::Host), 0, "already resident");
        let moved = a.move_to(MemorySpace::DeviceSim(0));
        assert_eq!(moved, 16 * 8);
        assert_eq!(a.space(), MemorySpace::DeviceSim(0));
        assert!(a.as_slice_in::<f64>(MemorySpace::Host).is_err());
        assert!(a.as_slice_in::<f64>(MemorySpace::DeviceSim(0)).is_ok());
    }

    #[test]
    fn snapshot_in_preserves_type_and_is_cheap_to_reclone() {
        let a = DataArray::owned("g", 1, vec![0u8, 1, 2]);
        let snap = a.snapshot_in(MemorySpace::DeviceSim(0));
        assert_eq!(snap.scalar_type(), ScalarType::U8);
        assert_eq!(snap.space(), MemorySpace::DeviceSim(0));
        assert!(snap.is_zero_copy(), "snapshot buffers are Shared");
        // Re-cloning shares the snapshot's Arc — no further copy.
        let again = snap.clone();
        assert_eq!(
            again.as_slice_in::<u8>(MemorySpace::DeviceSim(0)),
            Ok(&[0u8, 1, 2][..])
        );
        // The original stays put.
        assert_eq!(a.space(), MemorySpace::Host);
    }

    #[test]
    fn values_in_widens_one_component() {
        let a = DataArray::owned("v", 2, vec![1i64, 10, 2, 20]);
        assert_eq!(a.values_in(1, MemorySpace::Host), Ok(vec![10.0, 20.0]));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_component_count_panics() {
        let _ = DataArray::owned("v", 3, vec![1.0f64; 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_soa_panics() {
        let _ = DataArray::soa(
            "bad",
            vec![Buffer::Owned(vec![1.0f64]), Buffer::Owned(vec![1.0, 2.0])],
        );
    }
}
