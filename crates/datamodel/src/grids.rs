//! Structured mesh types: uniform [`ImageData`] and [`RectilinearGrid`].

use crate::array::DataArray;
use crate::attributes::Attributes;
use crate::extent::Extent;
use crate::MemoryFootprint;

/// A uniform structured grid (`vtkImageData`): points at
/// `origin + index * spacing` over a local [`Extent`] of a global grid.
///
/// This is the mesh type of the oscillator miniapp and AVF-LESLIE.
#[derive(Clone, Debug)]
pub struct ImageData {
    /// This rank's (possibly ghosted) extent.
    pub extent: Extent,
    /// The whole problem's extent.
    pub global_extent: Extent,
    /// Physical coordinates of global point (0,0,0).
    pub origin: [f64; 3],
    /// Physical distance between adjacent points per axis.
    pub spacing: [f64; 3],
    /// Arrays defined on points.
    pub point_data: Attributes,
    /// Arrays defined on cells.
    pub cell_data: Attributes,
}

impl ImageData {
    /// A grid over `extent` within `global_extent`, unit spacing at the
    /// origin by default.
    pub fn new(extent: Extent, global_extent: Extent) -> Self {
        assert!(
            global_extent.intersect(&extent) == Some(extent),
            "local extent {extent:?} not contained in global {global_extent:?}"
        );
        ImageData {
            extent,
            global_extent,
            origin: [0.0; 3],
            spacing: [1.0; 3],
            point_data: Attributes::new(),
            cell_data: Attributes::new(),
        }
    }

    /// Set physical origin and spacing.
    pub fn with_geometry(mut self, origin: [f64; 3], spacing: [f64; 3]) -> Self {
        assert!(spacing.iter().all(|&s| s > 0.0), "spacing must be positive");
        self.origin = origin;
        self.spacing = spacing;
        self
    }

    /// Physical coordinates of a global point index.
    pub fn point_coords(&self, p: [i64; 3]) -> [f64; 3] {
        [
            self.origin[0] + p[0] as f64 * self.spacing[0],
            self.origin[1] + p[1] as f64 * self.spacing[1],
            self.origin[2] + p[2] as f64 * self.spacing[2],
        ]
    }

    /// Number of local points.
    pub fn num_points(&self) -> usize {
        self.extent.num_points()
    }

    /// Number of local cells.
    pub fn num_cells(&self) -> usize {
        self.extent.num_cells()
    }

    /// Attach a point array, validating its tuple count.
    pub fn add_point_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_points(),
            "point array '{}' has {} tuples, grid has {} points",
            array.name(),
            array.num_tuples(),
            self.num_points()
        );
        self.point_data.insert(array);
    }

    /// Attach a cell array, validating its tuple count.
    pub fn add_cell_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_cells(),
            "cell array '{}' has {} tuples, grid has {} cells",
            array.name(),
            array.num_tuples(),
            self.num_cells()
        );
        self.cell_data.insert(array);
    }
}

impl MemoryFootprint for ImageData {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        self.point_data.heap_bytes(count_shared) + self.cell_data.heap_bytes(count_shared)
    }
}

/// A rectilinear grid (`vtkRectilinearGrid`): axis-aligned with per-axis
/// coordinate arrays. Nyx's BoxLib boxes map here.
#[derive(Clone, Debug)]
pub struct RectilinearGrid {
    /// This rank's extent.
    pub extent: Extent,
    /// The whole problem's extent.
    pub global_extent: Extent,
    /// Point coordinates along x, length = local point dims\[0\].
    pub x: Vec<f64>,
    /// Point coordinates along y.
    pub y: Vec<f64>,
    /// Point coordinates along z.
    pub z: Vec<f64>,
    /// Arrays defined on points.
    pub point_data: Attributes,
    /// Arrays defined on cells.
    pub cell_data: Attributes,
}

impl RectilinearGrid {
    /// Build from explicit per-axis coordinates. Coordinates must be
    /// strictly increasing and sized to the extent.
    pub fn new(
        extent: Extent,
        global_extent: Extent,
        x: Vec<f64>,
        y: Vec<f64>,
        z: Vec<f64>,
    ) -> Self {
        let d = extent.point_dims();
        assert_eq!(
            x.len(),
            d[0],
            "x coords sized {} for {} points",
            x.len(),
            d[0]
        );
        assert_eq!(
            y.len(),
            d[1],
            "y coords sized {} for {} points",
            y.len(),
            d[1]
        );
        assert_eq!(
            z.len(),
            d[2],
            "z coords sized {} for {} points",
            z.len(),
            d[2]
        );
        for c in [&x, &y, &z] {
            assert!(
                c.windows(2).all(|w| w[1] > w[0]),
                "coordinates must be strictly increasing"
            );
        }
        RectilinearGrid {
            extent,
            global_extent,
            x,
            y,
            z,
            point_data: Attributes::new(),
            cell_data: Attributes::new(),
        }
    }

    /// Uniformly spaced coordinates (convenience for Nyx-style boxes).
    pub fn uniform(
        extent: Extent,
        global_extent: Extent,
        origin: [f64; 3],
        spacing: [f64; 3],
    ) -> Self {
        let gen = |axis: usize| {
            (extent.lo[axis]..=extent.hi[axis])
                .map(|i| origin[axis] + i as f64 * spacing[axis])
                .collect::<Vec<_>>()
        };
        Self::new(extent, global_extent, gen(0), gen(1), gen(2))
    }

    /// Number of local points.
    pub fn num_points(&self) -> usize {
        self.extent.num_points()
    }

    /// Number of local cells.
    pub fn num_cells(&self) -> usize {
        self.extent.num_cells()
    }

    /// Attach a cell array, validating its tuple count.
    pub fn add_cell_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_cells(),
            "cell array '{}' has {} tuples, grid has {} cells",
            array.name(),
            array.num_tuples(),
            self.num_cells()
        );
        self.cell_data.insert(array);
    }

    /// Attach a point array, validating its tuple count.
    pub fn add_point_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_points(),
            "point array '{}' has {} tuples, grid has {} points",
            array.name(),
            array.num_tuples(),
            self.num_points()
        );
        self.point_data.insert(array);
    }
}

impl MemoryFootprint for RectilinearGrid {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        (self.x.capacity() + self.y.capacity() + self.z.capacity()) * 8
            + self.point_data.heap_bytes(count_shared)
            + self.cell_data.heap_bytes(count_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataArray;

    #[test]
    fn image_data_geometry() {
        let g = ImageData::new(Extent::whole([3, 3, 3]), Extent::whole([3, 3, 3]))
            .with_geometry([1.0, 2.0, 3.0], [0.5, 0.5, 2.0]);
        assert_eq!(g.point_coords([2, 0, 1]), [2.0, 2.0, 5.0]);
        assert_eq!(g.num_points(), 27);
        assert_eq!(g.num_cells(), 8);
    }

    #[test]
    fn image_data_subextent() {
        let global = Extent::whole([10, 10, 10]);
        let local = Extent::new([5, 0, 0], [9, 9, 9]);
        let g = ImageData::new(local, global);
        assert_eq!(g.num_points(), 5 * 10 * 10);
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn local_outside_global_panics() {
        let _ = ImageData::new(Extent::whole([20, 10, 10]), Extent::whole([10, 10, 10]));
    }

    #[test]
    #[should_panic(expected = "has 5 tuples")]
    fn wrong_sized_point_array_panics() {
        let mut g = ImageData::new(Extent::whole([2, 2, 2]), Extent::whole([2, 2, 2]));
        g.add_point_array(DataArray::owned("d", 1, vec![0.0f64; 5]));
    }

    #[test]
    fn rectilinear_uniform_matches_spacing() {
        let e = Extent::new([2, 0, 0], [4, 1, 1]);
        let g = RectilinearGrid::uniform(e, Extent::whole([5, 2, 2]), [0.0; 3], [0.25, 1.0, 1.0]);
        assert_eq!(g.x, vec![0.5, 0.75, 1.0]);
        assert_eq!(g.num_cells(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_coords_panic() {
        let e = Extent::whole([3, 1, 1]);
        let _ = RectilinearGrid::new(e, e, vec![0.0, 2.0, 1.0], vec![0.0], vec![0.0]);
    }
}
