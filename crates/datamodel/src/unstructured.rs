//! Unstructured grids (`vtkUnstructuredGrid`): explicit points plus a
//! connectivity/offsets cell description. PHASTA's finite-element meshes
//! map here; the paper notes nodal coordinates and fields map zero-copy
//! while connectivity is a full copy — both paths are expressible.

use crate::array::DataArray;
use crate::attributes::Attributes;
use crate::MemoryFootprint;

/// Supported cell shapes (VTK type ids).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum CellType {
    /// 3-node triangle (VTK 5).
    Triangle = 5,
    /// 4-node quad (VTK 9).
    Quad = 9,
    /// 4-node tetrahedron (VTK 10).
    Tetra = 10,
    /// 8-node hexahedron (VTK 12).
    Hexahedron = 12,
}

impl CellType {
    /// Nodes per cell of this shape.
    pub fn num_points(self) -> usize {
        match self {
            CellType::Triangle => 3,
            CellType::Quad => 4,
            CellType::Tetra => 4,
            CellType::Hexahedron => 8,
        }
    }
}

/// An unstructured mesh: points (3-component array, possibly zero-copy),
/// flat connectivity with per-cell offsets, and per-cell types.
#[derive(Clone, Debug)]
pub struct UnstructuredGrid {
    /// Point coordinates, 3 components per tuple.
    pub points: DataArray,
    /// Flat point-index list for all cells.
    pub connectivity: Vec<i64>,
    /// `offsets[c]..offsets[c+1]` indexes `connectivity` for cell `c`;
    /// length = num_cells + 1, starts at 0.
    pub offsets: Vec<usize>,
    /// Shape of each cell; length = num_cells.
    pub cell_types: Vec<CellType>,
    /// Arrays defined on points.
    pub point_data: Attributes,
    /// Arrays defined on cells.
    pub cell_data: Attributes,
}

impl UnstructuredGrid {
    /// Assemble and validate a mesh.
    ///
    /// # Panics
    /// Panics when offsets are malformed, a cell's node count disagrees
    /// with its type, or connectivity references nonexistent points.
    pub fn new(
        points: DataArray,
        connectivity: Vec<i64>,
        offsets: Vec<usize>,
        cell_types: Vec<CellType>,
    ) -> Self {
        assert_eq!(points.num_components(), 3, "points must have 3 components");
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert_eq!(
            offsets.len(),
            cell_types.len() + 1,
            "offsets length must be num_cells + 1"
        );
        assert_eq!(
            offsets[cell_types.len()],
            connectivity.len(),
            "last offset must equal connectivity length"
        );
        let np = points.num_tuples() as i64;
        for (c, ty) in cell_types.iter().enumerate() {
            let span = offsets[c + 1] - offsets[c];
            assert_eq!(
                span,
                ty.num_points(),
                "cell {c} of type {ty:?} has {span} nodes"
            );
        }
        assert!(
            connectivity.iter().all(|&p| p >= 0 && p < np),
            "connectivity references out-of-range point"
        );
        UnstructuredGrid {
            points,
            connectivity,
            offsets,
            cell_types,
            point_data: Attributes::new(),
            cell_data: Attributes::new(),
        }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.points.num_tuples()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_types.len()
    }

    /// The point indices of cell `c`.
    pub fn cell_points(&self, c: usize) -> &[i64] {
        &self.connectivity[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Physical coordinates of point `p`.
    pub fn point_coords(&self, p: usize) -> [f64; 3] {
        [
            self.points.get(p, 0),
            self.points.get(p, 1),
            self.points.get(p, 2),
        ]
    }

    /// Attach a point array, validating its tuple count.
    pub fn add_point_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_points(),
            "point array '{}' tuple count mismatch",
            array.name()
        );
        self.point_data.insert(array);
    }

    /// Attach a cell array, validating its tuple count.
    pub fn add_cell_array(&mut self, array: DataArray) {
        assert_eq!(
            array.num_tuples(),
            self.num_cells(),
            "cell array '{}' tuple count mismatch",
            array.name()
        );
        self.cell_data.insert(array);
    }

    /// Centroid of cell `c` (mean of its node coordinates).
    pub fn cell_centroid(&self, c: usize) -> [f64; 3] {
        let pts = self.cell_points(c);
        let mut acc = [0.0f64; 3];
        for &p in pts {
            let x = self.point_coords(p as usize);
            for a in 0..3 {
                acc[a] += x[a];
            }
        }
        let n = pts.len() as f64;
        [acc[0] / n, acc[1] / n, acc[2] / n]
    }
}

impl MemoryFootprint for UnstructuredGrid {
    fn heap_bytes(&self, count_shared: bool) -> usize {
        self.points.heap_bytes(count_shared)
            + self.connectivity.capacity() * 8
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.cell_types.capacity()
            + self.point_data.heap_bytes(count_shared)
            + self.cell_data.heap_bytes(count_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn two_tets() -> UnstructuredGrid {
        // 5 points, 2 tetrahedra sharing a face.
        let pts = vec![
            0.0, 0.0, 0.0, //
            1.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0, //
            1.0, 1.0, 1.0,
        ];
        UnstructuredGrid::new(
            DataArray::owned("points", 3, pts),
            vec![0, 1, 2, 3, 1, 2, 3, 4],
            vec![0, 4, 8],
            vec![CellType::Tetra, CellType::Tetra],
        )
    }

    #[test]
    fn construction_and_access() {
        let g = two_tets();
        assert_eq!(g.num_points(), 5);
        assert_eq!(g.num_cells(), 2);
        assert_eq!(g.cell_points(1), &[1, 2, 3, 4]);
        assert_eq!(g.point_coords(4), [1.0, 1.0, 1.0]);
    }

    #[test]
    fn centroid_of_unit_tet() {
        let g = two_tets();
        let c = g.cell_centroid(0);
        assert!((c[0] - 0.25).abs() < 1e-12);
        assert!((c[1] - 0.25).abs() < 1e-12);
        assert!((c[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_copy_points_shared_with_simulation() {
        let coords = Arc::new(vec![0.0f64; 15]);
        let g = UnstructuredGrid::new(
            DataArray::shared("points", 3, Arc::clone(&coords)),
            vec![0, 1, 2, 3],
            vec![0, 4],
            vec![CellType::Tetra],
        );
        assert!(g.points.is_zero_copy());
        assert_eq!(Arc::strong_count(&coords), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range point")]
    fn bad_connectivity_panics() {
        let _ = UnstructuredGrid::new(
            DataArray::owned("points", 3, vec![0.0f64; 9]),
            vec![0, 1, 5],
            vec![0, 3],
            vec![CellType::Triangle],
        );
    }

    #[test]
    #[should_panic(expected = "has 3 nodes")]
    fn type_span_mismatch_panics() {
        let _ = UnstructuredGrid::new(
            DataArray::owned("points", 3, vec![0.0f64; 12]),
            vec![0, 1, 2],
            vec![0, 3],
            vec![CellType::Tetra],
        );
    }

    #[test]
    fn cell_type_node_counts() {
        assert_eq!(CellType::Triangle.num_points(), 3);
        assert_eq!(CellType::Quad.num_points(), 4);
        assert_eq!(CellType::Tetra.num_points(), 4);
        assert_eq!(CellType::Hexahedron.num_points(), 8);
    }
}
