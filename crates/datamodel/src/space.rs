//! Explicit memory spaces for the data path.
//!
//! The SC16 cost model treats "where the bytes live" as a first-class
//! design axis: synchronous in situ work reads simulation memory in
//! place, while asynchronous offload requires an explicit, paid-for
//! copy to the analysis processor's memory. The SENSEI heterogeneous
//! extensions make that placement explicit in the API, and this module
//! is the workspace's equivalent: every [`crate::DataArray`] carries a
//! [`MemorySpace`], accessors are checked against the *execution
//! space* of the calling code, and crossing spaces is an explicit,
//! tracked transfer — never a silent copy.
//!
//! Execution spaces are modeled with a thread-local: the rank thread
//! runs in [`MemorySpace::Host`] unless a scope [`enter_space`]s a
//! device (the analogue of launching a kernel), and the offload
//! executor's workers enter their device space for the duration of an
//! analysis. Since simulated devices are host RAM, a wrong-space
//! access still *works* mechanically — the typed error path
//! ([`crate::DataArray::as_slice_in`]) refuses it, and the legacy
//! accessors report it to the happens-before sanitizer so a missing
//! transfer is caught as a finding rather than a silent slowdown on a
//! real machine.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where an array's bytes (or a thread's execution) live.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MemorySpace {
    /// Simulation (CPU) memory — the default for every array.
    Host,
    /// Memory of simulated analysis device `id` (the offload
    /// executor's workers; stands in for a GPU or a dedicated
    /// analysis socket).
    DeviceSim(u32),
    /// Host-pinned / unified memory reachable from every space
    /// without a transfer.
    Shared,
}

impl MemorySpace {
    /// Can data living in `self` be touched by code executing in
    /// `exec` without a transfer?
    pub fn accessible_from(self, exec: MemorySpace) -> bool {
        match (self, exec) {
            (MemorySpace::Shared, _) | (_, MemorySpace::Shared) => true,
            (a, b) => a == b,
        }
    }

    /// Short stable label (probe keys, findings, error messages).
    pub fn label(self) -> String {
        match self {
            MemorySpace::Host => "host".to_string(),
            MemorySpace::DeviceSim(id) => format!("device{id}"),
            MemorySpace::Shared => "shared".to_string(),
        }
    }
}

impl fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Typed failure of a space-checked accessor. Converted into
/// `sensei::AdaptorError::WrongSpace` at the adaptor boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// The array's bytes are not reachable from the declared
    /// execution space; an explicit [`crate::DataArray::move_to`] or
    /// [`crate::DataArray::snapshot_in`] is required first.
    WrongSpace {
        /// Array name.
        array: String,
        /// Where the bytes live.
        have: MemorySpace,
        /// The execution space that tried to touch them.
        want: MemorySpace,
    },
    /// The array's scalar type does not match the requested view type.
    TypeMismatch {
        /// Array name.
        array: String,
        /// Requested element type.
        want: &'static str,
    },
    /// The array's layout cannot be viewed as one contiguous slice
    /// (e.g. multi-buffer SoA through `as_slice_in`).
    LayoutUnsupported {
        /// Array name.
        array: String,
        /// What was attempted.
        detail: String,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::WrongSpace { array, have, want } => write!(
                f,
                "array '{array}' lives in {have} but was accessed from {want}; \
                 move_to/snapshot_in must make the transfer explicit"
            ),
            AccessError::TypeMismatch { array, want } => {
                write!(f, "array '{array}' does not store {want} elements")
            }
            AccessError::LayoutUnsupported { array, detail } => {
                write!(f, "array '{array}': {detail}")
            }
        }
    }
}

impl std::error::Error for AccessError {}

thread_local! {
    /// The execution space of the current thread. Rank threads run on
    /// the host; the offload executor's workers (and host-launched
    /// device phases) enter their device space via [`enter_space`].
    static EXEC_SPACE: Cell<MemorySpace> = const { Cell::new(MemorySpace::Host) };
}

/// The execution space of the calling thread.
pub fn current_space() -> MemorySpace {
    EXEC_SPACE.with(|c| c.get())
}

/// Enter `space` for the current scope (RAII; restores the previous
/// space on drop). Nested entries behave like a stack.
pub fn enter_space(space: MemorySpace) -> SpaceGuard {
    let prev = EXEC_SPACE.with(|c| c.replace(space));
    SpaceGuard { prev }
}

/// Restores the previous execution space on drop; see [`enter_space`].
pub struct SpaceGuard {
    prev: MemorySpace,
}

impl Drop for SpaceGuard {
    fn drop(&mut self) {
        EXEC_SPACE.with(|c| c.set(self.prev));
    }
}

// Process-wide transfer ledger. The offload bench and tests read it to
// assert that every byte crossing spaces was paid for explicitly; the
// per-run probe counters (`space/h2d_bytes` etc.) carry the same
// information into the RunReport.
static TRANSFER_COUNT: AtomicU64 = AtomicU64::new(0);
static TRANSFER_BYTES: AtomicU64 = AtomicU64::new(0);

/// Record one explicit cross-space transfer of `bytes` payload bytes.
pub fn record_transfer(bytes: usize) {
    TRANSFER_COUNT.fetch_add(1, Ordering::Relaxed);
    TRANSFER_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Process-wide `(transfer count, payload bytes)` since start (or the
/// last [`reset_transfer_totals`]).
pub fn transfer_totals() -> (u64, u64) {
    (
        TRANSFER_COUNT.load(Ordering::Relaxed),
        TRANSFER_BYTES.load(Ordering::Relaxed),
    )
}

/// Zero the process-wide transfer ledger (bench setup).
pub fn reset_transfer_totals() {
    TRANSFER_COUNT.store(0, Ordering::Relaxed);
    TRANSFER_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_is_reachable_from_everywhere() {
        for exec in [
            MemorySpace::Host,
            MemorySpace::DeviceSim(0),
            MemorySpace::DeviceSim(3),
        ] {
            assert!(MemorySpace::Shared.accessible_from(exec));
            assert!(exec.accessible_from(MemorySpace::Shared));
        }
    }

    #[test]
    fn host_and_device_are_disjoint() {
        assert!(MemorySpace::Host.accessible_from(MemorySpace::Host));
        assert!(!MemorySpace::Host.accessible_from(MemorySpace::DeviceSim(0)));
        assert!(!MemorySpace::DeviceSim(0).accessible_from(MemorySpace::Host));
        assert!(!MemorySpace::DeviceSim(0).accessible_from(MemorySpace::DeviceSim(1)));
        assert!(MemorySpace::DeviceSim(1).accessible_from(MemorySpace::DeviceSim(1)));
    }

    #[test]
    fn enter_space_nests_and_restores() {
        assert_eq!(current_space(), MemorySpace::Host);
        {
            let _d0 = enter_space(MemorySpace::DeviceSim(0));
            assert_eq!(current_space(), MemorySpace::DeviceSim(0));
            {
                let _sh = enter_space(MemorySpace::Shared);
                assert_eq!(current_space(), MemorySpace::Shared);
            }
            assert_eq!(current_space(), MemorySpace::DeviceSim(0));
        }
        assert_eq!(current_space(), MemorySpace::Host);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MemorySpace::Host.label(), "host");
        assert_eq!(MemorySpace::DeviceSim(2).label(), "device2");
        assert_eq!(MemorySpace::Shared.label(), "shared");
        assert_eq!(format!("{}", MemorySpace::DeviceSim(0)), "device0");
    }

    #[test]
    fn wrong_space_error_names_both_spaces() {
        let e = AccessError::WrongSpace {
            array: "u".into(),
            have: MemorySpace::Host,
            want: MemorySpace::DeviceSim(0),
        };
        let s = e.to_string();
        assert!(s.contains("'u'"), "{s}");
        assert!(s.contains("host"), "{s}");
        assert!(s.contains("device0"), "{s}");
    }
}
