//! # libsim — a VisIt Libsim-like in situ infrastructure
//!
//! Libsim exposes VisIt's plotting machinery to running simulations,
//! configured by **session files** saved from the VisIt GUI. This crate
//! reproduces the workload the paper exercises:
//!
//! * a [`session`] file format (a stand-in for VisIt's XML sessions)
//!   describing plots — pseudocolor slices and isosurface levels — plus
//!   image size and render frequency (AVF-LESLIE rendered every 5th
//!   step);
//! * a render engine driving the shared `render` stack with Libsim's
//!   parameters: 1600×1600 images and **direct-send tree** compositing
//!   (a different algorithm family than Catalyst, per the Fig. 6
//!   observation);
//! * the per-rank configuration-file check at startup whose
//!   metadata-server serialization produced the ~3.5 s init cost at 45K
//!   ranks called out in Fig. 5 — performed here as a real filesystem
//!   `stat` per rank;
//! * a SENSEI [`sensei::AnalysisAdaptor`] wrapper ([`LibsimAnalysis`]).

pub mod engine;
pub mod session;

pub use engine::LibsimAnalysis;
pub use session::{Plot, Session, SessionError};

/// Libsim's output resolution in the paper's miniapp study.
pub const DEFAULT_IMAGE: (usize, usize) = (1600, 1600);
