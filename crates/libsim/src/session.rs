//! Session files: the "XML files saved from the VisIt GUI" that Libsim
//! uses to set up complex visualizations without code changes (§2.2.3).
//! This stand-in uses a line-oriented format:
//!
//! ```text
//! image 1600 1600
//! frequency 5
//! plot pseudocolor vorticity axis=z index=512
//! plot isosurface vorticity levels=0.2,0.5,0.8
//! ```

/// One plot in a session.
#[derive(Clone, Debug, PartialEq)]
pub enum Plot {
    /// Pseudocolor slice of a point array.
    Pseudocolor {
        /// Array name.
        array: String,
        /// Sliced axis.
        axis: usize,
        /// Global point index of the plane.
        index: i64,
    },
    /// Isosurfaces of a point array at relative levels (fractions of the
    /// data range in `(0, 1)`).
    Isosurface {
        /// Array name.
        array: String,
        /// Relative isovalue levels.
        levels: Vec<f64>,
    },
}

/// A parsed session.
#[derive(Clone, Debug, PartialEq)]
pub struct Session {
    /// Output image size.
    pub image: (usize, usize),
    /// Render every Nth step.
    pub frequency: u64,
    /// Plots, in order.
    pub plots: Vec<Plot>,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            image: crate::DEFAULT_IMAGE,
            frequency: 1,
            plots: Vec::new(),
        }
    }
}

/// Session parse errors.
#[derive(Debug, PartialEq)]
pub enum SessionError {
    /// Unknown directive.
    UnknownDirective { line: usize, word: String },
    /// A directive had malformed arguments.
    BadArguments { line: usize, detail: String },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownDirective { line, word } => {
                write!(f, "line {line}: unknown directive '{word}'")
            }
            SessionError::BadArguments { line, detail } => {
                write!(f, "line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl Session {
    /// Parse session text.
    pub fn parse(text: &str) -> Result<Session, SessionError> {
        let mut s = Session::default();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let bad = |detail: &str| SessionError::BadArguments {
                line: lineno,
                detail: detail.to_string(),
            };
            match words[0] {
                "image" => {
                    if words.len() != 3 {
                        return Err(bad("image takes width and height"));
                    }
                    let w = words[1].parse().map_err(|_| bad("bad width"))?;
                    let h = words[2].parse().map_err(|_| bad("bad height"))?;
                    if w == 0 || h == 0 {
                        return Err(bad("image must be non-degenerate"));
                    }
                    s.image = (w, h);
                }
                "frequency" => {
                    if words.len() != 2 {
                        return Err(bad("frequency takes one integer"));
                    }
                    s.frequency = words[1].parse().map_err(|_| bad("bad frequency"))?;
                    if s.frequency == 0 {
                        return Err(bad("frequency must be >= 1"));
                    }
                }
                "plot" => {
                    if words.len() < 3 {
                        return Err(bad("plot takes a kind and an array"));
                    }
                    let array = words[2].to_string();
                    let kv = |key: &str| -> Option<&str> {
                        words[3..]
                            .iter()
                            .find_map(|w| w.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                    };
                    match words[1] {
                        "pseudocolor" => {
                            let axis = match kv("axis").unwrap_or("z") {
                                "x" => 0,
                                "y" => 1,
                                "z" => 2,
                                other => {
                                    return Err(bad(&format!("bad axis '{other}'")));
                                }
                            };
                            let index = kv("index")
                                .unwrap_or("0")
                                .parse()
                                .map_err(|_| bad("bad index"))?;
                            s.plots.push(Plot::Pseudocolor { array, axis, index });
                        }
                        "isosurface" => {
                            let levels_str = kv("levels").ok_or_else(|| bad("needs levels="))?;
                            let mut levels = Vec::new();
                            for part in levels_str.split(',') {
                                let v: f64 = part.parse().map_err(|_| bad("bad level value"))?;
                                if !(0.0..=1.0).contains(&v) {
                                    return Err(bad("levels are fractions in [0,1]"));
                                }
                                levels.push(v);
                            }
                            if levels.is_empty() {
                                return Err(bad("needs at least one level"));
                            }
                            s.plots.push(Plot::Isosurface { array, levels });
                        }
                        other => {
                            return Err(SessionError::UnknownDirective {
                                line: lineno,
                                word: format!("plot {other}"),
                            })
                        }
                    }
                }
                other => {
                    return Err(SessionError::UnknownDirective {
                        line: lineno,
                        word: other.to_string(),
                    })
                }
            }
        }
        Ok(s)
    }

    /// The AVF-LESLIE session of §4.2.2: 3 isosurfaces + 3 slice planes
    /// of vorticity magnitude, rendered every 5th step.
    pub fn leslie_tml(array: &str) -> Session {
        Session {
            image: crate::DEFAULT_IMAGE,
            frequency: 5,
            plots: vec![
                Plot::Isosurface {
                    array: array.to_string(),
                    levels: vec![0.25, 0.5, 0.75],
                },
                Plot::Pseudocolor {
                    array: array.to_string(),
                    axis: 0,
                    index: 0,
                },
                Plot::Pseudocolor {
                    array: array.to_string(),
                    axis: 1,
                    index: 0,
                },
                Plot::Pseudocolor {
                    array: array.to_string(),
                    axis: 2,
                    index: 0,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_session() {
        let s = Session::parse(
            "# comment\nimage 800 600\nfrequency 5\nplot pseudocolor data axis=y index=12\nplot isosurface vort levels=0.2,0.8\n",
        )
        .unwrap();
        assert_eq!(s.image, (800, 600));
        assert_eq!(s.frequency, 5);
        assert_eq!(s.plots.len(), 2);
        assert_eq!(
            s.plots[0],
            Plot::Pseudocolor {
                array: "data".into(),
                axis: 1,
                index: 12
            }
        );
        assert_eq!(
            s.plots[1],
            Plot::Isosurface {
                array: "vort".into(),
                levels: vec![0.2, 0.8]
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let s = Session::parse("plot pseudocolor data\n").unwrap();
        assert_eq!(s.image, crate::DEFAULT_IMAGE);
        assert_eq!(s.frequency, 1);
        assert_eq!(
            s.plots[0],
            Plot::Pseudocolor {
                array: "data".into(),
                axis: 2,
                index: 0
            }
        );
    }

    #[test]
    fn errors_name_the_line() {
        let e = Session::parse("image 0 100\n").unwrap_err();
        assert!(matches!(e, SessionError::BadArguments { line: 1, .. }));
        let e = Session::parse("image 4 4\nwibble\n").unwrap_err();
        assert!(matches!(e, SessionError::UnknownDirective { line: 2, .. }));
        let e = Session::parse("plot isosurface v levels=1.5\n").unwrap_err();
        assert!(matches!(e, SessionError::BadArguments { .. }));
        let e = Session::parse("frequency 0\n").unwrap_err();
        assert!(matches!(e, SessionError::BadArguments { .. }));
    }

    #[test]
    fn leslie_session_shape() {
        let s = Session::leslie_tml("vorticity");
        assert_eq!(s.frequency, 5);
        assert_eq!(s.plots.len(), 4);
        let iso_count = s
            .plots
            .iter()
            .filter(|p| matches!(p, Plot::Isosurface { levels, .. } if levels.len() == 3))
            .count();
        assert_eq!(iso_count, 1);
    }
}
