//! The Libsim render engine and its SENSEI analysis adaptor.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use datamodel::{DataSet, Extent};
use minimpi::Comm;
use render::camera::Camera;
use render::color::{Color, Colormap};
use render::composite::Compositor;
use render::deflate::Mode;
use render::framebuffer::Framebuffer;
use render::pipeline::{pseudocolor_slice, shaded_isosurface, IsosurfaceRender, SliceRender};
use render::png::encode_framebuffer;
use sensei::{AnalysisAdaptor, Association, DataAdaptor, Steering};

use crate::session::{Plot, Session};

/// Libsim's compositing family: a direct-send fan-in tree.
pub const COMPOSITOR: Compositor = Compositor::DirectSendTree(8);

/// Shared handle to the most recent PNG (rank 0 only).
pub type PngHandle = Arc<Mutex<Option<Vec<u8>>>>;

/// SENSEI analysis adaptor running a Libsim session.
pub struct LibsimAnalysis {
    session: Session,
    output_dir: Option<PathBuf>,
    last_png: PngHandle,
    renders: u64,
    /// Measured one-time startup cost (the per-rank config check).
    startup_seconds: f64,
    /// Pending failure reports, drained by the bridge.
    failures: Vec<String>,
    reported_missing: bool,
}

impl LibsimAnalysis {
    /// Start Libsim with a session. Performs the per-rank runtime
    /// configuration check — a real filesystem metadata operation, the
    /// behavior whose aggregate cost Fig. 5 reports at 45K ranks.
    pub fn new(session: Session, config_path: &Path) -> Self {
        let t0 = probe::time::now_seconds();
        // VisIt checks for a .visitrc / runtime config per rank.
        let _ = std::fs::metadata(config_path);
        let startup_seconds = (probe::time::now_seconds() - t0).max(0.0);
        LibsimAnalysis {
            session,
            output_dir: None,
            last_png: Arc::new(Mutex::new(None)),
            renders: 0,
            startup_seconds,
            failures: Vec::new(),
            reported_missing: false,
        }
    }

    /// Write `libsim_<step>.png` files into `dir` (rank 0).
    pub fn with_output_dir(mut self, dir: PathBuf) -> Self {
        self.output_dir = Some(dir);
        self
    }

    /// Handle to the latest PNG bytes (rank 0).
    pub fn png_handle(&self) -> PngHandle {
        Arc::clone(&self.last_png)
    }

    /// Number of render invocations so far.
    pub fn renders(&self) -> u64 {
        self.renders
    }

    /// Measured startup (config check) seconds on this rank.
    pub fn startup_seconds(&self) -> f64 {
        self.startup_seconds
    }

    /// Gather `(local, global, values, spacing, origin)` of the named
    /// point array on a structured leaf.
    #[allow(clippy::type_complexity)]
    fn structured_field(
        &mut self,
        data: &dyn DataAdaptor,
        array: &str,
    ) -> Option<(Extent, Extent, Vec<f64>, [f64; 3], [f64; 3])> {
        let mut mesh = data.mesh();
        if let Err(err) = data.add_array(&mut mesh, Association::Point, array) {
            if !self.reported_missing {
                self.reported_missing = true;
                self.failures.push(err.to_string());
            }
            return None;
        }
        // Sanitizer: hold a publish window while Libsim reads the
        // simulation's zero-copy arrays.
        let _publish = datamodel::publish_dataset(&mesh, "libsim");
        for leaf in mesh.leaves() {
            match leaf {
                DataSet::Image(g) => {
                    let arr = g.point_data.get(array)?;
                    let values = match arr.values_in(0, datamodel::current_space()) {
                        Ok(v) => v,
                        Err(err) => {
                            self.failures.push(format!("libsim: {err}"));
                            return None;
                        }
                    };
                    return Some((g.extent, g.global_extent, values, g.spacing, g.origin));
                }
                DataSet::Rectilinear(g) => {
                    let arr = g.point_data.get(array)?;
                    let values = match arr.values_in(0, datamodel::current_space()) {
                        Ok(v) => v,
                        Err(err) => {
                            self.failures.push(format!("libsim: {err}"));
                            return None;
                        }
                    };
                    let spacing = [
                        if g.x.len() > 1 { g.x[1] - g.x[0] } else { 1.0 },
                        if g.y.len() > 1 { g.y[1] - g.y[0] } else { 1.0 },
                        if g.z.len() > 1 { g.z[1] - g.z[0] } else { 1.0 },
                    ];
                    let origin = [
                        g.x[0] - g.extent.lo[0] as f64 * spacing[0],
                        g.y[0] - g.extent.lo[1] as f64 * spacing[1],
                        g.z[0] - g.extent.lo[2] as f64 * spacing[2],
                    ];
                    return Some((g.extent, g.global_extent, values, spacing, origin));
                }
                _ => continue,
            }
        }
        None
    }

    fn render_plot(
        &mut self,
        plot: &Plot,
        data: &dyn DataAdaptor,
        comm: &Comm,
    ) -> Option<Framebuffer> {
        let (w, h) = self.session.image;
        match plot {
            Plot::Pseudocolor { array, axis, index } => {
                let (local, global, values, _, _) = self.structured_field(data, array)?;
                // Clamp the requested plane into the domain.
                let idx = (*index).clamp(global.lo[*axis], global.hi[*axis]);
                let cfg = SliceRender {
                    axis: *axis,
                    global_index: idx,
                    width: w,
                    height: h,
                    compositor: COMPOSITOR,
                    cmap: Colormap::viridis(),
                };
                pseudocolor_slice(comm, &local, &global, &values, &cfg)
            }
            Plot::Isosurface { array, levels } => {
                let (local, global, values, spacing, origin) =
                    self.structured_field(data, array)?;
                // Levels are fractions of the global range.
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in &values {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let glo = comm.allreduce_scalar(lo, f64::min);
                let ghi = comm.allreduce_scalar(hi, f64::max);
                let isovalues: Vec<f64> = levels.iter().map(|f| glo + f * (ghi - glo)).collect();
                // Camera looks at the domain center from outside.
                let gd = global.point_dims();
                let center = [
                    origin[0] + (gd[0] - 1) as f64 * spacing[0] / 2.0,
                    origin[1] + (gd[1] - 1) as f64 * spacing[1] / 2.0,
                    origin[2] + (gd[2] - 1) as f64 * spacing[2] / 2.0,
                ];
                let size = (gd[0] as f64 * spacing[0])
                    .max(gd[1] as f64 * spacing[1])
                    .max(gd[2] as f64 * spacing[2]);
                let eye = [
                    center[0] + 1.2 * size,
                    center[1] + 0.9 * size,
                    center[2] - 2.0 * size,
                ];
                let cfg = IsosurfaceRender {
                    isovalues,
                    camera: Camera::look_at(eye, center, [0.0, 1.0, 0.0], 0.8),
                    width: w,
                    height: h,
                    compositor: COMPOSITOR,
                    cmap: Colormap::cool_warm(),
                    origin,
                    spacing,
                };
                shaded_isosurface(comm, &local, &values, &cfg)
            }
        }
    }
}

impl AnalysisAdaptor for LibsimAnalysis {
    fn name(&self) -> &str {
        "libsim"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        if !data.step().is_multiple_of(self.session.frequency) {
            return Steering::Continue;
        }
        self.renders += 1;
        // Composite all plots of the session into one image (plots render
        // back-to-front into the same framebuffer via depth compositing).
        let (w, h) = self.session.image;
        let mut final_fb: Option<Framebuffer> = None;
        let plots = self.session.plots.clone();
        for plot in &plots {
            if let Some(fb) = self.render_plot(plot, data, comm) {
                match &mut final_fb {
                    None => final_fb = Some(fb),
                    Some(acc) => acc.composite_from(&fb),
                }
            }
        }
        if comm.rank() == 0 {
            let fb = final_fb.unwrap_or_else(|| Framebuffer::new(w, h));
            let png = encode_framebuffer(&fb, Color::BLACK, Mode::Fixed);
            if let Some(dir) = &self.output_dir {
                let path = dir.join(format!("libsim_{:05}.png", data.step()));
                if let Err(e) = std::fs::write(&path, &png) {
                    eprintln!("libsim: failed to write {}: {e}", path.display());
                }
            }
            *self.last_png.lock() = Some(png);
        }
        Steering::Continue
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{partition_extent, DataArray, ImageData};
    use minimpi::World;
    use render::png::decode_rgb;

    fn adaptor(comm: &Comm, step: u64) -> sensei::InMemoryAdaptor {
        let global = Extent::whole([9, 9, 9]);
        let dims = datamodel::dims_create(comm.size());
        let local = partition_extent(&global, dims, comm.rank());
        let mut g = ImageData::new(local, global);
        let c = 4.0;
        let vals: Vec<f64> = local
            .iter_points()
            .map(|p| {
                let dx = p[0] as f64 - c;
                let dy = p[1] as f64 - c;
                let dz = p[2] as f64 - c;
                (dx * dx + dy * dy + dz * dz).sqrt()
            })
            .collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        sensei::InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    fn small_session(freq: u64) -> Session {
        Session::parse(&format!(
            "image 48 48\nfrequency {freq}\nplot pseudocolor data axis=z index=4\nplot isosurface data levels=0.5\n"
        ))
        .unwrap()
    }

    #[test]
    fn session_renders_combined_png() {
        World::run(4, |comm| {
            let mut a = LibsimAnalysis::new(small_session(1), Path::new("/nonexistent/.visitrc"));
            let png = a.png_handle();
            a.execute(&adaptor(comm, 0), comm);
            if comm.rank() == 0 {
                let bytes = png.lock().clone().expect("png");
                let (w, h, rgb) = decode_rgb(&bytes).unwrap();
                assert_eq!((w, h), (48, 48));
                // Slice paints the full frame; no pure-background-only image.
                assert!(rgb.chunks(3).any(|p| p != [0, 0, 0]));
            }
        });
    }

    #[test]
    fn frequency_five_renders_one_in_five() {
        World::run(2, |comm| {
            let mut a = LibsimAnalysis::new(small_session(5), Path::new("/nonexistent/.visitrc"));
            for s in 0..10 {
                a.execute(&adaptor(comm, s), comm);
            }
            assert_eq!(a.renders(), 2);
        });
    }

    #[test]
    fn startup_performs_config_check() {
        World::run(1, |_comm| {
            let a = LibsimAnalysis::new(small_session(1), Path::new("/nonexistent/.visitrc"));
            assert!(a.startup_seconds() >= 0.0);
            assert!(a.startup_seconds() < 0.5, "a single stat is fast");
        });
    }

    #[test]
    fn isosurface_only_session_covers_fewer_pixels_than_slice() {
        World::run(2, |comm| {
            let slice_png = {
                let s =
                    Session::parse("image 40 40\nplot pseudocolor data axis=z index=4\n").unwrap();
                let mut a = LibsimAnalysis::new(s, Path::new("/nonexistent"));
                let h = a.png_handle();
                a.execute(&adaptor(comm, 0), comm);
                if comm.rank() == 0 {
                    h.lock().clone()
                } else {
                    None
                }
            };
            let iso_png = {
                let s = Session::parse("image 40 40\nplot isosurface data levels=0.4\n").unwrap();
                let mut a = LibsimAnalysis::new(s, Path::new("/nonexistent"));
                let h = a.png_handle();
                a.execute(&adaptor(comm, 0), comm);
                if comm.rank() == 0 {
                    h.lock().clone()
                } else {
                    None
                }
            };
            if comm.rank() == 0 {
                let count_nonblack = |png: &[u8]| {
                    let (_, _, rgb) = decode_rgb(png).unwrap();
                    rgb.chunks(3).filter(|p| *p != [0, 0, 0]).count()
                };
                let s = count_nonblack(&slice_png.unwrap());
                let i = count_nonblack(&iso_png.unwrap());
                assert!(s > i, "slice covers frame ({s}) > isosurface ({i})");
                assert!(i > 0, "isosurface rendered something");
            }
        });
    }
}
