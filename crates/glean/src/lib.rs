//! # glean — GLEAN-like topology-aware data staging and I/O acceleration
//!
//! GLEAN (§2.2.3) "takes application, analysis, and system
//! characteristics into account to facilitate simulation-time data
//! analysis and I/O acceleration" with "zero or minimal modifications"
//! to the application. The mechanisms reproduced here:
//!
//! * **topology-aware aggregation** ([`Topology`]) — compute ranks
//!   forward their blocks to a node-level aggregator (one per
//!   `ranks_per_node`), collapsing a file-per-rank storm into a
//!   file-per-aggregator trickle;
//! * **asynchronous draining** — each aggregator publishes aggregated
//!   steps to its staging-broker topic (`("glean/<array>", agg)` on an
//!   [`adios::broker::Broker`]); a background writer thread subscribes
//!   and persists them, overlapping storage I/O with the next
//!   simulation step (the "fastest path for their data"), and any
//!   number of extra subscribers can watch the same topic
//!   ([`GleanWriter::with_broker`]);
//! * a SENSEI [`sensei::AnalysisAdaptor`] wrapper ([`GleanWriter`]) so
//!   the simulation enables GLEAN exactly like any other analysis.
//!
//! Because `minimpi` messages move ownership, intra-node "aggregation"
//! is genuinely copy-free: a rank's field buffer travels to the
//! aggregator without a memcpy.

mod aggregate;
mod blobs;

pub use aggregate::{DeadMember, GleanWriter, NodeStep, Topology};
pub use blobs::{read_blob_file, BlockRecord};
