//! The aggregator's on-disk blob format: framed, append-only records.
//!
//! Layout per step frame:
//!
//! ```text
//! [step u64][n_blocks u32]
//!   n_blocks × [rank u64][name_len u32][name][extent 6×i64][count u64][f64…]
//! ```

use std::io::{Read, Write};
use std::path::Path;

/// One rank's block inside an aggregated step.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockRecord {
    /// Producing rank.
    pub rank: usize,
    /// Array name.
    pub name: String,
    /// Local extent `[lo0, lo1, lo2, hi0, hi1, hi2]`.
    pub extent: [i64; 6],
    /// Field values.
    pub data: Vec<f64>,
}

/// Append one aggregated step to `path`.
pub fn append_step(path: &Path, step: u64, blocks: &[BlockRecord]) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf =
        Vec::with_capacity(16 + blocks.iter().map(|b| b.data.len() * 8 + 80).sum::<usize>());
    buf.extend_from_slice(&step.to_le_bytes());
    buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        buf.extend_from_slice(&(b.rank as u64).to_le_bytes());
        buf.extend_from_slice(&(b.name.len() as u32).to_le_bytes());
        buf.extend_from_slice(b.name.as_bytes());
        for e in b.extent {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        buf.extend_from_slice(&(b.data.len() as u64).to_le_bytes());
        for v in &b.data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    f.write_all(&buf)
}

fn corrupt() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt glean blob")
}

/// Consume the next `N` bytes as a fixed array, or a typed corruption
/// error if the file ends first — no panicking conversions anywhere on
/// the decode path.
fn take_arr<const N: usize>(raw: &[u8], pos: &mut usize) -> std::io::Result<[u8; N]> {
    let arr = raw
        .get(*pos..pos.saturating_add(N))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(corrupt)?;
    *pos += N;
    Ok(arr)
}

/// Read every `(step, blocks)` frame back from an aggregator file.
pub fn read_blob_file(path: &Path) -> std::io::Result<Vec<(u64, Vec<BlockRecord>)>> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < raw.len() {
        let step = u64::from_le_bytes(take_arr(&raw, &mut pos)?);
        let n = u32::from_le_bytes(take_arr(&raw, &mut pos)?) as usize;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = u64::from_le_bytes(take_arr(&raw, &mut pos)?) as usize;
            let name_len = u32::from_le_bytes(take_arr(&raw, &mut pos)?) as usize;
            let name_bytes = raw
                .get(pos..pos.saturating_add(name_len))
                .ok_or_else(corrupt)?;
            pos += name_len;
            let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| corrupt())?;
            let mut extent = [0i64; 6];
            for e in extent.iter_mut() {
                *e = i64::from_le_bytes(take_arr(&raw, &mut pos)?);
            }
            let count = u64::from_le_bytes(take_arr(&raw, &mut pos)?) as usize;
            let mut data = Vec::with_capacity(count);
            for _ in 0..count {
                data.push(f64::from_le_bytes(take_arr(&raw, &mut pos)?));
            }
            blocks.push(BlockRecord {
                rank,
                name,
                extent,
                data,
            });
        }
        out.push((step, blocks));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glean_{}_{}", std::process::id(), name))
    }

    fn rec(rank: usize) -> BlockRecord {
        BlockRecord {
            rank,
            name: "data".to_string(),
            extent: [0, 0, 0, 3, 3, 3],
            data: (0..8).map(|i| (rank * 10 + i) as f64).collect(),
        }
    }

    #[test]
    fn roundtrip_multiple_steps() {
        let p = tmp("roundtrip.bin");
        let _ = std::fs::remove_file(&p);
        append_step(&p, 0, &[rec(0), rec(1)]).unwrap();
        append_step(&p, 1, &[rec(0)]).unwrap();
        let frames = read_blob_file(&p).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, 0);
        assert_eq!(frames[0].1, vec![rec(0), rec(1)]);
        assert_eq!(frames[1].1.len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let p = tmp("trunc.bin");
        let _ = std::fs::remove_file(&p);
        append_step(&p, 0, &[rec(0)]).unwrap();
        let raw = std::fs::read(&p).unwrap();
        std::fs::write(&p, &raw[..raw.len() - 3]).unwrap();
        assert!(read_blob_file(&p).is_err());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_has_no_frames() {
        let p = tmp("empty.bin");
        std::fs::write(&p, b"").unwrap();
        assert!(read_blob_file(&p).unwrap().is_empty());
        std::fs::remove_file(&p).unwrap();
    }
}
