//! Topology-aware aggregation with an asynchronous drain thread.
//!
//! Each aggregator is a **staging-broker topic**: the assembled node
//! step publishes to `("glean/<array>", aggregator)` on an
//! [`adios::broker::Broker`], and the blob-file drain thread is just
//! that topic's first subscriber. Any number of additional consumers
//! (live monitors, secondary analyses) can subscribe to the same topic
//! via [`GleanWriter::with_broker`] without touching the aggregation
//! path — the same one-producer/N-consumer contract as the FlexPath
//! staging broker, with the same bounded-queue backpressure and
//! slow-consumer eviction semantics.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use adios::broker::{Broker, BrokerConfig, TopicKey};
use datamodel::DataSet;
use minimpi::Comm;
use probe::time::Wall;
use sensei::{AnalysisAdaptor, Association, DataAdaptor, Steering};

use crate::blobs::{append_step, BlockRecord};

const TAG_AGG: u32 = 0x61E4_0001;

/// Default deadline for one node member's block to reach its
/// aggregator. Mirrors the FlexPath reader's writer deadline.
const DEFAULT_MEMBER_DEADLINE: Duration = Duration::from_secs(30);

/// Default bound on how long `finalize` waits for the drain thread to
/// flush and exit before declaring the blobs suspect.
const DEFAULT_FINALIZE_DEADLINE: Duration = Duration::from_secs(30);

/// Steps of slack between the aggregator and its drain subscriber
/// before backpressure kicks in.
const DRAIN_QUEUE_DEPTH: usize = 8;

/// One assembled node step: what an aggregator publishes to its topic.
pub type NodeStep = (u64, Vec<BlockRecord>);

/// A node member that never delivered its block within the deadline:
/// the GLEAN mirror of the FlexPath reader's `DeadWriter` record.
#[derive(Clone, Debug)]
pub struct DeadMember {
    /// World rank of the silent member.
    pub rank: usize,
    /// Steps received from it before it went silent.
    pub steps_received: u64,
    /// How long the aggregator waited before declaring it dead.
    pub waited: Duration,
}

impl From<&DeadMember> for sensei::FailureReport {
    fn from(d: &DeadMember) -> Self {
        sensei::FailureReport::DeadMember {
            rank: d.rank,
            steps_received: d.steps_received,
            waited: d.waited,
        }
    }
}

/// The machine topology GLEAN exploits: which ranks share a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// MPI ranks per compute node.
    pub ranks_per_node: usize,
}

impl Topology {
    /// Build; `ranks_per_node` must be positive.
    pub fn new(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Topology { ranks_per_node }
    }

    /// The aggregator (first rank of the node) for `rank`.
    pub fn aggregator_of(&self, rank: usize) -> usize {
        (rank / self.ranks_per_node) * self.ranks_per_node
    }

    /// Is `rank` an aggregator?
    pub fn is_aggregator(&self, rank: usize) -> bool {
        self.aggregator_of(rank) == rank
    }

    /// Ranks aggregated by `agg` (including itself) in a `size`-rank job.
    pub fn node_members(&self, agg: usize, size: usize) -> Vec<usize> {
        debug_assert!(self.is_aggregator(agg));
        (agg..(agg + self.ranks_per_node).min(size)).collect()
    }

    /// Number of aggregators in a `size`-rank job.
    pub fn num_aggregators(&self, size: usize) -> usize {
        size.div_ceil(self.ranks_per_node)
    }
}

/// SENSEI analysis adaptor enabling GLEAN-accelerated output: every rank
/// forwards its block to its node aggregator; aggregators publish the
/// assembled node step to their broker topic, whose drain subscriber (a
/// background thread) writes one blob file per aggregator.
pub struct GleanWriter {
    topology: Topology,
    array: String,
    output_dir: PathBuf,
    /// The topic fabric node steps publish through. Private by
    /// default; share one via [`GleanWriter::with_broker`] to let
    /// other consumers watch the aggregation stream.
    broker: Broker<NodeStep>,
    drain: Option<JoinHandle<std::io::Result<u64>>>,
    /// Steps accepted so far.
    steps: u64,
    /// Bytes forwarded or aggregated by this rank so far.
    pub bytes_handled: u64,
    failures: Vec<String>,
    reported_missing: bool,
    member_deadline: Duration,
    finalize_deadline: Duration,
    /// Node members declared dead (skipped in later gathers).
    dead: Vec<DeadMember>,
    dead_ranks: BTreeSet<usize>,
    /// Test hook: artificial per-step latency in the drain subscriber,
    /// to exercise the finalize deadline path.
    drain_delay: Duration,
}

impl GleanWriter {
    /// Create the writer. The drain thread is started lazily on the
    /// aggregator's first step (so non-aggregators never spawn one).
    pub fn new(topology: Topology, array: impl Into<String>, output_dir: PathBuf) -> Self {
        GleanWriter {
            topology,
            array: array.into(),
            output_dir,
            broker: Broker::new(BrokerConfig {
                queue_depth: DRAIN_QUEUE_DEPTH,
                ..BrokerConfig::default()
            }),
            drain: None,
            steps: 0,
            bytes_handled: 0,
            failures: Vec::new(),
            reported_missing: false,
            member_deadline: DEFAULT_MEMBER_DEADLINE,
            finalize_deadline: DEFAULT_FINALIZE_DEADLINE,
            dead: Vec::new(),
            dead_ranks: BTreeSet::new(),
            drain_delay: Duration::ZERO,
        }
    }

    /// Publish through a shared broker instead of a private one, so
    /// external subscribers can watch this writer's aggregation topic
    /// (key `("glean/<array>", aggregator-rank)`).
    pub fn with_broker(mut self, broker: Broker<NodeStep>) -> Self {
        self.broker = broker;
        self
    }

    /// The topic an aggregator rank publishes to.
    pub fn topic(&self, agg: usize) -> TopicKey {
        TopicKey::new(format!("glean/{}", self.array), agg as u32)
    }

    /// Override the per-member gather deadline (tests use short ones).
    pub fn set_member_deadline(&mut self, deadline: Duration) {
        self.member_deadline = deadline;
    }

    /// Override the finalize drain-join deadline.
    pub fn set_finalize_deadline(&mut self, deadline: Duration) {
        self.finalize_deadline = deadline;
    }

    /// Node members declared dead so far (missed the gather deadline).
    pub fn dead_members(&self) -> &[DeadMember] {
        &self.dead
    }

    /// Test hook: make the drain subscriber sleep this long per step,
    /// to exercise the finalize-deadline path deterministically.
    #[doc(hidden)]
    pub fn set_drain_delay(&mut self, delay: Duration) {
        self.drain_delay = delay;
    }

    /// Blob file path for aggregator `agg`.
    pub fn blob_path(dir: &std::path::Path, agg: usize) -> PathBuf {
        dir.join(format!("glean_{agg:06}.bin"))
    }

    /// Steps processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn local_block(&mut self, data: &dyn DataAdaptor, rank: usize) -> Option<BlockRecord> {
        let mut mesh = data.mesh();
        if let Err(err) = data.add_array(&mut mesh, Association::Point, &self.array) {
            if !self.reported_missing {
                self.reported_missing = true;
                self.failures.push(err.to_string());
            }
            return None;
        }
        // Sanitizer: hold a publish window while GLEAN drains the
        // rank's block out of the zero-copy arrays.
        let _publish = datamodel::publish_dataset(&mesh, "glean");
        for leaf in mesh.leaves() {
            let (extent, attrs) = match leaf {
                DataSet::Image(g) => (g.extent, &g.point_data),
                DataSet::Rectilinear(g) => (g.extent, &g.point_data),
                _ => continue,
            };
            let arr = attrs.get(&self.array)?;
            // Space-checked drain: GLEAN runs host-side; device-resident
            // blocks must be transferred explicitly before aggregation.
            let data = match arr.values_in(0, datamodel::current_space()) {
                Ok(v) => v,
                Err(err) => {
                    self.failures.push(format!("glean: {err}"));
                    return None;
                }
            };
            return Some(BlockRecord {
                rank,
                name: self.array.clone(),
                extent: [
                    extent.lo[0],
                    extent.lo[1],
                    extent.lo[2],
                    extent.hi[0],
                    extent.hi[1],
                    extent.hi[2],
                ],
                data,
            });
        }
        None
    }

    /// Start the drain subscriber on first use: it subscribes to this
    /// aggregator's topic and persists every node step it receives.
    /// Returns whether a drain (now) exists; `false` means the
    /// subscription was refused and the failure has been recorded.
    fn ensure_drain(&mut self, agg: usize) -> bool {
        if self.drain.is_some() {
            return true;
        }
        let path = Self::blob_path(&self.output_dir, agg);
        let _ = std::fs::remove_file(&path);
        let topic = self.topic(agg);
        let sub = match self
            .broker
            .subscribe_labeled(topic.clone(), format!("glean-drain-{agg}"))
        {
            Ok(sub) => sub,
            Err(e) => {
                self.failures
                    .push(format!("glean: drain subscription refused: {e}"));
                return false;
            }
        };
        let delay = self.drain_delay;
        let handle = std::thread::spawn(move || -> std::io::Result<u64> {
            let mut written = 0u64;
            loop {
                match sub.recv_deadline(Duration::from_millis(200)) {
                    Ok(Some(msg)) => {
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        let (step, blocks) = &*msg.payload;
                        append_step(&path, *step, blocks)?;
                        written += blocks.iter().map(|b| b.data.len() as u64 * 8).sum::<u64>();
                    }
                    // End-of-stream (topic finished, queue drained) or
                    // this subscriber was evicted for falling behind —
                    // either way there is nothing left to persist.
                    Ok(None) => break,
                    // Quiet stretch; keep waiting. finalize() bounds
                    // the writer-side wait, not this loop.
                    Err(()) => continue,
                }
            }
            Ok(written)
        });
        self.drain = Some(handle);
        true
    }
}

impl AnalysisAdaptor for GleanWriter {
    fn name(&self) -> &str {
        "glean-write"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        self.steps += 1;
        let me = comm.rank();
        let agg = self.topology.aggregator_of(me);
        let block = self.local_block(data, me);
        if let Some(b) = &block {
            self.bytes_handled += b.data.len() as u64 * 8;
        }
        if me != agg {
            // Ownership of the buffer moves to the aggregator: no copy.
            comm.send(agg, TAG_AGG, block);
            return Steering::Continue;
        }
        // Gather with a multi-peer select and a deadline: one slow
        // member no longer hangs the whole node, and a dead member is
        // recorded once and skipped from every later step — mirroring
        // the FlexPath reader's DeadWriter semantics.
        let mut awaiting: Vec<usize> = self
            .topology
            .node_members(agg, comm.size())
            .into_iter()
            .filter(|&p| p != me && !self.dead_ranks.contains(&p))
            .collect();
        let mut blocks: Vec<BlockRecord> = Vec::with_capacity(awaiting.len() + 1);
        if let Some(b) = block {
            blocks.push(b);
        }
        while !awaiting.is_empty() {
            match comm.recv_any_of_deadline::<Option<BlockRecord>>(
                &awaiting,
                TAG_AGG,
                self.member_deadline,
            ) {
                Ok((peer, b)) => {
                    awaiting.retain(|&p| p != peer);
                    if let Some(b) = b {
                        blocks.push(b);
                    }
                }
                Err(_) => {
                    // Every member still awaited was silent for the
                    // whole window: declare them all dead at once.
                    for &peer in &awaiting {
                        self.dead_ranks.insert(peer);
                        self.dead.push(DeadMember {
                            rank: peer,
                            steps_received: self.steps.saturating_sub(1),
                            waited: self.member_deadline,
                        });
                        self.failures.push(format!(
                            "glean: node member rank {peer} lost after {} step(s) (no block \
                             within {:?}); aggregating without it from step {} on",
                            self.steps.saturating_sub(1),
                            self.member_deadline,
                            data.step(),
                        ));
                    }
                    awaiting.clear();
                }
            }
        }
        blocks.sort_by_key(|b| b.rank);
        let step = data.step();
        if self.ensure_drain(agg) {
            let topic = self.topic(agg);
            self.broker.publish(&topic, (step, blocks));
            for evicted in self.broker.take_evictions() {
                self.failures.push(evicted.describe());
            }
        }
        Steering::Continue
    }

    fn finalize(&mut self, comm: &Comm) {
        if let Some(handle) = self.drain.take() {
            let agg = self.topology.aggregator_of(comm.rank());
            self.broker.finish(&self.topic(agg));
            // Join with a deadline: a wedged drain (dead disk, hung
            // filesystem) must not hang the whole job at exit. The
            // thread is detached past the deadline and the suspect
            // blobs are surfaced through take_failures.
            let start = Wall::now();
            let joined = loop {
                if handle.is_finished() {
                    break true;
                }
                if start.elapsed() >= self.finalize_deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            if !joined {
                self.failures.push(format!(
                    "glean: drain thread did not finish within {:?}; blob file for \
                     aggregator {agg} may be truncated or unflushed",
                    self.finalize_deadline
                ));
                return;
            }
            match handle.join() {
                Ok(Ok(_written)) => {}
                Ok(Err(e)) => self.failures.push(format!("drain thread I/O error: {e}")),
                Err(_) => self.failures.push("drain thread panicked".to_string()),
            }
            for evicted in self.broker.take_evictions() {
                self.failures.push(evicted.describe());
            }
        }
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blobs::read_blob_file;
    use datamodel::{partition_extent, DataArray, Extent, ImageData};
    use minimpi::World;
    use sensei::{Bridge, InMemoryAdaptor};

    fn adaptor(comm: &Comm, step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([9, 3, 3]);
        let local = partition_extent(&global, [comm.size(), 1, 1], comm.rank());
        let mut g = ImageData::new(local, global);
        let vals: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn topology_math() {
        let t = Topology::new(4);
        assert_eq!(t.aggregator_of(0), 0);
        assert_eq!(t.aggregator_of(3), 0);
        assert_eq!(t.aggregator_of(4), 4);
        assert!(t.is_aggregator(4));
        assert!(!t.is_aggregator(5));
        assert_eq!(t.node_members(4, 6), vec![4, 5]);
        assert_eq!(t.num_aggregators(6), 2);
        assert_eq!(t.num_aggregators(8), 2);
    }

    #[test]
    fn aggregates_all_ranks_into_few_files() {
        let dir = std::env::temp_dir().join(format!("glean_agg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(4, move |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(GleanWriter::new(
                Topology::new(2),
                "data",
                d2.clone(),
            )));
            for s in 0..3u64 {
                bridge.execute(&adaptor(comm, s), comm);
            }
            bridge.finalize(comm);
        });
        // 4 ranks, 2 per node → 2 blob files.
        let f0 = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        let f2 = read_blob_file(&GleanWriter::blob_path(&dir, 2)).unwrap();
        assert!(!GleanWriter::blob_path(&dir, 1).exists());
        assert_eq!(f0.len(), 3, "three steps");
        assert_eq!(f2.len(), 3);
        // Each frame holds both node members' blocks, rank-sorted.
        for (step, blocks) in &f0 {
            assert!(*step < 3);
            assert_eq!(
                blocks.iter().map(|b| b.rank).collect::<Vec<_>>(),
                vec![0, 1]
            );
        }
        for (_, blocks) in &f2 {
            assert_eq!(
                blocks.iter().map(|b| b.rank).collect::<Vec<_>>(),
                vec![2, 3]
            );
        }
        // Every cell of the global grid is present exactly once per step
        // across the two files (shared planes belong to both blocks, so
        // compare against the sum of local point counts).
        let total: usize = f0[0]
            .1
            .iter()
            .chain(f2[0].1.iter())
            .map(|b| b.data.len())
            .sum();
        let expect: usize = (0..4)
            .map(|r| partition_extent(&Extent::whole([9, 3, 3]), [4, 1, 1], r).num_points())
            .sum();
        assert_eq!(total, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_node_topology_single_file() {
        let dir = std::env::temp_dir().join(format!("glean_one_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(3, move |comm| {
            let mut w = GleanWriter::new(Topology::new(8), "data", d2.clone());
            w.execute(&adaptor(comm, 0), comm);
            w.finalize(comm);
            if comm.rank() == 0 {
                assert!(w.bytes_handled > 0);
            }
        });
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].1.len(), 3, "all three ranks aggregated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn big_adaptor(step: u64) -> InMemoryAdaptor {
        // ~1.4 MB of field data: large enough that an unjoined drain
        // thread would still be mid-write when the process moves on.
        let global = Extent::whole([200, 30, 30]);
        let mut g = ImageData::new(global, global);
        let vals: Vec<f64> = global.iter_points().map(|p| p[0] as f64).collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    // Regression (finalize/drain race): finalizing immediately after a
    // large step must wait for the drain subscriber, so the blob holds
    // the complete frame — truncated/unflushed blobs were the failure
    // mode when finalize did not join the drain with a bound.
    #[test]
    fn finalize_right_after_large_step_leaves_complete_blob() {
        let dir = std::env::temp_dir().join(format!("glean_flush_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(1, move |comm| {
            let mut w = GleanWriter::new(Topology::new(1), "data", d2.clone());
            w.execute(&big_adaptor(0), comm);
            // No settling delay: finalize races the drain on purpose.
            w.finalize(comm);
            assert!(w.take_failures().is_empty(), "clean run reports nothing");
        });
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 1);
        let expect = Extent::whole([200, 30, 30]).num_points();
        assert_eq!(frames[0].1[0].data.len(), expect, "frame complete");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // The other side of the same bugfix: a wedged drain must not hang
    // finalize forever — the join deadline fires and the failure is
    // surfaced through take_failures instead.
    #[test]
    fn finalize_deadline_surfaces_wedged_drain() {
        let dir = std::env::temp_dir().join(format!("glean_wedge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(1, move |comm| {
            let mut w = GleanWriter::new(Topology::new(1), "data", d2.clone());
            w.set_drain_delay(Duration::from_millis(400));
            w.set_finalize_deadline(Duration::from_millis(40));
            w.execute(&adaptor(comm, 0), comm);
            let t0 = Wall::now();
            w.finalize(comm);
            assert!(
                t0.elapsed() < Duration::from_millis(350),
                "finalize must give up at its deadline, not wait out the drain"
            );
            let failures = w.take_failures();
            assert_eq!(failures.len(), 1, "failures: {failures:?}");
            assert!(
                failures[0].contains("did not finish within"),
                "unexpected failure text: {}",
                failures[0]
            );
        });
        // Let the detached drain finish before deleting its directory.
        std::thread::sleep(Duration::from_millis(600));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Regression (unbounded gather recv): a node member whose link to
    // the aggregator is cut must not hang the node — the gather
    // deadline fires, the member is recorded dead (DeadWriter-style)
    // and skipped from every later step.
    #[test]
    fn dead_member_degrades_instead_of_hanging() {
        let dir = std::env::temp_dir().join(format!("glean_dead_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        let faults = minimpi::FaultHandle::new();
        faults.drop_link(1, 0); // member 1 -> aggregator 0
        let handle = faults.clone();
        minimpi::WorldBuilder::new(2)
            .fault_handle(handle)
            .run(move |comm| {
                let mut w = GleanWriter::new(Topology::new(2), "data", d2.clone());
                w.set_member_deadline(Duration::from_millis(60));
                for s in 0..3u64 {
                    w.execute(&adaptor(comm, s), comm);
                }
                w.finalize(comm);
                if comm.rank() == 0 {
                    let dead = w.dead_members();
                    assert_eq!(dead.len(), 1);
                    assert_eq!(dead[0].rank, 1);
                    assert_eq!(dead[0].steps_received, 0);
                    let failures = w.take_failures();
                    assert_eq!(failures.len(), 1, "recorded once, then skipped");
                    assert!(failures[0].contains("node member rank 1 lost"));
                }
            });
        assert_eq!(faults.dropped(), 3, "every forwarded block was dropped");
        // All three steps persisted with the aggregator's own block only.
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 3);
        for (_, blocks) in &frames {
            assert_eq!(
                blocks.iter().map(|b| b.rank).collect::<Vec<_>>(),
                vec![0],
                "dead member's blocks must not appear"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Aggregators are broker topics: an external subscriber on a shared
    // broker watches the aggregation stream without touching the
    // drain path.
    #[test]
    fn external_subscriber_watches_aggregator_topic() {
        use adios::broker::{Broker, BrokerConfig};
        let dir = std::env::temp_dir().join(format!("glean_watch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(2, move |comm| {
            let broker: Broker<NodeStep> = Broker::new(BrokerConfig {
                queue_depth: 8,
                ..BrokerConfig::default()
            });
            let mut w =
                GleanWriter::new(Topology::new(2), "data", d2.clone()).with_broker(broker.clone());
            let watcher = if comm.rank() == 0 {
                Some(broker.subscribe_labeled(w.topic(0), "watcher").unwrap())
            } else {
                None
            };
            for s in 0..3u64 {
                w.execute(&adaptor(comm, s), comm);
            }
            w.finalize(comm);
            if let Some(watcher) = watcher {
                let mut steps = Vec::new();
                while let Some(msg) = watcher.try_next() {
                    let (step, blocks) = &*msg.payload;
                    assert_eq!(blocks.len(), 2, "both node members aggregated");
                    steps.push(*step);
                }
                assert_eq!(steps, vec![0, 1, 2], "watcher saw every node step");
                assert!(watcher.is_eos(), "finalize finished the topic");
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_array_forwards_nothing_but_completes() {
        let dir = std::env::temp_dir().join(format!("glean_missing_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(2, move |comm| {
            let mut w = GleanWriter::new(Topology::new(2), "absent", d2.clone());
            w.execute(&adaptor(comm, 0), comm);
            w.finalize(comm);
        });
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].1.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
