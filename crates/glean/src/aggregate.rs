//! Topology-aware aggregation with an asynchronous drain thread.

use std::path::PathBuf;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use datamodel::DataSet;
use minimpi::Comm;
use sensei::{AnalysisAdaptor, Association, DataAdaptor, Steering};

use crate::blobs::{append_step, BlockRecord};

const TAG_AGG: u32 = 0x61E4_0001;

/// The machine topology GLEAN exploits: which ranks share a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// MPI ranks per compute node.
    pub ranks_per_node: usize,
}

impl Topology {
    /// Build; `ranks_per_node` must be positive.
    pub fn new(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Topology { ranks_per_node }
    }

    /// The aggregator (first rank of the node) for `rank`.
    pub fn aggregator_of(&self, rank: usize) -> usize {
        (rank / self.ranks_per_node) * self.ranks_per_node
    }

    /// Is `rank` an aggregator?
    pub fn is_aggregator(&self, rank: usize) -> bool {
        self.aggregator_of(rank) == rank
    }

    /// Ranks aggregated by `agg` (including itself) in a `size`-rank job.
    pub fn node_members(&self, agg: usize, size: usize) -> Vec<usize> {
        debug_assert!(self.is_aggregator(agg));
        (agg..(agg + self.ranks_per_node).min(size)).collect()
    }

    /// Number of aggregators in a `size`-rank job.
    pub fn num_aggregators(&self, size: usize) -> usize {
        size.div_ceil(self.ranks_per_node)
    }
}

enum DrainMsg {
    Step(u64, Vec<BlockRecord>),
    Close,
}

/// SENSEI analysis adaptor enabling GLEAN-accelerated output: every rank
/// forwards its block to its node aggregator; aggregators enqueue the
/// assembled node step to a background drain thread writing one blob
/// file per aggregator.
pub struct GleanWriter {
    topology: Topology,
    array: String,
    output_dir: PathBuf,
    drain: Option<(Sender<DrainMsg>, JoinHandle<std::io::Result<u64>>)>,
    /// Steps accepted so far.
    steps: u64,
    /// Bytes forwarded or aggregated by this rank so far.
    pub bytes_handled: u64,
    failures: Vec<String>,
    reported_missing: bool,
}

impl GleanWriter {
    /// Create the writer. The drain thread is started lazily on the
    /// aggregator's first step (so non-aggregators never spawn one).
    pub fn new(topology: Topology, array: impl Into<String>, output_dir: PathBuf) -> Self {
        GleanWriter {
            topology,
            array: array.into(),
            output_dir,
            drain: None,
            steps: 0,
            bytes_handled: 0,
            failures: Vec::new(),
            reported_missing: false,
        }
    }

    /// Blob file path for aggregator `agg`.
    pub fn blob_path(dir: &std::path::Path, agg: usize) -> PathBuf {
        dir.join(format!("glean_{agg:06}.bin"))
    }

    /// Steps processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn local_block(&mut self, data: &dyn DataAdaptor, rank: usize) -> Option<BlockRecord> {
        let mut mesh = data.mesh();
        if let Err(err) = data.add_array(&mut mesh, Association::Point, &self.array) {
            if !self.reported_missing {
                self.reported_missing = true;
                self.failures.push(err.to_string());
            }
            return None;
        }
        // Sanitizer: hold a publish window while GLEAN drains the
        // rank's block out of the zero-copy arrays.
        let _publish = datamodel::publish_dataset(&mesh, "glean");
        for leaf in mesh.leaves() {
            let (extent, attrs) = match leaf {
                DataSet::Image(g) => (g.extent, &g.point_data),
                DataSet::Rectilinear(g) => (g.extent, &g.point_data),
                _ => continue,
            };
            let arr = attrs.get(&self.array)?;
            let data: Vec<f64> = (0..arr.num_tuples()).map(|t| arr.get(t, 0)).collect();
            return Some(BlockRecord {
                rank,
                name: self.array.clone(),
                extent: [
                    extent.lo[0],
                    extent.lo[1],
                    extent.lo[2],
                    extent.hi[0],
                    extent.hi[1],
                    extent.hi[2],
                ],
                data,
            });
        }
        None
    }

    fn ensure_drain(&mut self, agg: usize) -> &Sender<DrainMsg> {
        if self.drain.is_none() {
            let path = Self::blob_path(&self.output_dir, agg);
            let _ = std::fs::remove_file(&path);
            // Bounded queue: two steps of slack before back-pressure.
            let (tx, rx) = bounded::<DrainMsg>(2);
            let handle = std::thread::spawn(move || -> std::io::Result<u64> {
                let mut written = 0u64;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        DrainMsg::Close => break,
                        DrainMsg::Step(step, blocks) => {
                            append_step(&path, step, &blocks)?;
                            written += blocks.iter().map(|b| b.data.len() as u64 * 8).sum::<u64>();
                        }
                    }
                }
                Ok(written)
            });
            self.drain = Some((tx, handle));
        }
        &self.drain.as_ref().expect("drain just created").0
    }
}

impl AnalysisAdaptor for GleanWriter {
    fn name(&self) -> &str {
        "glean-write"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        self.steps += 1;
        let me = comm.rank();
        let agg = self.topology.aggregator_of(me);
        let block = self.local_block(data, me);
        if let Some(b) = &block {
            self.bytes_handled += b.data.len() as u64 * 8;
        }
        if me != agg {
            // Ownership of the buffer moves to the aggregator: no copy.
            comm.send(agg, TAG_AGG, block);
            return Steering::Continue;
        }
        let members = self.topology.node_members(agg, comm.size());
        let mut blocks: Vec<BlockRecord> = Vec::with_capacity(members.len());
        if let Some(b) = block {
            blocks.push(b);
        }
        for &peer in &members {
            if peer == me {
                continue;
            }
            let b: Option<BlockRecord> = comm.recv(peer, TAG_AGG);
            if let Some(b) = b {
                blocks.push(b);
            }
        }
        blocks.sort_by_key(|b| b.rank);
        let step = data.step();
        let tx = self.ensure_drain(agg);
        tx.send(DrainMsg::Step(step, blocks))
            .expect("glean drain thread died");
        Steering::Continue
    }

    fn finalize(&mut self, _comm: &Comm) {
        if let Some((tx, handle)) = self.drain.take() {
            let _ = tx.send(DrainMsg::Close);
            match handle.join() {
                Ok(Ok(_written)) => {}
                Ok(Err(e)) => self.failures.push(format!("drain thread I/O error: {e}")),
                Err(_) => self.failures.push("drain thread panicked".to_string()),
            }
        }
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blobs::read_blob_file;
    use datamodel::{partition_extent, DataArray, Extent, ImageData};
    use minimpi::World;
    use sensei::{Bridge, InMemoryAdaptor};

    fn adaptor(comm: &Comm, step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([9, 3, 3]);
        let local = partition_extent(&global, [comm.size(), 1, 1], comm.rank());
        let mut g = ImageData::new(local, global);
        let vals: Vec<f64> = local.iter_points().map(|p| p[0] as f64).collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    fn topology_math() {
        let t = Topology::new(4);
        assert_eq!(t.aggregator_of(0), 0);
        assert_eq!(t.aggregator_of(3), 0);
        assert_eq!(t.aggregator_of(4), 4);
        assert!(t.is_aggregator(4));
        assert!(!t.is_aggregator(5));
        assert_eq!(t.node_members(4, 6), vec![4, 5]);
        assert_eq!(t.num_aggregators(6), 2);
        assert_eq!(t.num_aggregators(8), 2);
    }

    #[test]
    fn aggregates_all_ranks_into_few_files() {
        let dir = std::env::temp_dir().join(format!("glean_agg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(4, move |comm| {
            let mut bridge = Bridge::new();
            bridge.register(Box::new(GleanWriter::new(
                Topology::new(2),
                "data",
                d2.clone(),
            )));
            for s in 0..3u64 {
                bridge.execute(&adaptor(comm, s), comm);
            }
            bridge.finalize(comm);
        });
        // 4 ranks, 2 per node → 2 blob files.
        let f0 = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        let f2 = read_blob_file(&GleanWriter::blob_path(&dir, 2)).unwrap();
        assert!(!GleanWriter::blob_path(&dir, 1).exists());
        assert_eq!(f0.len(), 3, "three steps");
        assert_eq!(f2.len(), 3);
        // Each frame holds both node members' blocks, rank-sorted.
        for (step, blocks) in &f0 {
            assert!(*step < 3);
            assert_eq!(
                blocks.iter().map(|b| b.rank).collect::<Vec<_>>(),
                vec![0, 1]
            );
        }
        for (_, blocks) in &f2 {
            assert_eq!(
                blocks.iter().map(|b| b.rank).collect::<Vec<_>>(),
                vec![2, 3]
            );
        }
        // Every cell of the global grid is present exactly once per step
        // across the two files (shared planes belong to both blocks, so
        // compare against the sum of local point counts).
        let total: usize = f0[0]
            .1
            .iter()
            .chain(f2[0].1.iter())
            .map(|b| b.data.len())
            .sum();
        let expect: usize = (0..4)
            .map(|r| partition_extent(&Extent::whole([9, 3, 3]), [4, 1, 1], r).num_points())
            .sum();
        assert_eq!(total, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_node_topology_single_file() {
        let dir = std::env::temp_dir().join(format!("glean_one_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(3, move |comm| {
            let mut w = GleanWriter::new(Topology::new(8), "data", d2.clone());
            w.execute(&adaptor(comm, 0), comm);
            w.finalize(comm);
            if comm.rank() == 0 {
                assert!(w.bytes_handled > 0);
            }
        });
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].1.len(), 3, "all three ranks aggregated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_array_forwards_nothing_but_completes() {
        let dir = std::env::temp_dir().join(format!("glean_missing_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d2 = dir.clone();
        World::run(2, move |comm| {
            let mut w = GleanWriter::new(Topology::new(2), "absent", d2.clone());
            w.execute(&adaptor(comm, 0), comm);
            w.finalize(comm);
        });
        let frames = read_blob_file(&GleanWriter::blob_path(&dir, 0)).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].1.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
