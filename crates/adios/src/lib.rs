//! # adios — an ADIOS-like adaptive I/O service with FlexPath staging
//!
//! ADIOS lets applications switch between I/O service providers — files,
//! in situ, in transit — by changing parameters, not code. Unlike
//! Catalyst/Libsim it carries no analytics of its own: it marshals
//! self-describing data to wherever the analysis runs. This crate
//! reproduces the pieces §4.1.4 exercises:
//!
//! * [`bp`] — **BP-lite**, a self-describing binary format: named,
//!   typed, block-decomposed variables with global/local dimensions and
//!   offsets, serializable to bytes (staging) or appended to `.bp` files
//!   (post hoc);
//! * [`flexpath`] — a publish/subscribe staging transport pairing a
//!   writer group (the simulation) with an endpoint group (the analysis
//!   reader), with the `advance` metadata handshake, bounded queue
//!   back-pressure (writers block when the reader lags — the
//!   `adios::analysis` time of Fig. 8), and dynamic disconnect;
//! * [`staging`] — the two-executable pattern: a SENSEI
//!   [`sensei::AnalysisAdaptor`] for the writer side
//!   ([`staging::AdiosWriterAnalysis`]) that ships each step's data,
//!   and an endpoint loop ([`staging::run_endpoint`]) that reconstructs
//!   datasets and drives any SENSEI analyses — so a Catalyst slice or a
//!   histogram runs *in transit* without the simulation knowing.
//!
//! The transport deliberately serializes (one marshaling copy): FlexPath
//! "does not yet use zero-copy" in the paper, and that copy is part of
//! the measured overhead.

pub mod bp;
pub mod broker;
pub mod flexpath;
pub mod staging;

pub use bp::{BpError, BpFile, BpStep, BpVar};
pub use broker::{
    AdmissionError, Broker, BrokerConfig, EvictionRecord, PublishReport, StagingBroker,
    Subscription, TopicKey, TopicMsg,
};
pub use flexpath::{pair, FlexpathReader, FlexpathWriter, Role};
