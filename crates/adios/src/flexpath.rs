//! FlexPath-like publish/subscribe staging transport.
//!
//! The world splits into a **writer group** (the simulation) and an
//! **endpoint group** (the analysis readers) — the paper's co-scheduled
//! configuration puts one endpoint per writer core's sibling
//! hyperthread, but the pairing works for any M-writers/N-endpoints
//! split, including the in transit case on disjoint nodes.
//!
//! Per-step protocol, matching Fig. 8's decomposition:
//!
//! * `advance` — the writer's metadata update: blocks until the reader
//!   has acknowledged the *previous* step (bounded queue of depth 1 —
//!   back-pressure is where "blocking time if the reader is not yet
//!   ready" appears);
//! * `write` — ships the serialized [`BpStep`] (the marshaling copy;
//!   FlexPath is not yet zero-copy);
//! * readers `begin_step`/`end_step` around their analysis.
//!
//! Writers may `close` at any time (FlexPath supports dynamic
//! disconnection); endpoints drain remaining steps and observe EOF.
//!
//! Readers also survive writers that *die* rather than close: each
//! per-writer receive carries a deadline, and a writer that misses it is
//! recorded as a [`DeadWriter`] (steps and bytes received before the
//! loss) and dropped from the stream instead of hanging the endpoint.

use std::time::Duration;

use minimpi::Comm;

use crate::bp::BpStep;

const TAG_DATA: u32 = 0xAD10_0001;
const TAG_ACK: u32 = 0xAD10_0002;

/// Default per-writer receive deadline: generous enough for slow
/// simulation steps, small enough that a dead writer is diagnosed rather
/// than hanging the endpoint forever.
const DEFAULT_WRITER_DEADLINE: Duration = Duration::from_secs(30);

/// Message from writer to reader.
enum Frame {
    Step(Vec<u8>),
    Close,
}

// Frames travel as (bool is_close, Vec<u8>) to keep payload types simple
// across the Any-based channel.

/// This rank's role after [`pair`].
pub enum Role {
    /// A simulation (writer) rank.
    Writer {
        /// Sub-communicator over the writer group.
        sub: Comm,
        /// Transport handle to the paired endpoint.
        writer: FlexpathWriter,
    },
    /// An analysis (endpoint) rank.
    Endpoint {
        /// Sub-communicator over the endpoint group.
        sub: Comm,
        /// Transport handle to the served writers.
        reader: FlexpathReader,
    },
}

/// Split `world` into `n_writers` writers and the rest endpoints, and
/// wire the pairing: writer `w` publishes to endpoint `w % n_endpoints`.
///
/// # Panics
/// Panics unless `0 < n_writers < world.size()`.
pub fn pair(world: &Comm, n_writers: usize) -> Role {
    let p = world.size();
    assert!(n_writers > 0 && n_writers < p, "need writers and endpoints");
    let n_endpoints = p - n_writers;
    let me = world.rank();
    let is_writer = me < n_writers;
    let sub = world.split(u32::from(is_writer), me as u32);
    if is_writer {
        let peer = n_writers + (me % n_endpoints);
        Role::Writer {
            sub,
            writer: FlexpathWriter {
                peer,
                outstanding: false,
                closed: false,
            },
        }
    } else {
        let e = me - n_writers;
        let links: Vec<WriterLink> = (0..n_writers)
            .filter(|w| w % n_endpoints == e)
            .map(|rank| WriterLink {
                rank,
                steps: 0,
                bytes: 0,
            })
            .collect();
        Role::Endpoint {
            sub,
            reader: FlexpathReader {
                links,
                deadline: Some(DEFAULT_WRITER_DEADLINE),
                dead: Vec::new(),
            },
        }
    }
}

/// Writer-side transport handle.
pub struct FlexpathWriter {
    peer: usize,
    outstanding: bool,
    closed: bool,
}

impl FlexpathWriter {
    /// The endpoint rank this writer publishes to (world index).
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Metadata advance: waits for the reader's acknowledgment of the
    /// previous step (returns the blocking seconds, the Fig. 8
    /// `adios::advance`+blocking component).
    pub fn advance(&mut self, world: &Comm) -> f64 {
        assert!(!self.closed, "advance after close");
        if !self.outstanding {
            return 0.0;
        }
        let t0 = probe::time::now_seconds();
        let _ack: u64 = world.recv(self.peer, TAG_ACK);
        self.outstanding = false;
        (probe::time::now_seconds() - t0).max(0.0)
    }

    /// Ship one step (serializes = the marshaling copy). Returns the
    /// bytes shipped.
    pub fn write(&mut self, world: &Comm, step: &BpStep) -> usize {
        let mut scratch = Vec::new();
        self.write_with_scratch(world, step, &mut scratch)
    }

    /// Ship one step, encoding through a caller-owned arena buffer.
    ///
    /// The step is serialized with [`BpStep::encode_into`], so a writer
    /// that keeps `scratch` across steps pays zero allocations for the
    /// marshaling once the buffer's capacity has warmed up; the only
    /// remaining per-step allocation is the transport's owned copy of
    /// the frame (the channel consumes it at the endpoint). Returns the
    /// bytes shipped.
    pub fn write_with_scratch(
        &mut self,
        world: &Comm,
        step: &BpStep,
        scratch: &mut Vec<u8>,
    ) -> usize {
        assert!(!self.closed, "write after close");
        assert!(!self.outstanding, "write without advance");
        step.encode_into(scratch);
        let n = scratch.len();
        world.send(self.peer, TAG_DATA, (false, scratch.clone()));
        self.outstanding = true;
        n
    }

    /// Disconnect from the endpoint.
    pub fn close(&mut self, world: &Comm) {
        if !self.closed {
            if self.outstanding {
                let _ack: u64 = world.recv(self.peer, TAG_ACK);
                self.outstanding = false;
            }
            world.send(self.peer, TAG_DATA, (true, Vec::<u8>::new()));
            self.closed = true;
        }
    }
}

/// Per-writer stream accounting on the reader side.
#[derive(Clone, Debug)]
struct WriterLink {
    rank: usize,
    steps: u64,
    bytes: usize,
}

/// A writer that stopped talking mid-stream: what was received before the
/// loss, for the endpoint's failure report.
#[derive(Clone, Debug)]
pub struct DeadWriter {
    /// World rank of the lost writer.
    pub rank: usize,
    /// Steps fully received before the writer went silent.
    pub steps_received: u64,
    /// Payload bytes received before the writer went silent.
    pub bytes_received: usize,
    /// How long the reader waited before declaring it dead.
    pub waited: Duration,
}

impl From<&DeadWriter> for sensei::FailureReport {
    fn from(d: &DeadWriter) -> Self {
        sensei::FailureReport::DeadWriter {
            rank: d.rank,
            steps_received: d.steps_received,
            bytes_received: d.bytes_received as u64,
            waited: d.waited,
        }
    }
}

/// Reader-side transport handle.
pub struct FlexpathReader {
    links: Vec<WriterLink>,
    deadline: Option<Duration>,
    dead: Vec<DeadWriter>,
}

impl FlexpathReader {
    /// World ranks of the writers this endpoint still serves.
    pub fn writers(&self) -> Vec<usize> {
        self.links.iter().map(|l| l.rank).collect()
    }

    /// Override the per-writer receive deadline (tests use short ones).
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = Some(deadline);
    }

    /// Wait forever for each writer, as the pre-fail-fast transport did.
    pub fn without_deadline(&mut self) {
        self.deadline = None;
    }

    /// Writers lost mid-stream so far (missed their receive deadline).
    pub fn dead_writers(&self) -> &[DeadWriter] {
        &self.dead
    }

    /// Receive one step from every still-connected writer. Returns
    /// `None` once all writers have closed or died. Steps arrive with
    /// their source world rank. A writer that misses the deadline is
    /// recorded in [`FlexpathReader::dead_writers`] and dropped; the
    /// stream degrades to end-of-stream instead of hanging.
    ///
    /// Internally this is one event-loop round over a multi-peer
    /// select ([`Comm::recv_any_of_deadline`]): whichever writer is
    /// ready first is served first, so one slow writer no longer
    /// serializes the round behind a fixed receive order, and one
    /// deadline window covers all stragglers at once instead of
    /// costing a full deadline per dead writer. The returned steps are
    /// sorted by writer rank, so downstream block order is independent
    /// of arrival order.
    pub fn begin_step(&mut self, world: &Comm) -> Option<Vec<(usize, BpStep)>> {
        if self.links.is_empty() {
            return None;
        }
        let mut steps: Vec<(usize, BpStep)> = Vec::with_capacity(self.links.len());
        // Writers still owing a frame this round; shrinks as frames
        // arrive.
        let mut awaiting: Vec<usize> = self.links.iter().map(|l| l.rank).collect();
        while !awaiting.is_empty() {
            let (w, frame): (usize, (bool, Vec<u8>)) = match self.deadline {
                None => world.recv_any_of(&awaiting, TAG_DATA),
                Some(limit) => match world.recv_any_of_deadline(&awaiting, TAG_DATA, limit) {
                    Ok(got) => got,
                    Err(_) => {
                        // Every writer still awaited was silent for the
                        // whole window: declare them all dead in one
                        // decision.
                        for &rank in &awaiting {
                            if let Some(i) = self.links.iter().position(|l| l.rank == rank) {
                                let link = self.links.remove(i);
                                self.dead.push(DeadWriter {
                                    rank,
                                    steps_received: link.steps,
                                    bytes_received: link.bytes,
                                    waited: limit,
                                });
                            }
                        }
                        break;
                    }
                },
            };
            awaiting.retain(|&r| r != w);
            match decode_frame(frame) {
                Frame::Close => {
                    self.links.retain(|l| l.rank != w);
                }
                Frame::Step(bytes) => {
                    let step = BpStep::decode(&bytes)
                        .unwrap_or_else(|e| panic!("flexpath: bad step from rank {w}: {e}"));
                    if let Some(link) = self.links.iter_mut().find(|l| l.rank == w) {
                        link.steps += 1;
                        link.bytes += bytes.len();
                    }
                    steps.push((w, step));
                }
            }
        }
        // Arrival order is schedule-dependent; block order must not be.
        steps.sort_by_key(|(w, _)| *w);
        if steps.is_empty() {
            None
        } else {
            Some(steps)
        }
    }

    /// Acknowledge the current step to the writers that sent it,
    /// releasing their back-pressure. Best-effort: a writer that died
    /// after sending must not take the endpoint down with it.
    pub fn end_step(&self, world: &Comm, sources: &[(usize, BpStep)]) {
        for (w, step) in sources {
            world.try_send(*w, TAG_ACK, step.step);
        }
    }
}

fn decode_frame((is_close, bytes): (bool, Vec<u8>)) -> Frame {
    if is_close {
        Frame::Close
    } else {
        Frame::Step(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bp::BpVar;
    use minimpi::World;

    fn step_with(step: u64, v: f64) -> BpStep {
        let mut s = BpStep::new(step, step as f64 * 0.1);
        s.vars.push(BpVar::new(
            "data",
            [2, 1, 1],
            [0, 0, 0],
            [2, 1, 1],
            vec![v, v],
        ));
        s
    }

    #[test]
    fn one_writer_one_endpoint_streams_steps() {
        World::run(2, |world| match pair(world, 1) {
            Role::Writer { sub, mut writer } => {
                assert_eq!(sub.size(), 1);
                for s in 0..5u64 {
                    writer.advance(world);
                    writer.write(world, &step_with(s, s as f64));
                }
                writer.close(world);
            }
            Role::Endpoint { sub, mut reader } => {
                assert_eq!(sub.size(), 1);
                let mut seen = 0u64;
                while let Some(steps) = reader.begin_step(world) {
                    assert_eq!(steps.len(), 1);
                    assert_eq!(steps[0].1.step, seen);
                    assert_eq!(steps[0].1.var("data").unwrap().data[0], seen as f64);
                    reader.end_step(world, &steps);
                    seen += 1;
                }
                assert_eq!(seen, 5);
            }
        });
    }

    #[test]
    fn many_writers_fan_in_to_fewer_endpoints() {
        // 4 writers, 2 endpoints: each endpoint serves 2 writers.
        World::run(6, |world| match pair(world, 4) {
            Role::Writer { mut writer, .. } => {
                for s in 0..3u64 {
                    writer.advance(world);
                    writer.write(world, &step_with(s, world.rank() as f64));
                }
                writer.close(world);
            }
            Role::Endpoint { mut reader, .. } => {
                assert_eq!(reader.writers().len(), 2);
                let mut rounds = 0;
                while let Some(steps) = reader.begin_step(world) {
                    assert_eq!(steps.len(), 2, "one step per served writer");
                    reader.end_step(world, &steps);
                    rounds += 1;
                }
                assert_eq!(rounds, 3);
            }
        });
    }

    #[test]
    fn back_pressure_blocks_writer() {
        World::run(2, |world| match pair(world, 1) {
            Role::Writer { mut writer, .. } => {
                let b0 = writer.advance(world);
                assert_eq!(b0, 0.0, "first advance never blocks");
                writer.write(world, &step_with(0, 0.0));
                // Reader sleeps before acking; this advance must block.
                let blocked = writer.advance(world);
                assert!(blocked > 0.02, "advance blocked {blocked}s");
                writer.write(world, &step_with(1, 1.0));
                writer.close(world);
            }
            Role::Endpoint { mut reader, .. } => {
                let first = reader.begin_step(world).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(40));
                reader.end_step(world, &first);
                let second = reader.begin_step(world).unwrap();
                reader.end_step(world, &second);
                assert!(reader.begin_step(world).is_none());
            }
        });
    }

    #[test]
    fn subcommunicators_are_usable_for_analysis() {
        World::run(4, |world| match pair(world, 2) {
            Role::Writer { sub, mut writer } => {
                // Writers can still do collective work among themselves.
                let total = sub.allreduce_scalar(1usize, |a, b| a + b);
                assert_eq!(total, 2);
                writer.close(world);
            }
            Role::Endpoint { sub, mut reader } => {
                let total = sub.allreduce_scalar(1usize, |a, b| a + b);
                assert_eq!(total, 2);
                while reader.begin_step(world).is_some() {}
            }
        });
    }

    #[test]
    #[should_panic(expected = "need writers and endpoints")]
    fn all_writers_is_invalid() {
        World::run(2, |world| {
            let _ = pair(world, 2);
        });
    }
}
