//! Sharded multi-tenant staging broker: one producer, N subscribers.
//!
//! The paper's §5 design discussion argues that in transit staging must
//! serve *many* concurrent analysis endpoints without perturbing the
//! simulation. The seed transport ([`crate::flexpath`]) is a
//! one-writer/one-reader pipe: adding a consumer meant adding a rank
//! and a dedicated blocking receive. This module generalizes it into a
//! topic broker:
//!
//! * **Topics** are keyed by `(field, leaf-shard)` — the unit a
//!   consumer actually wants ("the `data` array of leaf 3"), matching
//!   the BP-lite block decomposition one topic per
//!   [`crate::bp::BpVar`] stream.
//! * **Fan-out** shares one `Arc` payload across every subscriber
//!   queue: publishing to 1 000 subscribers costs 1 000 pointer pushes,
//!   not 1 000 payload copies.
//! * **Bounded queues + backpressure**: each subscription holds at most
//!   `queue_depth` undelivered messages. A publish that finds a queue
//!   full waits — bounded by `eviction_deadline` — for the consumer to
//!   drain, generalizing the depth-1 advance/ack handshake of the
//!   FlexPath pipe.
//! * **Admission control**: a topic accepts at most `max_subscribers`
//!   live subscriptions; later arrivals are rejected with a typed
//!   error instead of silently degrading everyone's bandwidth.
//! * **Slow-consumer eviction**: a subscriber that stays full past the
//!   deadline is evicted and recorded as an [`EvictionRecord`] — the
//!   same degrade-don't-hang contract as the reader-side
//!   [`crate::flexpath::DeadWriter`], applied to the consumer side.
//! * **Single event loop**: there is no thread per subscriber or per
//!   link. Every `publish` call *is* one dispatcher tick: it prunes
//!   disconnected subscriptions, admits queued state changes, delivers
//!   to every live queue, and applies the eviction policy. Consumers
//!   only ever touch their own queue's lock, never the broker's.
//!
//! Determinism: the broker never spawns a thread and reads time only
//! through [`probe::time`], so under the deterministic scheduler
//! (virtual clock) a publish/poll sequence — including eviction
//! decisions — replays byte-identically.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::bp::{BpStep, BpVar};

/// Default bound on undelivered messages per subscription.
const DEFAULT_QUEUE_DEPTH: usize = 4;

/// Default cap on live subscriptions per topic.
const DEFAULT_MAX_SUBSCRIBERS: usize = 4096;

/// Default slow-consumer deadline, matching the FlexPath reader's
/// writer deadline: generous in production, overridden short in tests.
const DEFAULT_EVICTION_DEADLINE: Duration = Duration::from_secs(30);

/// Topic address: one field (array name) on one leaf shard of the
/// block decomposition.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicKey {
    /// Array name, e.g. `"data"`.
    pub field: String,
    /// Leaf shard (the BP-lite `leaf` block id).
    pub shard: u32,
}

impl TopicKey {
    /// Build a key from anything string-ish.
    pub fn new(field: impl Into<String>, shard: u32) -> Self {
        TopicKey {
            field: field.into(),
            shard,
        }
    }
}

impl fmt::Display for TopicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.field, self.shard)
    }
}

/// Broker tuning knobs; the defaults suit production-sized runs, tests
/// shrink them to force the interesting transitions.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Max undelivered messages per subscription queue.
    pub queue_depth: usize,
    /// Max live subscriptions per topic (admission control).
    pub max_subscribers: usize,
    /// How long a publish waits on a full queue before evicting the
    /// consumer. Measured on [`probe::time`], so virtual under the
    /// deterministic scheduler.
    pub eviction_deadline: Duration,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_subscribers: DEFAULT_MAX_SUBSCRIBERS,
            eviction_deadline: DEFAULT_EVICTION_DEADLINE,
        }
    }
}

/// Why a subscription was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The topic already carries `max_subscribers` live subscriptions.
    TopicAtCapacity {
        /// The refused topic.
        topic: TopicKey,
        /// The configured cap.
        limit: usize,
    },
    /// The topic has already seen end-of-stream; a new subscription
    /// could never receive anything.
    Finished {
        /// The refused topic.
        topic: TopicKey,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::TopicAtCapacity { topic, limit } => {
                write!(f, "topic {topic} at capacity ({limit} subscribers)")
            }
            AdmissionError::Finished { topic } => {
                write!(f, "topic {topic} already finished")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One delivered message: the per-topic sequence number and the shared
/// payload.
#[derive(Debug)]
pub struct TopicMsg<T> {
    /// Per-topic publish sequence (0-based, contiguous).
    pub seq: u64,
    /// The payload, shared across every subscriber of the topic.
    pub payload: Arc<T>,
}

// Hand-rolled so cloning never demands `T: Clone` — a clone shares the
// payload `Arc`, it does not copy the payload.
impl<T> Clone for TopicMsg<T> {
    fn clone(&self) -> Self {
        TopicMsg {
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }
}

/// A consumer evicted for falling behind: what it had consumed before
/// the loss, for the bridge's failure report. This is the consumer-side
/// generalization of [`crate::flexpath::DeadWriter`].
#[derive(Clone, Debug)]
pub struct EvictionRecord {
    /// Broker-wide subscription id.
    pub client: u64,
    /// Caller-supplied label (e.g. `"analysis-774"`), empty if none.
    pub label: String,
    /// The topic the consumer was evicted from.
    pub topic: TopicKey,
    /// Messages pushed into the consumer's queue before eviction.
    pub delivered: u64,
    /// Messages the consumer actually drained before eviction.
    pub consumed: u64,
    /// The sequence number of the publish that evicted it (never
    /// delivered to this consumer).
    pub dropped_seq: u64,
    /// How long the dispatcher waited for the queue to drain.
    pub waited: Duration,
}

impl EvictionRecord {
    /// One-line description for [`sensei::Bridge::record_failure`].
    pub fn describe(&self) -> String {
        sensei::FailureReport::from(self).to_string()
    }
}

impl From<&EvictionRecord> for sensei::FailureReport {
    fn from(e: &EvictionRecord) -> Self {
        sensei::FailureReport::Eviction {
            consumer: if e.label.is_empty() {
                format!("client {}", e.client)
            } else {
                e.label.clone()
            },
            topic: e.topic.to_string(),
            delivered: e.delivered,
            consumed: e.consumed,
            dropped_seq: e.dropped_seq,
            waited: e.waited,
        }
    }
}

impl From<EvictionRecord> for sensei::FailureReport {
    fn from(e: EvictionRecord) -> Self {
        (&e).into()
    }
}

/// Outcome of one publish tick.
#[derive(Clone, Debug, Default)]
pub struct PublishReport {
    /// Sequence number assigned to the published message.
    pub seq: u64,
    /// Subscriptions the message was delivered to.
    pub delivered: usize,
    /// Consumers evicted by this tick (also queued on the broker; see
    /// [`Broker::take_evictions`]).
    pub evicted: usize,
}

/// Subscription lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SubPhase {
    Live,
    Evicted,
    Closed,
}

/// Consumer-side queue state. Guarded by its own mutex so draining
/// never touches the broker lock.
struct SubState<T> {
    phase: SubPhase,
    queue: VecDeque<TopicMsg<T>>,
    /// End-of-stream flag: no further messages will arrive.
    finished: bool,
    /// Messages pushed into the queue by the dispatcher.
    delivered: u64,
    /// Messages drained by the consumer.
    consumed: u64,
    /// Sequence number of the first message this subscription was
    /// eligible for (admission point).
    joined_seq: u64,
    /// High-water queue occupancy.
    queue_peak: usize,
}

/// Public snapshot of a subscription's accounting.
#[derive(Clone, Debug)]
pub struct SubStats {
    /// Messages pushed into the queue by the dispatcher.
    pub delivered: u64,
    /// Messages drained by the consumer.
    pub consumed: u64,
    /// First sequence number this subscription was eligible for.
    pub joined_seq: u64,
    /// High-water queue occupancy (never exceeds `queue_depth`).
    pub queue_peak: usize,
    /// Was this consumer evicted?
    pub evicted: bool,
}

struct SubEntry<T> {
    id: u64,
    label: String,
    state: Arc<(Mutex<SubState<T>>, Condvar)>,
}

struct Topic<T> {
    key: TopicKey,
    next_seq: u64,
    finished: bool,
    subs: Vec<SubEntry<T>>,
}

struct Inner<T> {
    config: BrokerConfig,
    topics: Vec<Topic<T>>,
    next_client: u64,
    evictions: Vec<EvictionRecord>,
    probe: probe::Probe,
}

impl<T> Inner<T> {
    fn topic_mut(&mut self, key: &TopicKey) -> &mut Topic<T> {
        if let Some(i) = self.topics.iter().position(|t| &t.key == key) {
            return &mut self.topics[i];
        }
        self.topics.push(Topic {
            key: key.clone(),
            next_seq: 0,
            finished: false,
            subs: Vec::new(),
        });
        let last = self.topics.len() - 1;
        &mut self.topics[last]
    }
}

/// The broker handle. Cheap to clone; clones share the topic registry.
pub struct Broker<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for Broker<T> {
    fn clone(&self) -> Self {
        Broker {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + Sync + 'static> Default for Broker<T> {
    fn default() -> Self {
        Broker::new(BrokerConfig::default())
    }
}

/// The staging broker instantiation used on the wire path: topics carry
/// BP-lite variable blocks.
pub type StagingBroker = Broker<BpVar>;

impl<T: Send + Sync + 'static> Broker<T> {
    /// A broker with the given knobs.
    pub fn new(config: BrokerConfig) -> Self {
        assert!(config.queue_depth > 0, "broker: queue_depth must be > 0");
        assert!(
            config.max_subscribers > 0,
            "broker: max_subscribers must be > 0"
        );
        Broker {
            inner: Arc::new(Mutex::new(Inner {
                config,
                topics: Vec::new(),
                next_client: 0,
                evictions: Vec::new(),
                probe: probe::off(),
            })),
        }
    }

    /// Attach an observability probe: publishes then count per-topic
    /// throughput (`broker/<topic>/out` calls/messages/bytes are the
    /// caller's own `message` recordings), queue high-water marks
    /// (`broker/<topic>/queue_peak`) and evictions
    /// (`broker/evictions`).
    pub fn attach_probe(&self, probe: probe::Probe) {
        self.inner.lock().probe = probe;
    }

    /// Subscribe to `topic`. The subscription sees every message
    /// published after admission, in order, until it disconnects, is
    /// evicted, or the topic finishes.
    pub fn subscribe(&self, topic: TopicKey) -> Result<Subscription<T>, AdmissionError> {
        self.subscribe_labeled(topic, "")
    }

    /// [`Broker::subscribe`] with a human-readable consumer label that
    /// eviction records carry into failure reports.
    pub fn subscribe_labeled(
        &self,
        topic: TopicKey,
        label: impl Into<String>,
    ) -> Result<Subscription<T>, AdmissionError> {
        let mut inner = self.inner.lock();
        let limit = inner.config.max_subscribers;
        let id = inner.next_client;
        let t = inner.topic_mut(&topic);
        if t.finished {
            return Err(AdmissionError::Finished { topic });
        }
        // Disconnected consumers are pruned lazily by the dispatcher;
        // prune here too so capacity counts only live subscriptions.
        t.subs.retain(|s| s.state.0.lock().phase == SubPhase::Live);
        if t.subs.len() >= limit {
            return Err(AdmissionError::TopicAtCapacity { topic, limit });
        }
        let state = Arc::new((
            Mutex::new(SubState {
                phase: SubPhase::Live,
                queue: VecDeque::new(),
                finished: false,
                delivered: 0,
                consumed: 0,
                joined_seq: t.next_seq,
                queue_peak: 0,
            }),
            Condvar::new(),
        ));
        t.subs.push(SubEntry {
            id,
            label: label.into(),
            state: state.clone(),
        });
        inner.next_client += 1;
        Ok(Subscription {
            id,
            topic,
            state,
            depth: inner.config.queue_depth,
        })
    }

    /// Publish one message to `topic` — one dispatcher tick. Delivers
    /// the shared payload to every live subscription, waiting (up to
    /// the eviction deadline) for full queues to drain and evicting
    /// consumers that never do. Returns what happened.
    ///
    /// # Panics
    /// Panics if the topic has already been [`Broker::finish`]ed —
    /// publishing past end-of-stream is a program bug.
    pub fn publish(&self, topic: &TopicKey, payload: T) -> PublishReport {
        let mut inner = self.inner.lock();
        let config = inner.config.clone();
        let probe = inner.probe.clone();
        let t = inner.topic_mut(topic);
        assert!(!t.finished, "broker: publish to finished topic {topic}");
        let seq = t.next_seq;
        t.next_seq += 1;
        let msg = TopicMsg {
            seq,
            payload: Arc::new(payload),
        };

        // Dispatch pass: deliver where there is room, collect the
        // stalled. Disconnected/evicted subscriptions are pruned —
        // this publish tick is the event loop's housekeeping point.
        let mut stalled: Vec<usize> = Vec::new();
        let mut delivered = 0usize;
        t.subs
            .retain(|s| s.state.0.lock().phase != SubPhase::Closed);
        for (i, sub) in t.subs.iter().enumerate() {
            let (lock, cond) = &*sub.state;
            let mut st = lock.lock();
            // Closed entries were pruned above; anything non-Live
            // (raced disconnect) just gets skipped and pruned on the
            // next tick.
            if st.phase == SubPhase::Live {
                if st.queue.len() < config.queue_depth {
                    push_msg(&mut st, msg.clone());
                    cond.notify_all();
                    delivered += 1;
                } else {
                    stalled.push(i);
                }
            }
        }

        // Backpressure: wait — bounded — for stalled consumers. Time
        // flows through probe::time, so this loop is deterministic
        // under the virtual clock (each poll advances it one tick) and
        // wall-bounded otherwise.
        let mut evicted_now: Vec<EvictionRecord> = Vec::new();
        if !stalled.is_empty() {
            let start = probe::time::now_seconds();
            let deadline = config.eviction_deadline.as_secs_f64();
            loop {
                stalled.retain(|&i| {
                    let (lock, cond) = &*t.subs[i].state;
                    let mut st = lock.lock();
                    match st.phase {
                        SubPhase::Live if st.queue.len() < config.queue_depth => {
                            push_msg(&mut st, msg.clone());
                            cond.notify_all();
                            delivered += 1;
                            false
                        }
                        SubPhase::Live => true,
                        // Consumer went away while we waited for it.
                        _ => false,
                    }
                });
                if stalled.is_empty() {
                    break;
                }
                let waited = (probe::time::now_seconds() - start).max(0.0);
                if waited >= deadline {
                    for &i in &stalled {
                        let sub = &t.subs[i];
                        let (lock, cond) = &*sub.state;
                        let mut st = lock.lock();
                        st.phase = SubPhase::Evicted;
                        cond.notify_all();
                        evicted_now.push(EvictionRecord {
                            client: sub.id,
                            label: sub.label.clone(),
                            topic: topic.clone(),
                            delivered: st.delivered,
                            consumed: st.consumed,
                            dropped_seq: seq,
                            waited: Duration::from_secs_f64(waited),
                        });
                    }
                    break;
                }
                // Under a scheduled world each poll is a spin at a
                // yield point, so the liveness checker can flag a
                // publisher stuck behind a consumer that never drains.
                minimpi::sched::yield_point();
                if !probe::time::is_virtual() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            t.subs.retain(|s| s.state.0.lock().phase == SubPhase::Live);
        }

        if probe.is_enabled() {
            let name = probe::key::scoped("broker", topic, "fanout");
            let bytes = delivered as u64 * std::mem::size_of::<TopicMsg<T>>() as u64;
            probe.bulk(&name, 1, delivered as u64, bytes);
            let peak = t
                .subs
                .iter()
                .map(|s| s.state.0.lock().queue.len())
                .max()
                .unwrap_or(0);
            probe.gauge_max(
                &probe::key::scoped("broker", topic, "queue_peak"),
                peak as u64,
            );
            if !evicted_now.is_empty() {
                probe.bulk(
                    &probe::key::of("broker", "evictions"),
                    evicted_now.len() as u64,
                    0,
                    0,
                );
            }
        }
        let report = PublishReport {
            seq,
            delivered,
            evicted: evicted_now.len(),
        };
        inner.evictions.extend(evicted_now);
        report
    }

    /// Mark `topic` end-of-stream: live subscriptions drain what is
    /// queued and then observe EOS; new subscriptions are refused.
    pub fn finish(&self, topic: &TopicKey) {
        let mut inner = self.inner.lock();
        let t = inner.topic_mut(topic);
        t.finished = true;
        for sub in &t.subs {
            let (lock, cond) = &*sub.state;
            lock.lock().finished = true;
            cond.notify_all();
        }
    }

    /// Mark every topic end-of-stream.
    pub fn finish_all(&self) {
        let keys: Vec<TopicKey> = {
            let inner = self.inner.lock();
            inner.topics.iter().map(|t| t.key.clone()).collect()
        };
        for key in keys {
            self.finish(&key);
        }
    }

    /// Drain the eviction log (consumers evicted since the last call).
    /// Feed these to [`sensei::Bridge::record_failure`] via
    /// [`EvictionRecord::describe`].
    pub fn take_evictions(&self) -> Vec<EvictionRecord> {
        std::mem::take(&mut self.inner.lock().evictions)
    }

    /// Live subscription count on `topic` (0 for unknown topics).
    pub fn subscriber_count(&self, topic: &TopicKey) -> usize {
        let inner = self.inner.lock();
        inner
            .topics
            .iter()
            .find(|t| &t.key == topic)
            .map(|t| {
                t.subs
                    .iter()
                    .filter(|s| s.state.0.lock().phase == SubPhase::Live)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Messages published to `topic` so far.
    pub fn published(&self, topic: &TopicKey) -> u64 {
        let inner = self.inner.lock();
        inner
            .topics
            .iter()
            .find(|t| &t.key == topic)
            .map(|t| t.next_seq)
            .unwrap_or(0)
    }

    /// Delivery fairness across `topic`'s live subscribers:
    /// `min(delivered) / max(delivered)`, 1.0 when perfectly fair,
    /// `None` when the topic has no live subscribers (or none has been
    /// delivered anything yet).
    pub fn fairness(&self, topic: &TopicKey) -> Option<f64> {
        let inner = self.inner.lock();
        let t = inner.topics.iter().find(|t| &t.key == topic)?;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut any = false;
        for s in &t.subs {
            let st = s.state.0.lock();
            if st.phase == SubPhase::Live {
                min = min.min(st.delivered);
                max = max.max(st.delivered);
                any = true;
            }
        }
        if !any || max == 0 {
            return None;
        }
        Some(min as f64 / max as f64)
    }
}

impl StagingBroker {
    /// Route one decoded BP-lite step onto the broker: each variable
    /// block publishes to its `(field, leaf)` topic. One payload clone
    /// per variable, shared from there across all subscribers.
    pub fn publish_step(&self, step: &BpStep) -> Vec<PublishReport> {
        step.vars
            .iter()
            .map(|v| self.publish(&TopicKey::new(v.name.clone(), v.leaf), v.clone()))
            .collect()
    }
}

fn push_msg<T>(st: &mut SubState<T>, msg: TopicMsg<T>) {
    st.queue.push_back(msg);
    st.delivered += 1;
    st.queue_peak = st.queue_peak.max(st.queue.len());
}

/// One consumer's handle on a topic. Dropping it disconnects.
pub struct Subscription<T> {
    id: u64,
    topic: TopicKey,
    state: Arc<(Mutex<SubState<T>>, Condvar)>,
    depth: usize,
}

impl<T> Subscription<T> {
    /// Broker-wide subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The subscribed topic.
    pub fn topic(&self) -> &TopicKey {
        &self.topic
    }

    /// Non-blocking poll: the next queued message, if any.
    pub fn try_next(&self) -> Option<TopicMsg<T>> {
        let mut st = self.state.0.lock();
        let msg = st.queue.pop_front()?;
        st.consumed += 1;
        Some(msg)
    }

    /// Blocking receive with a wall-clock deadline: `Ok(Some(msg))` on
    /// delivery, `Ok(None)` at end-of-stream (topic finished and queue
    /// drained, or this consumer was evicted), `Err(())` on timeout.
    ///
    /// Meant for free-running consumer threads (e.g. a drain thread);
    /// deterministic single-threaded drivers should poll
    /// [`Subscription::try_next`] instead.
    #[allow(clippy::result_unit_err)]
    pub fn recv_deadline(&self, timeout: Duration) -> Result<Option<TopicMsg<T>>, ()> {
        let (lock, cond) = &*self.state;
        let mut st = lock.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                st.consumed += 1;
                return Ok(Some(msg));
            }
            if st.finished || st.phase != SubPhase::Live {
                return Ok(None);
            }
            if cond.wait_for(&mut st, timeout) {
                return Err(());
            }
        }
    }

    /// Has the dispatcher evicted this consumer?
    pub fn is_evicted(&self) -> bool {
        self.state.0.lock().phase == SubPhase::Evicted
    }

    /// End-of-stream: the topic finished and everything queued has been
    /// drained (or the consumer is no longer live).
    pub fn is_eos(&self) -> bool {
        let st = self.state.0.lock();
        (st.finished && st.queue.is_empty()) || st.phase != SubPhase::Live
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> SubStats {
        let st = self.state.0.lock();
        SubStats {
            delivered: st.delivered,
            consumed: st.consumed,
            joined_seq: st.joined_seq,
            queue_peak: st.queue_peak,
            evicted: st.phase == SubPhase::Evicted,
        }
    }

    /// The configured queue bound (for occupancy assertions).
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    /// Explicit disconnect; equivalent to dropping the handle.
    pub fn disconnect(&self) {
        let (lock, cond) = &*self.state;
        let mut st = lock.lock();
        if st.phase == SubPhase::Live {
            st.phase = SubPhase::Closed;
        }
        cond.notify_all();
    }
}

impl<T> Drop for Subscription<T> {
    fn drop(&mut self) {
        self.disconnect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(depth: usize, max_subs: usize, deadline_ms: u64) -> BrokerConfig {
        BrokerConfig {
            queue_depth: depth,
            max_subscribers: max_subs,
            eviction_deadline: Duration::from_millis(deadline_ms),
        }
    }

    #[test]
    fn fan_out_shares_one_payload() {
        let broker: Broker<Vec<f64>> = Broker::new(cfg(4, 16, 100));
        let key = TopicKey::new("data", 0);
        let subs: Vec<_> = (0..8)
            .map(|_| broker.subscribe(key.clone()).unwrap())
            .collect();
        let report = broker.publish(&key, vec![1.0; 1024]);
        assert_eq!((report.seq, report.delivered, report.evicted), (0, 8, 0));
        let mut payloads = vec![];
        for s in &subs {
            let msg = s.try_next().expect("delivered");
            assert_eq!(msg.seq, 0);
            payloads.push(msg.payload);
        }
        // All eight handles alias the same allocation.
        for p in &payloads[1..] {
            assert!(Arc::ptr_eq(&payloads[0], p));
        }
    }

    #[test]
    fn admission_control_caps_subscribers() {
        let broker: Broker<u32> = Broker::new(cfg(2, 3, 50));
        let key = TopicKey::new("data", 0);
        let _live: Vec<_> = (0..3)
            .map(|_| broker.subscribe(key.clone()).unwrap())
            .collect();
        match broker.subscribe(key.clone()).err() {
            Some(AdmissionError::TopicAtCapacity { limit, .. }) => assert_eq!(limit, 3),
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        // A disconnect frees the slot.
        _live[0].disconnect();
        assert!(broker.subscribe(key.clone()).is_ok());
    }

    #[test]
    fn finished_topic_refuses_new_subscribers() {
        let broker: Broker<u32> = Broker::new(cfg(2, 8, 50));
        let key = TopicKey::new("data", 1);
        let sub = broker.subscribe(key.clone()).unwrap();
        broker.publish(&key, 7);
        broker.finish(&key);
        assert!(matches!(
            broker.subscribe(key.clone()),
            Err(AdmissionError::Finished { .. })
        ));
        // Existing subscriber drains the queue, then sees EOS.
        assert_eq!(*sub.try_next().unwrap().payload, 7);
        assert!(sub.is_eos());
        assert!(matches!(
            sub.recv_deadline(Duration::from_millis(10)),
            Ok(None)
        ));
    }

    #[test]
    fn slow_consumer_evicted_without_stalling_others() {
        let broker: Broker<u64> = Broker::new(cfg(2, 8, 20));
        let key = TopicKey::new("data", 0);
        let fast = broker.subscribe_labeled(key.clone(), "fast").unwrap();
        let slow = broker.subscribe_labeled(key.clone(), "slow").unwrap();
        let mut got = 0u64;
        for i in 0..6u64 {
            broker.publish(&key, i);
            // Only the fast consumer drains.
            while let Some(msg) = fast.try_next() {
                assert_eq!(*msg.payload, got);
                got += 1;
            }
            let _ = msg_noop(&slow, i);
        }
        assert_eq!(got, 6, "fast consumer saw every step");
        assert!(slow.is_evicted());
        let evictions = broker.take_evictions();
        assert_eq!(evictions.len(), 1);
        let e = &evictions[0];
        assert_eq!(e.label, "slow");
        assert_eq!(e.delivered, 2, "queue bound is 2");
        assert_eq!(e.consumed, 0);
        assert_eq!(e.dropped_seq, 2, "third publish hit the full queue");
        assert!(e.describe().contains("slow"));
        // The fast consumer keeps receiving after the eviction.
        broker.publish(&key, 6);
        assert_eq!(*fast.try_next().unwrap().payload, 6);
        assert_eq!(broker.subscriber_count(&key), 1);
    }

    // The slow consumer never drains; this helper only exists to make
    // the intent explicit at the call site.
    fn msg_noop(sub: &Subscription<u64>, _i: u64) -> usize {
        sub.stats().queue_peak
    }

    #[test]
    fn queue_occupancy_never_exceeds_bound() {
        let p = probe::enabled();
        let broker: Broker<u64> = Broker::new(cfg(3, 4, 10));
        broker.attach_probe(p.clone());
        let key = TopicKey::new("field", 2);
        let sub = broker.subscribe(key.clone()).unwrap();
        let lazy = broker.subscribe(key.clone()).unwrap();
        for i in 0..10u64 {
            broker.publish(&key, i);
            if i % 2 == 0 {
                let _ = sub.try_next();
            }
            // `lazy` drains just enough to stay admitted.
            while lazy.stats().delivered - lazy.stats().consumed >= 2 {
                let _ = lazy.try_next();
            }
        }
        assert!(sub.stats().queue_peak <= 3);
        assert!(lazy.stats().queue_peak <= 3);
        let gauge = p
            .snapshot()
            .gauge("broker/field#2/queue_peak")
            .expect("gauge recorded");
        assert!(gauge <= 3, "probe-observed peak {gauge} exceeds bound");
    }

    #[test]
    fn late_subscriber_sees_only_later_seqs() {
        let broker: Broker<u64> = Broker::new(cfg(8, 8, 50));
        let key = TopicKey::new("data", 0);
        let early = broker.subscribe(key.clone()).unwrap();
        broker.publish(&key, 0);
        broker.publish(&key, 1);
        let late = broker.subscribe(key.clone()).unwrap();
        broker.publish(&key, 2);
        assert_eq!(late.stats().joined_seq, 2);
        assert_eq!(late.try_next().unwrap().seq, 2);
        assert!(late.try_next().is_none());
        let seqs: Vec<u64> = std::iter::from_fn(|| early.try_next().map(|m| m.seq)).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn cross_thread_consumer_via_recv_deadline() {
        let broker: Broker<u64> = Broker::new(cfg(2, 4, 5000));
        let key = TopicKey::new("data", 0);
        let sub = broker.subscribe(key.clone()).unwrap();
        let consumer = std::thread::spawn(move || {
            let mut total = 0u64;
            loop {
                match sub.recv_deadline(Duration::from_secs(10)) {
                    Ok(Some(msg)) => total += *msg.payload,
                    Ok(None) => break,
                    Err(()) => panic!("consumer starved"),
                }
            }
            total
        });
        for i in 1..=100u64 {
            broker.publish(&key, i);
        }
        broker.finish(&key);
        assert_eq!(consumer.join().unwrap(), 100 * 101 / 2);
    }

    #[test]
    fn publish_step_routes_per_field_and_leaf() {
        use crate::bp::BpVar;
        let broker = StagingBroker::new(cfg(4, 8, 50));
        let s0 = broker.subscribe(TopicKey::new("data", 0)).unwrap();
        let s1 = broker.subscribe(TopicKey::new("data", 1)).unwrap();
        let g0 = broker.subscribe(TopicKey::new("ghost", 0)).unwrap();
        let mut step = BpStep::new(3, 0.3);
        step.vars
            .push(BpVar::new("data", [2, 1, 1], [0, 0, 0], [1, 1, 1], vec![1.0]).with_leaf(0));
        step.vars
            .push(BpVar::new("data", [2, 1, 1], [1, 0, 0], [1, 1, 1], vec![2.0]).with_leaf(1));
        step.vars
            .push(BpVar::new("ghost", [2, 1, 1], [0, 0, 0], [1, 1, 1], vec![0.0]).with_leaf(0));
        let reports = broker.publish_step(&step);
        assert_eq!(reports.len(), 3);
        assert_eq!(s0.try_next().unwrap().payload.data, vec![1.0]);
        assert_eq!(s1.try_next().unwrap().payload.data, vec![2.0]);
        assert_eq!(g0.try_next().unwrap().payload.name, "ghost");
        assert!(s0.try_next().is_none());
    }
}
