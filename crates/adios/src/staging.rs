//! The two-executable staging pattern: a writer-side SENSEI analysis
//! adaptor that ships data, and an endpoint loop that reconstructs
//! datasets and runs any SENSEI analyses *in transit* — so Catalyst,
//! Libsim, histogram, or autocorrelation run at the endpoint without the
//! simulation knowing which (Fig. 2's composability).

use datamodel::{DataArray, DataSet, Extent, ImageData, MultiBlock, ScalarType};
use minimpi::Comm;
use sensei::{
    AdaptorError, AnalysisAdaptor, Association, Bridge, DataAdaptor, RunReport, Steering,
};

use crate::bp::{BpStep, BpVar};
use crate::broker::StagingBroker;
use crate::flexpath::{FlexpathReader, FlexpathWriter};

/// Convert one timestep of a (structured) data adaptor into a BP step:
/// every 1-component point array of every image/rectilinear leaf becomes
/// a self-describing variable, keyed by its leaf index so a rank carrying
/// several leaves reconstructs into several blocks. Geometry attributes
/// are likewise keyed per leaf (`leaf{i}_spacing_{a}`), and each
/// variable's scalar type travels with it — notably keeping the
/// `vtkGhostType` u8 array recognizable as ghosts at the endpoint.
pub fn adaptor_to_step(data: &dyn DataAdaptor) -> BpStep {
    match try_adaptor_to_step(data) {
        Ok(step) => step,
        Err(err) => panic!("adaptor_to_step: {err}; use try_adaptor_to_step to marshal data that may live off-host"),
    }
}

/// Space-checked twin of [`adaptor_to_step`]: marshaling reads every
/// array through [`datamodel::DataArray::values_in`] from the calling
/// thread's memory space, so a device-resident array handed to a
/// host-side writer surfaces as [`AdaptorError::WrongSpace`] instead
/// of an unchecked read.
pub fn try_adaptor_to_step(data: &dyn DataAdaptor) -> Result<BpStep, AdaptorError> {
    let mesh = data.full_mesh();
    // Sanitizer: marshaling a BP step reads every array zero-copy;
    // hold a publish window across the walk.
    let _publish = datamodel::publish_dataset(&mesh, "adios");
    let mut step = BpStep::new(data.step(), data.time());
    for (leaf_id, leaf) in mesh.leaves().enumerate() {
        let (local, global, attrs, spacing, origin) = match leaf {
            DataSet::Image(g) => (
                g.extent,
                g.global_extent,
                &g.point_data,
                g.spacing,
                g.origin,
            ),
            DataSet::Rectilinear(g) => {
                let spacing = [
                    if g.x.len() > 1 { g.x[1] - g.x[0] } else { 1.0 },
                    if g.y.len() > 1 { g.y[1] - g.y[0] } else { 1.0 },
                    if g.z.len() > 1 { g.z[1] - g.z[0] } else { 1.0 },
                ];
                (
                    g.extent,
                    g.global_extent,
                    &g.point_data,
                    spacing,
                    [g.x[0], g.y[0], g.z[0]],
                )
            }
            _ => continue,
        };
        for a in 0..3 {
            step.set_attr(format!("leaf{leaf_id}_spacing_{a}"), spacing[a]);
            step.set_attr(format!("leaf{leaf_id}_origin_{a}"), origin[a]);
        }
        for arr in attrs.iter() {
            if arr.num_components() != 1 {
                continue;
            }
            let d = local.point_dims();
            let values = arr.values_in(0, datamodel::current_space())?;
            let gd = global.point_dims();
            step.vars.push(
                BpVar::new(
                    arr.name(),
                    [gd[0] as u64, gd[1] as u64, gd[2] as u64],
                    [
                        (local.lo[0] - global.lo[0]) as u64,
                        (local.lo[1] - global.lo[1]) as u64,
                        (local.lo[2] - global.lo[2]) as u64,
                    ],
                    [d[0] as u64, d[1] as u64, d[2] as u64],
                    values,
                )
                .with_dtype(arr.scalar_type())
                .with_leaf(leaf_id as u32),
            );
        }
    }
    Ok(step)
}

/// Restore a variable's payload as an array of its declared scalar type.
/// Values travel widened to f64, which is exact for every supported type.
fn reconstruct_array(var: &BpVar) -> DataArray {
    let name = var.name.clone();
    match var.dtype {
        ScalarType::F64 => DataArray::owned(name, 1, var.data.clone()),
        ScalarType::F32 => DataArray::owned(
            name,
            1,
            var.data.iter().map(|&v| v as f32).collect::<Vec<_>>(),
        ),
        ScalarType::I32 => DataArray::owned(
            name,
            1,
            var.data.iter().map(|&v| v as i32).collect::<Vec<_>>(),
        ),
        ScalarType::I64 => DataArray::owned(
            name,
            1,
            var.data.iter().map(|&v| v as i64).collect::<Vec<_>>(),
        ),
        ScalarType::U8 => DataArray::owned(
            name,
            1,
            var.data.iter().map(|&v| v as u8).collect::<Vec<_>>(),
        ),
    }
}

/// Reconstruct one image-grid block per mesh leaf from a BP step. Each
/// leaf's variables carry their own extent; an unprefixed geometry
/// attribute set is honored as a fallback for hand-built steps.
fn step_to_blocks(step: &BpStep) -> Vec<ImageData> {
    let mut leaf_ids: Vec<u32> = step.vars.iter().map(|v| v.leaf).collect();
    leaf_ids.sort_unstable();
    leaf_ids.dedup();
    let mut blocks = Vec::with_capacity(leaf_ids.len());
    for leaf in leaf_ids {
        let vars: Vec<&BpVar> = step.vars.iter().filter(|v| v.leaf == leaf).collect();
        let Some(first) = vars.first() else { continue };
        let global = Extent::new(
            [0, 0, 0],
            [
                first.global_dims[0] as i64 - 1,
                first.global_dims[1] as i64 - 1,
                first.global_dims[2] as i64 - 1,
            ],
        );
        let lo = [
            first.offset[0] as i64,
            first.offset[1] as i64,
            first.offset[2] as i64,
        ];
        let hi = [
            lo[0] + first.local_dims[0] as i64 - 1,
            lo[1] + first.local_dims[1] as i64 - 1,
            lo[2] + first.local_dims[2] as i64 - 1,
        ];
        let geo = |what: &str, a: usize, default: f64| {
            step.attr(&format!("leaf{leaf}_{what}_{a}"))
                .or_else(|| step.attr(&format!("{what}_{a}")))
                .unwrap_or(default)
        };
        let spacing = [
            geo("spacing", 0, 1.0),
            geo("spacing", 1, 1.0),
            geo("spacing", 2, 1.0),
        ];
        let origin = [
            geo("origin", 0, 0.0),
            geo("origin", 1, 0.0),
            geo("origin", 2, 0.0),
        ];
        let mut grid = ImageData::new(Extent::new(lo, hi), global).with_geometry(origin, spacing);
        for var in vars {
            grid.add_point_array(reconstruct_array(var));
        }
        blocks.push(grid);
    }
    blocks
}

/// Endpoint-side data adaptor over the steps received from the served
/// writers: presents them as a multiblock dataset.
pub struct BpAdaptor {
    blocks: Vec<ImageData>,
    step: u64,
    time: f64,
}

impl BpAdaptor {
    /// Build from one round of received steps.
    pub fn new(steps: &[(usize, BpStep)]) -> Self {
        let blocks: Vec<ImageData> = steps.iter().flat_map(|(_, s)| step_to_blocks(s)).collect();
        let step = steps.first().map(|(_, s)| s.step).unwrap_or(0);
        let time = steps.first().map(|(_, s)| s.time).unwrap_or(0.0);
        BpAdaptor { blocks, step, time }
    }

    /// Agree on `(step, time)` with the other endpoints of `sub`.
    ///
    /// An endpoint whose writers all closed or died receives no steps in
    /// a round and would otherwise report `step=0, time=0.0`, disagreeing
    /// with its peers mid-run; adopt the maximum `(has-data, step)` pair
    /// across the subgroup instead. Collective over `sub`.
    pub fn reconcile_step_time(&mut self, sub: &Comm) {
        let mine = (!self.blocks.is_empty(), self.step, self.time);
        let (_, step, time) =
            sub.allreduce_scalar(mine, |a, b| if (b.0, b.1) > (a.0, a.1) { b } else { a });
        self.step = step;
        self.time = time;
    }
}

impl DataAdaptor for BpAdaptor {
    fn time(&self) -> f64 {
        self.time
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        let mut mb = MultiBlock::new();
        for b in &self.blocks {
            let mut empty = b.clone();
            empty.point_data = datamodel::Attributes::new();
            empty.cell_data = datamodel::Attributes::new();
            mb.push(DataSet::Image(empty));
        }
        DataSet::Multi(mb)
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        if assoc != Association::Point {
            return Vec::new();
        }
        let mut names: Vec<String> = Vec::new();
        for b in &self.blocks {
            for n in b.point_data.names() {
                if !names.iter().any(|x| x == n) {
                    names.push(n.to_string());
                }
            }
        }
        names
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        let known = self
            .array_names(Association::Point)
            .iter()
            .any(|n| n == name);
        if assoc != Association::Point {
            return Err(if known {
                AdaptorError::WrongAssociation {
                    name: name.to_string(),
                    requested: assoc,
                    available: Association::Point,
                }
            } else {
                AdaptorError::UnknownArray {
                    name: name.to_string(),
                    assoc,
                }
            });
        }
        let DataSet::Multi(mb) = mesh else {
            return Err(AdaptorError::LayoutUnsupported {
                name: name.to_string(),
                detail: "endpoint adaptor targets a multiblock mesh".to_string(),
            });
        };
        let mut any = false;
        for (i, b) in self.blocks.iter().enumerate() {
            if let (Some(DataSet::Image(g)), Some(arr)) = (mb.block_mut(i), b.point_data.get(name))
            {
                g.point_data.insert(arr.clone());
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(AdaptorError::UnknownArray {
                name: name.to_string(),
                assoc,
            })
        }
    }
}

/// Writer-side SENSEI analysis adaptor: ships each executed step through
/// FlexPath. Per-step costs decompose as in Fig. 8: `advance_seconds`
/// (metadata + blocking on the reader) and `write_seconds`
/// (marshal + transmit).
///
/// The bridge driving this adaptor must be executed with the **world**
/// communicator, since the transport addresses endpoint ranks globally.
pub struct AdiosWriterAnalysis {
    writer: FlexpathWriter,
    /// Arena buffer the per-step BP framing is encoded into; kept across
    /// steps so the marshaling pays zero allocations once its capacity
    /// reaches the steady-state step size.
    scratch: Vec<u8>,
    /// Cumulative seconds spent in `advance` (metadata + blocking).
    pub advance_seconds: f64,
    /// Cumulative seconds spent marshaling + sending.
    pub write_seconds: f64,
    /// Total bytes shipped.
    pub bytes_shipped: usize,
    /// Non-fatal marshal failures (e.g. wrong-space arrays) drained by
    /// the bridge through `take_failures`.
    failures: Vec<String>,
}

impl AdiosWriterAnalysis {
    /// Wrap a paired writer handle.
    pub fn new(writer: FlexpathWriter) -> Self {
        AdiosWriterAnalysis {
            writer,
            scratch: Vec::new(),
            advance_seconds: 0.0,
            write_seconds: 0.0,
            bytes_shipped: 0,
            failures: Vec::new(),
        }
    }
}

impl AnalysisAdaptor for AdiosWriterAnalysis {
    fn name(&self) -> &str {
        "adios-flexpath"
    }

    fn execute(&mut self, data: &dyn DataAdaptor, comm: &Comm) -> Steering {
        let probe = comm.probe();
        let advance = self.writer.advance(comm);
        self.advance_seconds += advance;
        let t0 = probe::time::now_seconds();
        // A marshal failure (wrong-space array) degrades to shipping an
        // empty step: the stream's step count stays aligned with the
        // endpoint while the failure surfaces through the bridge.
        let step = match try_adaptor_to_step(data) {
            Ok(step) => step,
            Err(err) => {
                self.failures.push(format!("adios-flexpath: {err}"));
                BpStep::new(data.step(), data.time())
            }
        };
        let shipped = self
            .writer
            .write_with_scratch(comm, &step, &mut self.scratch);
        self.bytes_shipped += shipped;
        let write = (probe::time::now_seconds() - t0).max(0.0);
        self.write_seconds += write;
        // Fig. 8's decomposition as observability spans, plus the bytes
        // this rank put on the staging wire.
        probe.record_span("per-step/adios-flexpath/advance", advance);
        probe.record_span("per-step/adios-flexpath/write", write);
        probe.message(&probe::key::of("staging", "on_wire"), shipped as u64);
        Steering::Continue
    }

    fn finalize(&mut self, comm: &Comm) {
        self.writer.close(comm);
    }

    fn take_failures(&mut self) -> Vec<String> {
        std::mem::take(&mut self.failures)
    }
}

/// Run the endpoint loop: receive steps until every served writer
/// closes or dies, driving `analyses` through a SENSEI bridge whose
/// collective communicator is the endpoint subgroup. Returns the bridge
/// (timings and any analysis result handles stay valid).
///
/// A writer lost mid-stream degrades gracefully: its stream ends (the
/// reader's per-writer deadline fires), the loop keeps serving the
/// surviving writers in lock-step with the other endpoints, and the
/// bytes/steps lost are surfaced through
/// [`Bridge::failure_reports`].
#[deprecated(
    note = "use run_endpoint_with_broker — the broker tee is the staging spine, and a \
            default-config broker with no subscribers costs nothing"
)]
pub fn run_endpoint(
    world: &Comm,
    sub: &Comm,
    reader: &mut FlexpathReader,
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
) -> (Bridge, RunReport) {
    endpoint_loop(world, sub, reader, analyses, None)
}

/// [`run_endpoint`] with a staging broker tee: every received step is
/// also routed onto `broker` ([`StagingBroker::publish_step`] — one
/// topic per `(field, leaf)`), so any number of subscribers — live
/// monitors, secondary analyses, soak clients — consume the stream
/// without the writers knowing. When the stream ends the broker's
/// topics are finished and every slow-consumer eviction is surfaced
/// through [`Bridge::failure_reports`], next to dead-writer reports.
pub fn run_endpoint_with_broker(
    world: &Comm,
    sub: &Comm,
    reader: &mut FlexpathReader,
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
    broker: &StagingBroker,
) -> (Bridge, RunReport) {
    endpoint_loop(world, sub, reader, analyses, Some(broker))
}

fn endpoint_loop(
    world: &Comm,
    sub: &Comm,
    reader: &mut FlexpathReader,
    analyses: Vec<Box<dyn AnalysisAdaptor>>,
    broker: Option<&StagingBroker>,
) -> (Bridge, RunReport) {
    // Inherit whatever probe the caller attached to the endpoint
    // subgroup, so in-transit analyses land in the same report.
    let mut bridge = Bridge::with_probe(sub.probe());
    let probe = sub.probe();
    if let Some(broker) = broker {
        broker.attach_probe(probe.clone());
    }
    for a in analyses {
        bridge.register(a);
    }
    loop {
        let steps = reader.begin_step(world);
        // Every endpoint must agree on whether a round happens, because
        // the analyses are collective over `sub`. All writers advance in
        // lock-step, so per-endpoint None states coincide except when
        // writer counts differ per endpoint; reconcile with a reduction.
        let have = steps.is_some();
        let any = sub.allreduce_scalar(u8::from(have), |a, b| a.max(b));
        if any == 0 {
            break;
        }
        let steps = steps.unwrap_or_default();
        if probe.is_enabled() {
            // Payload bytes this endpoint pulled off the staging wire.
            for (_src, bp) in &steps {
                let bytes: usize = bp.vars.iter().map(|v| v.data.len() * 8).sum();
                probe.message(&probe::key::of("staging", "off_wire"), bytes as u64);
            }
        }
        if let Some(broker) = broker {
            for (_src, bp) in &steps {
                broker.publish_step(bp);
            }
        }
        let mut adaptor = BpAdaptor::new(&steps);
        adaptor.reconcile_step_time(sub);
        bridge.execute(&adaptor, sub);
        reader.end_step(world, &steps);
    }
    if let Some(broker) = broker {
        broker.finish_all();
        for evicted in broker.take_evictions() {
            bridge.record_failure(evicted);
        }
    }
    for dead in reader.dead_writers() {
        bridge.record_failure(dead);
    }
    let report = bridge.finalize(sub);
    (bridge, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexpath::{pair, Role};
    use minimpi::World;
    use sensei::analysis::histogram::HistogramAnalysis;
    use sensei::InMemoryAdaptor;

    fn sim_adaptor(rank: usize, n_writers: usize, step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([2 * n_writers + 1, 3, 3]);
        let local = datamodel::partition_extent(&global, [n_writers, 1, 1], rank);
        let mut g = ImageData::new(local, global);
        let vals: Vec<f64> = local
            .iter_points()
            .map(|p| p[0] as f64 + step as f64)
            .collect();
        g.add_point_array(DataArray::owned("data", 1, vals));
        InMemoryAdaptor::new(DataSet::Image(g), step as f64, step)
    }

    #[test]
    #[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
    fn histogram_runs_in_transit() {
        // 2 writers + 2 endpoints: the histogram executes at the
        // endpoints over the reconstructed blocks.
        World::run(4, |world| match pair(world, 2) {
            Role::Writer { mut writer, .. } => {
                for s in 0..4u64 {
                    writer.advance(world);
                    let step = adaptor_to_step(&sim_adaptor(world.rank(), 2, s));
                    writer.write(world, &step);
                }
                writer.close(world);
                None
            }
            Role::Endpoint { sub, mut reader } => {
                let hist = HistogramAnalysis::new("data", 8);
                let handle = hist.results_handle();
                let (bridge, _) = run_endpoint(world, &sub, &mut reader, vec![Box::new(hist)]);
                assert_eq!(bridge.steps(), 4);
                if sub.rank() == 0 {
                    let r = handle.lock().clone().expect("endpoint histogram");
                    // Global grid 5×3×3 points, split into 2 blocks of
                    // 3×3×3 = 54 total values.
                    assert_eq!(r.counts.iter().sum::<u64>(), 54);
                    assert_eq!(r.step, 3);
                    Some((r.min, r.max))
                } else {
                    None
                }
            }
        });
    }

    #[test]
    #[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
    fn endpoint_broker_tee_feeds_subscribers() {
        use crate::broker::{BrokerConfig, StagingBroker, TopicKey};
        use std::time::Duration;
        // 1 writer + 1 endpoint; the endpoint tees every step onto the
        // broker, where an out-of-band subscriber consumes one leaf's
        // field without appearing anywhere in the writer/endpoint
        // pairing.
        World::run(2, |world| match pair(world, 1) {
            Role::Writer { mut writer, .. } => {
                for s in 0..4u64 {
                    writer.advance(world);
                    let step = adaptor_to_step(&sim_adaptor(world.rank(), 1, s));
                    writer.write(world, &step);
                }
                writer.close(world);
            }
            Role::Endpoint { sub, mut reader } => {
                let broker = StagingBroker::new(BrokerConfig {
                    queue_depth: 8,
                    max_subscribers: 16,
                    eviction_deadline: Duration::from_millis(200),
                });
                let watcher = broker
                    .subscribe_labeled(TopicKey::new("data", 0), "watcher")
                    .expect("admitted");
                let (bridge, _) =
                    run_endpoint_with_broker(world, &sub, &mut reader, Vec::new(), &broker);
                assert_eq!(bridge.steps(), 4);
                let mut seqs = Vec::new();
                while let Some(msg) = watcher.try_next() {
                    assert_eq!(msg.payload.name, "data");
                    seqs.push(msg.seq);
                }
                assert_eq!(seqs, vec![0, 1, 2, 3], "no step lost, in order");
                assert!(watcher.is_eos(), "finish propagated at end-of-stream");
                assert!(bridge.failure_reports().is_empty());
            }
        });
    }

    #[test]
    #[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
    fn writer_analysis_reports_fig8_components() {
        World::run(2, |world| match pair(world, 1) {
            Role::Writer { .. } if false => unreachable!(),
            Role::Writer { sub, writer } => {
                let mut a = AdiosWriterAnalysis::new(writer);
                let mut bridge = Bridge::new();
                let sim0 = sim_adaptor(0, 1, 0);
                // Drive the adaptor directly (the bridge would Box it
                // away from our counters).
                for s in 0..3u64 {
                    a.execute(&sim_adaptor(0, 1, s), world);
                }
                a.finalize(world);
                assert!(a.bytes_shipped > 0);
                assert!(a.write_seconds > 0.0);
                assert!(a.advance_seconds >= 0.0);
                let _ = (bridge.steps(), sim0.step());
                // finalize gathers over its communicator, so the dummy
                // bridge must use the writer subgroup, not `world`.
                bridge.finalize(&sub);
            }
            Role::Endpoint { sub, mut reader } => {
                let (bridge, _) = run_endpoint(world, &sub, &mut reader, Vec::new());
                assert_eq!(bridge.steps(), 3);
            }
        });
    }

    #[test]
    fn adaptor_step_roundtrip_preserves_geometry() {
        let a = sim_adaptor(1, 2, 5);
        let step = adaptor_to_step(&a);
        assert_eq!(step.step, 5);
        let blocks = step_to_blocks(&step);
        assert_eq!(blocks.len(), 1);
        let block = &blocks[0];
        assert_eq!(block.global_extent, Extent::whole([5, 3, 3]));
        assert_eq!(block.extent.lo[0], 2, "second writer's block offset");
        let arr = block.point_data.get("data").unwrap();
        assert_eq!(arr.num_tuples(), block.num_points());
    }

    /// A rank carrying two mesh leaves with distinct geometry: each leaf
    /// must ship as its own block with its own spacing/origin (the
    /// multi-leaf bug collapsed all leaves into one block with the last
    /// leaf's geometry).
    fn two_leaf_adaptor(step: u64) -> InMemoryAdaptor {
        let global = Extent::whole([4, 1, 1]);
        let mut mb = MultiBlock::new();
        for (i, (lo, hi)) in [([0, 0, 0], [1, 0, 0]), ([2, 0, 0], [3, 0, 0])]
            .into_iter()
            .enumerate()
        {
            let local = Extent::new(lo, hi);
            let mut g = ImageData::new(local, global)
                .with_geometry([i as f64 * 10.0, 0.0, 0.0], [1.0 + i as f64, 1.0, 1.0]);
            let vals: Vec<f64> = local
                .iter_points()
                .map(|p| p[0] as f64 + step as f64)
                .collect();
            g.add_point_array(DataArray::owned("data", 1, vals));
            mb.push(DataSet::Image(g));
        }
        InMemoryAdaptor::new(DataSet::Multi(mb), step as f64, step)
    }

    #[test]
    fn multi_leaf_rank_ships_one_block_per_leaf() {
        let step = adaptor_to_step(&two_leaf_adaptor(2));
        assert_eq!(step.vars.len(), 2, "one var per leaf");
        // Full wire round-trip: leaf identity and geometry must survive
        // serialization, not just the in-memory step.
        let wire = crate::bp::BpStep::decode(&step.encode()).unwrap();
        let blocks = step_to_blocks(&wire);
        assert_eq!(blocks.len(), 2, "one block per leaf");
        assert_eq!(blocks[0].origin, [0.0, 0.0, 0.0]);
        assert_eq!(blocks[0].spacing, [1.0, 1.0, 1.0]);
        assert_eq!(blocks[1].origin, [10.0, 0.0, 0.0]);
        assert_eq!(blocks[1].spacing, [2.0, 1.0, 1.0]);
        assert_eq!(blocks[0].extent.lo[0], 0);
        assert_eq!(blocks[1].extent.lo[0], 2);
        let d1 = blocks[1].point_data.get("data").unwrap();
        assert_eq!(d1.num_tuples(), 2);
        assert_eq!(d1.get(0, 0), 4.0, "x=2 plus step 2");
    }

    #[test]
    fn ghost_array_dtype_survives_transit() {
        let e = Extent::whole([3, 1, 1]);
        let mut g = ImageData::new(e, e);
        g.add_point_array(DataArray::owned("data", 1, vec![1.0f64, 2.0, 3.0]));
        g.add_point_array(DataArray::owned("vtkGhostType", 1, vec![0u8, 0, 1]));
        let a = InMemoryAdaptor::new(DataSet::Image(g), 0.0, 0);
        let wire = crate::bp::BpStep::decode(&adaptor_to_step(&a).encode()).unwrap();
        let blocks = step_to_blocks(&wire);
        let ghost = blocks[0].point_data.get("vtkGhostType").unwrap();
        assert_eq!(
            ghost.scalar_type(),
            ScalarType::U8,
            "ghost markers must stay u8 so the endpoint recognizes them"
        );
        assert_eq!(ghost.get(2, 0), 1.0);
        let data = blocks[0].point_data.get("data").unwrap();
        assert_eq!(data.scalar_type(), ScalarType::F64);
    }

    #[test]
    fn reconcile_adopts_peer_step_for_empty_round() {
        World::run(2, |world| {
            let steps = if world.rank() == 0 {
                vec![(0usize, adaptor_to_step(&sim_adaptor(0, 1, 7)))]
            } else {
                Vec::new()
            };
            let mut adaptor = BpAdaptor::new(&steps);
            adaptor.reconcile_step_time(world);
            assert_eq!(adaptor.step(), 7, "rank {}", world.rank());
            assert!((adaptor.time() - 7.0).abs() < 1e-12);
        });
    }

    #[test]
    #[allow(deprecated)] // the minimal non-broker endpoint stays covered until removal
    fn dead_writer_degrades_to_end_of_stream() {
        use std::time::Duration;
        // Writer 0 ships 2 steps, then its third frame is lost in
        // transit and it dies without closing. Its endpoint must drain
        // to end-of-stream with a failure report — not hang — while the
        // other endpoint's stream finishes all 4 steps, with both
        // endpoints staying in lock-step.
        let faults = minimpi::FaultHandle::new();
        let hook = faults.clone();
        minimpi::WorldBuilder::new(4)
            .fault_handle(faults)
            .run(move |world| match pair(world, 2) {
                Role::Writer { mut writer, .. } if world.rank() == 0 => {
                    for s in 0..2u64 {
                        writer.advance(world);
                        writer.write(world, &adaptor_to_step(&sim_adaptor(0, 2, s)));
                    }
                    writer.advance(world);
                    hook.drop_link(0, writer.peer());
                    writer.write(world, &adaptor_to_step(&sim_adaptor(0, 2, 2)));
                    // Dies here: no close frame ever reaches the endpoint.
                }
                Role::Writer { mut writer, .. } => {
                    for s in 0..4u64 {
                        writer.advance(world);
                        writer.write(world, &adaptor_to_step(&sim_adaptor(1, 2, s)));
                    }
                    writer.close(world);
                }
                Role::Endpoint { sub, mut reader } => {
                    reader.set_deadline(Duration::from_millis(150));
                    let (bridge, _) = run_endpoint(world, &sub, &mut reader, Vec::new());
                    assert_eq!(bridge.steps(), 4, "endpoints stay in lock-step");
                    if world.rank() == 2 {
                        let reports = bridge.failure_reports();
                        assert_eq!(reports.len(), 1, "lost writer surfaced");
                        assert_eq!(reports[0].kind(), "dead-writer");
                        let text = reports[0].to_string();
                        assert!(text.contains("writer rank 0"), "{text}");
                        assert!(text.contains("2 step(s)"), "{text}");
                        let dead = &reader.dead_writers()[0];
                        assert_eq!(dead.rank, 0);
                        assert_eq!(dead.steps_received, 2);
                        assert!(dead.bytes_received > 0);
                    } else {
                        assert!(bridge.failure_reports().is_empty());
                        assert!(reader.dead_writers().is_empty());
                    }
                }
            });
    }

    #[test]
    fn bp_adaptor_presents_multiblock() {
        let s0 = adaptor_to_step(&sim_adaptor(0, 2, 1));
        let s1 = adaptor_to_step(&sim_adaptor(1, 2, 1));
        let adaptor = BpAdaptor::new(&[(0, s0), (1, s1)]);
        let mesh = adaptor.full_mesh();
        assert_eq!(mesh.leaves().count(), 2);
        assert_eq!(
            adaptor.array_names(Association::Point),
            vec!["data".to_string()]
        );
        let total: usize = mesh
            .leaves()
            .map(|l| l.point_data().unwrap().get("data").unwrap().num_tuples())
            .sum();
        assert_eq!(total, 54);
    }
}
