//! BP-lite: a self-describing, block-decomposed binary data format.
//!
//! A [`BpStep`] holds one timestep's variables. Each [`BpVar`] is
//! self-describing: name, element type, global dimensions, this block's
//! offset and local dimensions, and the payload. Steps serialize to a
//! compact binary framing used both by the FlexPath transport and by
//! [`BpFile`] on disk.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use datamodel::ScalarType;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes of the framing. `BPL2` added a per-variable scalar type
/// and leaf index, so multi-leaf ranks and non-f64 arrays (notably the
/// `vtkGhostType` u8 array) survive a staging round trip intact.
const MAGIC: &[u8; 4] = b"BPL2";

/// Errors from decoding or file I/O.
#[derive(Debug)]
pub enum BpError {
    /// Bad magic or structurally invalid bytes.
    Corrupt(&'static str),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl From<std::io::Error> for BpError {
    fn from(e: std::io::Error) -> Self {
        BpError::Io(e)
    }
}

impl std::fmt::Display for BpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpError::Corrupt(m) => write!(f, "corrupt BP data: {m}"),
            BpError::Io(e) => write!(f, "BP I/O error: {e}"),
        }
    }
}

impl std::error::Error for BpError {}

/// One block-decomposed variable.
#[derive(Clone, Debug, PartialEq)]
pub struct BpVar {
    /// Variable name.
    pub name: String,
    /// Global dimensions (points per axis).
    pub global_dims: [u64; 3],
    /// This block's offset in the global index space.
    pub offset: [u64; 3],
    /// This block's local dimensions.
    pub local_dims: [u64; 3],
    /// Row-major (k slowest) payload, `local_dims` sized. Values travel
    /// widened to f64 (exact for every supported scalar type); `dtype`
    /// records the element type to restore on reconstruction.
    pub data: Vec<f64>,
    /// Declared element type of the source array.
    pub dtype: ScalarType,
    /// Which leaf of the sender's (multiblock) mesh this block belongs
    /// to, so a rank with several leaves reconstructs into several
    /// blocks instead of collapsing into the first leaf's extent.
    pub leaf: u32,
}

impl BpVar {
    /// Validate and build. Defaults to an `f64` variable on leaf 0; use
    /// [`BpVar::with_dtype`] / [`BpVar::with_leaf`] to override.
    pub fn new(
        name: impl Into<String>,
        global_dims: [u64; 3],
        offset: [u64; 3],
        local_dims: [u64; 3],
        data: Vec<f64>,
    ) -> Self {
        let expect: u64 = local_dims.iter().product();
        assert_eq!(
            data.len() as u64,
            expect,
            "payload length {} != local dims product {}",
            data.len(),
            expect
        );
        for a in 0..3 {
            assert!(
                offset[a] + local_dims[a] <= global_dims[a],
                "block exceeds global dims on axis {a}"
            );
        }
        BpVar {
            name: name.into(),
            global_dims,
            offset,
            local_dims,
            data,
            dtype: ScalarType::F64,
            leaf: 0,
        }
    }

    /// Declare the element type of the source array.
    pub fn with_dtype(mut self, dtype: ScalarType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Assign the variable to a mesh leaf.
    pub fn with_leaf(mut self, leaf: u32) -> Self {
        self.leaf = leaf;
        self
    }

    /// Payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

fn dtype_code(t: ScalarType) -> u8 {
    match t {
        ScalarType::F32 => 0,
        ScalarType::F64 => 1,
        ScalarType::I32 => 2,
        ScalarType::I64 => 3,
        ScalarType::U8 => 4,
    }
}

fn dtype_from_code(code: u8) -> Option<ScalarType> {
    Some(match code {
        0 => ScalarType::F32,
        1 => ScalarType::F64,
        2 => ScalarType::I32,
        3 => ScalarType::I64,
        4 => ScalarType::U8,
        _ => return None,
    })
}

/// One timestep of self-describing data, plus scalar attributes.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BpStep {
    /// Timestep index.
    pub step: u64,
    /// Physical time.
    pub time: f64,
    /// Named scalar attributes (spacing, origin, …).
    pub attributes: Vec<(String, f64)>,
    /// Variables.
    pub vars: Vec<BpVar>,
}

impl BpStep {
    /// New empty step.
    pub fn new(step: u64, time: f64) -> Self {
        BpStep {
            step,
            time,
            attributes: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Attach an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        if let Some(a) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            a.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Read an attribute.
    pub fn attr(&self, name: &str) -> Option<f64> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Option<&BpVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Total payload bytes across variables.
    pub fn payload_bytes(&self) -> usize {
        self.vars.iter().map(BpVar::payload_bytes).sum()
    }

    /// Exact size of the encoded framing in bytes.
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + 8 + 8 + 4; // magic, step, time, attr count
        for (name, _) in &self.attributes {
            n += 4 + name.len() + 8;
        }
        n += 4; // var count
        for v in &self.vars {
            n += 4 + v.name.len() + 1 + 4 + 9 * 8 + 8 + v.data.len() * 8;
        }
        n
    }

    /// Serialize to the BP-lite framing. This is the marshaling copy the
    /// FlexPath transport pays (not zero-copy, per §4.1.4).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len());
        self.encode_to(&mut b);
        b.freeze()
    }

    /// Serialize into a caller-owned arena buffer: the buffer is cleared
    /// and refilled, so a writer that keeps one scratch `Vec<u8>` across
    /// steps pays **zero allocations** once its capacity has warmed up
    /// to the steady-state step size. The bytes produced are identical
    /// to [`BpStep::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let need = self.encoded_len();
        if out.capacity() < need {
            out.reserve_exact(need - out.len());
        }
        self.encode_to(out);
    }

    /// One framing writer shared by both entry points, so the arena path
    /// cannot drift from the allocating one.
    fn encode_to<B: BufMut>(&self, b: &mut B) {
        b.put_slice(MAGIC);
        b.put_u64_le(self.step);
        b.put_f64_le(self.time);
        b.put_u32_le(self.attributes.len() as u32);
        for (name, value) in &self.attributes {
            put_string(b, name);
            b.put_f64_le(*value);
        }
        b.put_u32_le(self.vars.len() as u32);
        for v in &self.vars {
            put_string(b, &v.name);
            b.put_u8(dtype_code(v.dtype));
            b.put_u32_le(v.leaf);
            for d in v.global_dims {
                b.put_u64_le(d);
            }
            for d in v.offset {
                b.put_u64_le(d);
            }
            for d in v.local_dims {
                b.put_u64_le(d);
            }
            b.put_u64_le(v.data.len() as u64);
            for &x in &v.data {
                b.put_f64_le(x);
            }
        }
    }

    /// Decode from the framing.
    pub fn decode(mut buf: &[u8]) -> Result<BpStep, BpError> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(BpError::Corrupt("bad magic"));
        }
        buf.advance(4);
        if buf.remaining() < 16 {
            return Err(BpError::Corrupt("truncated header"));
        }
        let step = buf.get_u64_le();
        let time = buf.get_f64_le();
        if buf.remaining() < 4 {
            return Err(BpError::Corrupt("truncated attr count"));
        }
        let nattrs = buf.get_u32_le() as usize;
        let mut attributes = Vec::with_capacity(nattrs.min(1024));
        for _ in 0..nattrs {
            let name = get_string(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(BpError::Corrupt("truncated attr value"));
            }
            attributes.push((name, buf.get_f64_le()));
        }
        if buf.remaining() < 4 {
            return Err(BpError::Corrupt("truncated var count"));
        }
        let nvars = buf.get_u32_le() as usize;
        let mut vars = Vec::with_capacity(nvars.min(1024));
        for _ in 0..nvars {
            let name = get_string(&mut buf)?;
            if buf.remaining() < 1 + 4 + 9 * 8 + 8 {
                return Err(BpError::Corrupt("truncated var header"));
            }
            let dtype =
                dtype_from_code(buf.get_u8()).ok_or(BpError::Corrupt("unknown scalar type"))?;
            let leaf = buf.get_u32_le();
            let mut dims = [[0u64; 3]; 3];
            for group in dims.iter_mut() {
                for d in group.iter_mut() {
                    *d = buf.get_u64_le();
                }
            }
            let n = buf.get_u64_le() as usize;
            if buf.remaining() < n * 8 {
                return Err(BpError::Corrupt("truncated payload"));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f64_le());
            }
            let expect: u64 = dims[2].iter().product();
            if n as u64 != expect {
                return Err(BpError::Corrupt("dims/payload mismatch"));
            }
            vars.push(BpVar {
                name,
                global_dims: dims[0],
                offset: dims[1],
                local_dims: dims[2],
                data,
                dtype,
                leaf,
            });
        }
        Ok(BpStep {
            step,
            time,
            attributes,
            vars,
        })
    }
}

fn put_string<B: BufMut>(b: &mut B, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, BpError> {
    if buf.remaining() < 4 {
        return Err(BpError::Corrupt("truncated string length"));
    }
    let n = buf.get_u32_le() as usize;
    if n > 1 << 20 || buf.remaining() < n {
        return Err(BpError::Corrupt("truncated string"));
    }
    let s = String::from_utf8(buf[..n].to_vec()).map_err(|_| BpError::Corrupt("bad utf8"))?;
    buf.advance(n);
    Ok(s)
}

/// An append-only `.bp` file of framed steps: `[u64 length][payload]…`.
pub struct BpFile;

impl BpFile {
    /// Append one step.
    pub fn append(path: &Path, step: &BpStep) -> Result<(), BpError> {
        let bytes = step.encode();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(&(bytes.len() as u64).to_le_bytes())?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Read every step back.
    pub fn read_all(path: &Path) -> Result<Vec<BpStep>, BpError> {
        let mut f = std::fs::File::open(path)?;
        let mut raw = Vec::new();
        f.read_to_end(&mut raw)?;
        let mut steps = Vec::new();
        let mut pos = 0usize;
        while pos < raw.len() {
            let Some(len8) = raw
                .get(pos..pos + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
            else {
                return Err(BpError::Corrupt("truncated frame length"));
            };
            let len = u64::from_le_bytes(len8) as usize;
            pos += 8;
            if pos + len > raw.len() {
                return Err(BpError::Corrupt("truncated frame"));
            }
            steps.push(BpStep::decode(&raw[pos..pos + len])?);
            pos += len;
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BpStep {
        let mut s = BpStep::new(7, 0.35);
        s.set_attr("spacing_x", 0.25);
        s.set_attr("origin_x", -1.0);
        s.vars.push(BpVar::new(
            "data",
            [8, 8, 8],
            [4, 0, 0],
            [4, 8, 8],
            (0..256).map(|i| i as f64 * 0.5).collect(),
        ));
        s.vars.push(BpVar::new(
            "rho",
            [8, 8, 8],
            [0, 0, 0],
            [1, 1, 1],
            vec![9.0],
        ));
        s
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let back = BpStep::decode(&bytes).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn arena_encode_is_byte_identical_and_reuses_capacity() {
        let s = sample();
        let reference = s.encode();
        assert_eq!(s.encoded_len(), reference.len(), "exact size accounting");
        let mut arena = Vec::new();
        s.encode_into(&mut arena);
        assert_eq!(arena.as_slice(), reference.as_ref(), "identical framing");
        // Warm arena: re-encoding must reuse the allocation, not grow or
        // replace it (the zero-alloc contract the bench asserts with the
        // tracking allocator).
        let ptr = arena.as_ptr();
        let cap = arena.capacity();
        for _ in 0..3 {
            s.encode_into(&mut arena);
            assert_eq!(arena.as_ptr(), ptr, "warm arena must not reallocate");
            assert_eq!(arena.capacity(), cap);
            assert_eq!(arena.as_slice(), reference.as_ref());
        }
        let back = BpStep::decode(&arena).expect("decode from arena");
        assert_eq!(back, s);
    }

    #[test]
    fn attributes_and_lookup() {
        let s = sample();
        assert_eq!(s.attr("spacing_x"), Some(0.25));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.var("rho").unwrap().data, vec![9.0]);
        assert!(s.var("nope").is_none());
        assert_eq!(s.payload_bytes(), 257 * 8);
    }

    #[test]
    fn dtype_and_leaf_survive_roundtrip() {
        let mut s = BpStep::new(1, 0.1);
        s.vars.push(
            BpVar::new(
                "vtkGhostType",
                [4, 1, 1],
                [0, 0, 0],
                [4, 1, 1],
                vec![0.0, 0.0, 1.0, 1.0],
            )
            .with_dtype(ScalarType::U8)
            .with_leaf(3),
        );
        let back = BpStep::decode(&s.encode()).expect("decode");
        assert_eq!(back.vars[0].dtype, ScalarType::U8);
        assert_eq!(back.vars[0].leaf, 3);
        assert_eq!(back, s);
    }

    #[test]
    fn attr_overwrite() {
        let mut s = BpStep::new(0, 0.0);
        s.set_attr("a", 1.0);
        s.set_attr("a", 2.0);
        assert_eq!(s.attr("a"), Some(2.0));
        assert_eq!(s.attributes.len(), 1);
    }

    #[test]
    fn corrupt_data_rejected() {
        let s = sample();
        let bytes = s.encode();
        assert!(matches!(
            BpStep::decode(&bytes[..10]),
            Err(BpError::Corrupt(_))
        ));
        assert!(matches!(BpStep::decode(b"NOPE"), Err(BpError::Corrupt(_))));
        let mut bad = bytes.to_vec();
        bad.truncate(bad.len() - 4);
        assert!(BpStep::decode(&bad).is_err());
    }

    #[test]
    fn file_append_and_read() {
        let path = std::env::temp_dir().join(format!("bp_test_{}.bp", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let a = sample();
        let mut b = sample();
        b.step = 8;
        BpFile::append(&path, &a).unwrap();
        BpFile::append(&path, &b).unwrap();
        let steps = BpFile::read_all(&path).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0], a);
        assert_eq!(steps[1].step, 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_size_panics() {
        let _ = BpVar::new("x", [4, 4, 4], [0, 0, 0], [2, 2, 2], vec![0.0; 9]);
    }

    #[test]
    #[should_panic(expected = "exceeds global dims")]
    fn block_outside_global_panics() {
        let _ = BpVar::new("x", [4, 4, 4], [3, 0, 0], [2, 4, 4], vec![0.0; 32]);
    }
}
