//! AVF-LESLIE proxy: a temporally-evolving planar mixing layer (TML) on
//! a Cartesian grid (§4.2.2).
//!
//! Two fluid layers slide past one another (`u = U·tanh(y/δ)`); seeded
//! perturbations roll the shear layer up toward turbulence. The solver
//! is a simple explicit advection–diffusion update — a physics *proxy*,
//! not a compressible LES — but its data layout, halo exchange, derived
//! vorticity field, and ghost-blanked SENSEI adaptor match what the
//! paper's instrumentation touches.
//!
//! Decomposition is 1D slabs along z with one ghost plane per side,
//! exchanged over real `minimpi` point-to-point messages; z is periodic
//! (so every rank has two neighbors), x is periodic in-stencil, and y
//! uses one-sided differences at the free-stream boundaries.

use std::sync::Arc;

use datamodel::{DataArray, DataSet, Extent, ImageData, GHOST_ARRAY_NAME};
use minimpi::Comm;
use sensei::{AdaptorError, Association, DataAdaptor};

const TAG_HALO_UP: u32 = 0x1E51_0001;
const TAG_HALO_DN: u32 = 0x1E51_0002;

/// Configuration of the TML problem.
#[derive(Clone, Debug)]
pub struct LeslieConfig {
    /// Global grid points per axis (z must be divisible across ranks).
    pub grid: [usize; 3],
    /// Domain size (the paper uses 4π × 4π × 2π).
    pub domain: [f64; 3],
    /// Free-stream speed of each layer (±U).
    pub u0: f64,
    /// Shear-layer thickness.
    pub delta: f64,
    /// Perturbation amplitude.
    pub epsilon: f64,
    /// Kinematic viscosity.
    pub nu: f64,
    /// Timestep.
    pub dt: f64,
}

impl Default for LeslieConfig {
    fn default() -> Self {
        let tau = std::f64::consts::TAU;
        LeslieConfig {
            grid: [33, 33, 17],
            domain: [2.0 * tau, 2.0 * tau, tau],
            u0: 1.0,
            delta: 0.5,
            epsilon: 0.05,
            nu: 5e-3,
            dt: 5e-3,
        }
    }
}

/// Per-rank TML state. Fields are stored over the **ghosted** local
/// extent (one extra z-plane per side) in shared buffers so the adaptor
/// views them zero-copy.
pub struct Leslie {
    config: LeslieConfig,
    /// Ghosted local extent (z grown by 1 each side, wrapping).
    ghosted_dims: [usize; 3],
    /// Interior z planes: `ghosted k ∈ 1..=nz_local`.
    nz_local: usize,
    /// Global z offset of the first interior plane.
    z_offset: usize,
    spacing: [f64; 3],
    u: Arc<Vec<f64>>,
    v: Arc<Vec<f64>>,
    w: Arc<Vec<f64>>,
    step: u64,
}

impl Leslie {
    /// Initialize the TML (§4.2.2's initial flow field): hyperbolic-
    /// tangent shear plus deterministic sinusoidal perturbations.
    pub fn new(comm: &Comm, config: LeslieConfig) -> Self {
        let p = comm.size();
        let [nx, ny, nz] = config.grid;
        assert!(
            nz % p == 0,
            "global z planes ({nz}) must divide evenly across {p} ranks"
        );
        let nz_local = nz / p;
        assert!(nz_local >= 1, "each rank needs at least one z plane");
        let z_offset = comm.rank() * nz_local;
        let spacing = [
            config.domain[0] / nx as f64,
            config.domain[1] / (ny - 1) as f64,
            config.domain[2] / nz as f64,
        ];
        let ghosted_dims = [nx, ny, nz_local + 2];
        let n = nx * ny * (nz_local + 2);
        let (mut u, mut v, mut w) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let tau = std::f64::consts::TAU;
        for kz in 0..nz_local + 2 {
            // Global plane of this ghosted k (wrapping).
            let gz = (z_offset + nz + kz - 1) % nz;
            let z = gz as f64 * spacing[2];
            for jy in 0..ny {
                let y = jy as f64 * spacing[1] - config.domain[1] / 2.0;
                let shear = config.u0 * (y / config.delta).tanh();
                let envelope = (-y * y / (2.0 * config.delta * config.delta)).exp();
                for ix in 0..nx {
                    let x = ix as f64 * spacing[0];
                    let i = (kz * ny + jy) * nx + ix;
                    u[i] = shear
                        + config.epsilon
                            * envelope
                            * ((2.0 * tau * x / config.domain[0]).sin()
                                + 0.5 * (2.0 * tau * z / config.domain[2]).cos());
                    v[i] = config.epsilon
                        * envelope
                        * (tau * x / config.domain[0]).cos()
                        * (tau * z / config.domain[2]).sin();
                    w[i] = 0.5 * config.epsilon * envelope * (tau * x / config.domain[0]).sin();
                }
            }
        }
        Leslie {
            config,
            ghosted_dims,
            nz_local,
            z_offset,
            spacing,
            u: Arc::new(u),
            v: Arc::new(v),
            w: Arc::new(w),
            step: 0,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.ghosted_dims[1] + j) * self.ghosted_dims[0] + i
    }

    /// One explicit advection–diffusion update of (u, v, w), then halo
    /// exchange of the ghost z-planes.
    pub fn step(&mut self, comm: &Comm) {
        let [nx, ny, _] = self.ghosted_dims;
        let dt = self.config.dt;
        let nu = self.config.nu;
        let [dx, dy, dz] = self.spacing;

        let u0 = Arc::clone(&self.u);
        let v0 = Arc::clone(&self.v);
        let w0 = Arc::clone(&self.w);
        let get = |f: &[f64], i: usize, j: usize, k: usize| f[(k * ny + j) * nx + i];
        // Periodic x; clamped y; interior z only (ghosts provide k±1).
        let xm = |i: usize| (i + nx - 1) % nx;
        let xp = |i: usize| (i + 1) % nx;
        let ym = |j: usize| j.saturating_sub(1);
        let yp = |j: usize| (j + 1).min(ny - 1);

        let update = |f0: &[f64]| -> Vec<f64> {
            let mut out = f0.to_vec();
            for k in 1..=self.nz_local {
                for j in 0..ny {
                    for i in 0..nx {
                        let c = get(f0, i, j, k);
                        let fxm = get(f0, xm(i), j, k);
                        let fxp = get(f0, xp(i), j, k);
                        let fym = get(f0, i, ym(j), k);
                        let fyp = get(f0, i, yp(j), k);
                        let fzm = get(f0, i, j, k - 1);
                        let fzp = get(f0, i, j, k + 1);
                        let uu = get(&u0, i, j, k);
                        let vv = get(&v0, i, j, k);
                        let ww = get(&w0, i, j, k);
                        let adv = uu * (fxp - fxm) / (2.0 * dx)
                            + vv * (fyp - fym) / (2.0 * dy)
                            + ww * (fzp - fzm) / (2.0 * dz);
                        let lap = (fxp - 2.0 * c + fxm) / (dx * dx)
                            + (fyp - 2.0 * c + fym) / (dy * dy)
                            + (fzp - 2.0 * c + fzm) / (dz * dz);
                        out[(k * ny + j) * nx + i] = c + dt * (nu * lap - adv);
                    }
                }
            }
            out
        };
        let (nu_, nv_, nw_) = (update(&u0), update(&v0), update(&w0));
        self.u = Arc::new(nu_);
        self.v = Arc::new(nv_);
        self.w = Arc::new(nw_);
        self.exchange_halos(comm);
        self.step += 1;
    }

    /// Exchange ghost z-planes with the periodic z neighbors.
    fn exchange_halos(&mut self, comm: &Comm) {
        let p = comm.size();
        let me = comm.rank();
        let up = (me + 1) % p;
        let down = (me + p - 1) % p;
        let [nx, ny, _] = self.ghosted_dims;
        let plane = nx * ny;
        for (field, tag_base) in [(0usize, 0u32), (1, 4), (2, 8)] {
            let buf = match field {
                0 => Arc::clone(&self.u),
                1 => Arc::clone(&self.v),
                _ => Arc::clone(&self.w),
            };
            // My top interior plane goes up; bottom interior goes down.
            let top: Vec<f64> = buf[self.nz_local * plane..(self.nz_local + 1) * plane].to_vec();
            let bottom: Vec<f64> = buf[plane..2 * plane].to_vec();
            comm.send(up, TAG_HALO_UP + tag_base, top);
            comm.send(down, TAG_HALO_DN + tag_base, bottom);
            let from_down: Vec<f64> = comm.recv(down, TAG_HALO_UP + tag_base);
            let from_up: Vec<f64> = comm.recv(up, TAG_HALO_DN + tag_base);
            let target = match field {
                0 => &mut self.u,
                1 => &mut self.v,
                _ => &mut self.w,
            };
            let inner = Arc::make_mut(target);
            inner[..plane].copy_from_slice(&from_down);
            let last = (self.nz_local + 1) * plane;
            inner[last..last + plane].copy_from_slice(&from_up);
        }
    }

    /// Vorticity magnitude `|∇×u|` over the ghosted local grid — the
    /// derived field the SENSEI adaptor computes (§4.2.2).
    pub fn vorticity_magnitude(&self) -> Vec<f64> {
        let [nx, ny, nzg] = self.ghosted_dims;
        let [dx, dy, dz] = self.spacing;
        let get = |f: &[f64], i: usize, j: usize, k: usize| f[(k * ny + j) * nx + i];
        let mut out = vec![0.0; nx * ny * nzg];
        let xm = |i: usize| (i + nx - 1) % nx;
        let xp = |i: usize| (i + 1) % nx;
        for k in 1..nzg - 1 {
            for j in 0..ny {
                let jm = j.saturating_sub(1);
                let jp = (j + 1).min(ny - 1);
                for i in 0..nx {
                    let dwdy = (get(&self.w, i, jp, k) - get(&self.w, i, jm, k)) / (2.0 * dy);
                    let dvdz = (get(&self.v, i, j, k + 1) - get(&self.v, i, j, k - 1)) / (2.0 * dz);
                    let dudz = (get(&self.u, i, j, k + 1) - get(&self.u, i, j, k - 1)) / (2.0 * dz);
                    let dwdx = (get(&self.w, xp(i), j, k) - get(&self.w, xm(i), j, k)) / (2.0 * dx);
                    let dvdx = (get(&self.v, xp(i), j, k) - get(&self.v, xm(i), j, k)) / (2.0 * dx);
                    let dudy = (get(&self.u, i, jp, k) - get(&self.u, i, jm, k)) / (2.0 * dy);
                    let ox = dwdy - dvdz;
                    let oy = dudz - dwdx;
                    let oz = dvdx - dudy;
                    out[(k * ny + j) * nx + i] = (ox * ox + oy * oy + oz * oz).sqrt();
                }
            }
        }
        out
    }

    /// Domain-summed kinetic energy over interior points (diagnostic).
    pub fn kinetic_energy(&self, comm: &Comm) -> f64 {
        let [nx, ny, _] = self.ghosted_dims;
        let mut ke = 0.0;
        for k in 1..=self.nz_local {
            for j in 0..ny {
                for i in 0..nx {
                    let n = (k * ny + j) * nx + i;
                    ke += 0.5
                        * (self.u[n] * self.u[n] + self.v[n] * self.v[n] + self.w[n] * self.w[n]);
                }
            }
        }
        comm.allreduce_scalar(ke, |a, b| a + b)
    }

    /// Value of `u` at a ghosted-local index (tests).
    pub fn u_at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.u[self.idx(i, j, k)]
    }

    /// Completed steps.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Ghosted local dims.
    pub fn ghosted_dims(&self) -> [usize; 3] {
        self.ghosted_dims
    }

    /// Interior z planes on this rank.
    pub fn nz_local(&self) -> usize {
        self.nz_local
    }

    /// Global z offset of the first interior plane.
    pub fn z_offset(&self) -> usize {
        self.z_offset
    }

    /// Grid spacing.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }
}

/// SENSEI data adaptor for the TML: exposes the velocity components
/// zero-copy over the **ghosted** grid, computes vorticity magnitude on
/// demand, and marks ghost planes via the `vtkGhostType` convention so
/// analyses blank them.
pub struct LeslieAdaptor {
    u: Arc<Vec<f64>>,
    v: Arc<Vec<f64>>,
    w: Arc<Vec<f64>>,
    vorticity: Vec<f64>,
    ghosted_extent: Extent,
    global_extent: Extent,
    ghosts: Vec<u8>,
    spacing: [f64; 3],
    step: u64,
    dt: f64,
}

impl LeslieAdaptor {
    /// Snapshot the solver state. Velocity views are zero-copy; the
    /// derived vorticity costs one stencil pass (the <0.5 s adaptor
    /// floor of Fig. 16).
    pub fn new(sim: &Leslie) -> Self {
        let [nx, ny, nzg] = sim.ghosted_dims;
        let gz = sim.config.grid[2];
        // Ghosted extent in global z index space (lo may be -1: ghost of
        // the wrapped neighbor).
        let lo_z = sim.z_offset as i64 - 1;
        let ghosted_extent = Extent::new(
            [0, 0, lo_z],
            [nx as i64 - 1, ny as i64 - 1, lo_z + nzg as i64 - 1],
        );
        let global_extent = Extent::new([0, 0, -1], [nx as i64 - 1, ny as i64 - 1, gz as i64]);
        let plane = nx * ny;
        let mut ghosts = vec![0u8; nx * ny * nzg];
        ghosts[..plane].fill(1);
        ghosts[(nzg - 1) * plane..].fill(1);
        LeslieAdaptor {
            u: sim.u.clone(),
            v: sim.v.clone(),
            w: sim.w.clone(),
            vorticity: sim.vorticity_magnitude(),
            ghosted_extent,
            global_extent,
            ghosts,
            spacing: sim.spacing,
            step: sim.step,
            dt: sim.config.dt,
        }
    }
}

impl DataAdaptor for LeslieAdaptor {
    fn time(&self) -> f64 {
        self.step as f64 * self.dt
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        DataSet::Image(
            ImageData::new(self.ghosted_extent, self.global_extent)
                .with_geometry([0.0; 3], self.spacing),
        )
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        match assoc {
            Association::Point => vec![
                "u".into(),
                "v".into(),
                "w".into(),
                "vorticity".into(),
                GHOST_ARRAY_NAME.into(),
            ],
            Association::Cell => Vec::new(),
        }
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        let names = ["u", "v", "w", "vorticity", GHOST_ARRAY_NAME];
        let err =
            || crate::point_array_error(&names, assoc, name, "LESLIE produces a structured grid");
        if assoc != Association::Point {
            return Err(err());
        }
        let DataSet::Image(g) = mesh else {
            return Err(err());
        };
        // Every LESLIE field is host-resident; declaring the space at
        // the publish boundary is what lets device-side consumers be
        // forced through an explicit transfer.
        let host = datamodel::MemorySpace::Host;
        let array = match name {
            "u" => DataArray::shared("u", 1, Arc::clone(&self.u)).with_space(host),
            "v" => DataArray::shared("v", 1, Arc::clone(&self.v)).with_space(host),
            "w" => DataArray::shared("w", 1, Arc::clone(&self.w)).with_space(host),
            "vorticity" => {
                DataArray::owned("vorticity", 1, self.vorticity.clone()).with_space(host)
            }
            GHOST_ARRAY_NAME => {
                DataArray::owned(GHOST_ARRAY_NAME, 1, self.ghosts.clone()).with_space(host)
            }
            _ => return Err(err()),
        };
        g.add_point_array(array);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;
    use sensei::analysis::descriptive::DescriptiveStats;
    use sensei::analysis::AnalysisAdaptor as _;

    fn small() -> LeslieConfig {
        LeslieConfig {
            grid: [16, 17, 8],
            ..LeslieConfig::default()
        }
    }

    #[test]
    fn shear_profile_initialized() {
        World::run(1, |comm| {
            let sim = Leslie::new(comm, small());
            let [_, ny, _] = sim.ghosted_dims();
            // Bottom of the layer flows −u0-ish, top +u0-ish.
            let lo = sim.u_at(3, 0, 2);
            let hi = sim.u_at(3, ny - 1, 2);
            assert!(lo < -0.8, "bottom stream {lo}");
            assert!(hi > 0.8, "top stream {hi}");
        });
    }

    #[test]
    fn halo_planes_match_neighbors_after_step() {
        World::run(2, |comm| {
            let mut sim = Leslie::new(comm, small());
            sim.step(comm);
            sim.step(comm);
            // Gather every rank's interior boundary planes and ghosts.
            let [nx, ny, _] = sim.ghosted_dims();
            let plane = nx * ny;
            let interior_top: Vec<f64> =
                sim.u[sim.nz_local() * plane..(sim.nz_local() + 1) * plane].to_vec();
            let ghost_bottom: Vec<f64> = sim.u[..plane].to_vec();
            let tops = comm.allgather(interior_top);
            let ghosts = comm.allgather(ghost_bottom);
            let p = comm.size();
            for (r, ghost) in ghosts.iter().enumerate() {
                let below = (r + p - 1) % p;
                assert_eq!(
                    *ghost, tops[below],
                    "rank {r}'s bottom ghost = rank {below}'s top interior"
                );
            }
        });
    }

    #[test]
    fn decomposition_invariance_of_energy() {
        let e1 = World::run(1, |comm| {
            let mut sim = Leslie::new(comm, small());
            for _ in 0..3 {
                sim.step(comm);
            }
            sim.kinetic_energy(comm)
        });
        let e2 = World::run(2, |comm| {
            let mut sim = Leslie::new(comm, small());
            for _ in 0..3 {
                sim.step(comm);
            }
            sim.kinetic_energy(comm)
        });
        let rel = (e1[0] - e2[0]).abs() / e1[0];
        assert!(rel < 1e-12, "E(1 rank)={} E(2 ranks)={}", e1[0], e2[0]);
    }

    #[test]
    fn vorticity_peaks_in_the_shear_layer() {
        World::run(1, |comm| {
            let sim = Leslie::new(comm, small());
            let vort = sim.vorticity_magnitude();
            let [nx, ny, _] = sim.ghosted_dims();
            let mid_j = ny / 2;
            let edge_j = 1;
            let at = |j: usize| vort[(2 * ny + j) * nx + 3];
            assert!(
                at(mid_j) > 4.0 * at(edge_j).max(1e-9),
                "layer center {} ≫ free stream {}",
                at(mid_j),
                at(edge_j)
            );
        });
    }

    #[test]
    fn mixing_layer_thickens_over_time() {
        // The TML's defining evolution: the shear layer spreads (viscous
        // diffusion plus perturbation stirring widen the tanh profile).
        World::run(1, |comm| {
            // Elevated viscosity so the spreading is visible in a short
            // test run.
            let mut sim = Leslie::new(
                comm,
                LeslieConfig {
                    nu: 0.05,
                    ..small()
                },
            );
            let [nx, ny, _] = sim.ghosted_dims();
            // Momentum-thickness proxy: ∫ (1 − ū²/U²) dy over the mean
            // (x,z-averaged) streamwise profile.
            let thickness = |s: &Leslie| -> f64 {
                let mut th = 0.0;
                for j in 0..ny {
                    let mut mean = 0.0;
                    let mut count = 0.0;
                    for k in 1..=s.nz_local() {
                        for i in 0..nx {
                            mean += s.u[(k * ny + j) * nx + i];
                            count += 1.0;
                        }
                    }
                    let ubar = mean / count;
                    th += 1.0 - (ubar * ubar).min(1.0);
                }
                th
            };
            let t0 = thickness(&sim);
            for _ in 0..60 {
                sim.step(comm);
            }
            let t1 = thickness(&sim);
            assert!(t1 > 1.02 * t0, "layer thickened: {t0} → {t1}");
        });
    }

    #[test]
    fn adaptor_blanks_ghosts_and_shares_velocity() {
        World::run(2, |comm| {
            let sim = Leslie::new(comm, small());
            let adaptor = LeslieAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            let arr = mesh
                .point_data()
                .expect("leslie adaptor publishes point data")
                .get("u")
                .expect("leslie adaptor publishes velocity component u");
            assert!(arr.is_zero_copy(), "velocity views are zero-copy");
            // Ghost-aware analysis counts only interior points.
            let mut stats = DescriptiveStats::new("vorticity");
            let handle = stats.results_handle();
            stats.execute(&adaptor, comm);
            let s = (*handle.lock()).unwrap();
            let [nx, ny, _] = sim.ghosted_dims();
            let interior = nx * ny * sim.nz_local() * comm.size();
            assert_eq!(s.count as usize, interior, "ghost planes excluded");
        });
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_grid_rejected() {
        World::run(3, |comm| {
            let _ = Leslie::new(comm, small()); // 8 z-planes on 3 ranks
        });
    }
}
