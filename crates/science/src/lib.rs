//! # science — proxies for the paper's three application codes (§4.2)
//!
//! The paper demonstrates SENSEI inside three production codes. Those
//! codes (Fortran CFD solvers, a BoxLib cosmology code) are substituted
//! with physics proxies that exercise the **same in situ machinery**
//! with the same data-shape characteristics:
//!
//! * [`phasta`] — an unstructured tetrahedral flow proxy (vertical tail
//!   with a tunable synthetic jet): nodal coordinates and fields map
//!   **zero-copy**, connectivity is a **full copy** — exactly the
//!   adaptor copy semantics §4.2.1 describes — and Catalyst renders
//!   slice cuts through the mesh;
//! * [`leslie`] — a Cartesian temporally-evolving mixing layer
//!   (AVF-LESLIE's TML problem): the adaptor derives vorticity
//!   magnitude and blanks ghost planes; Libsim renders 3 isosurfaces +
//!   3 slices every 5th step (§4.2.2);
//! * [`nyx`] — a particle-mesh cosmology proxy on rectilinear boxes
//!   with CIC deposition, particle migration, and ghost-cell blanking
//!   via the `vtkGhostType` convention; histogram and Catalyst-slice
//!   analyses attach with sub-second per-step cost (§4.2.3).
//!
//! Each proxy is an SPMD `minimpi` program with real halo exchange /
//! particle migration, a SENSEI data adaptor, and deterministic seeded
//! initial conditions.

pub mod leslie;
pub mod nyx;
pub mod phasta;

pub use leslie::{Leslie, LeslieAdaptor, LeslieConfig};
pub use nyx::{Nyx, NyxAdaptor, NyxConfig};
pub use phasta::{Phasta, PhastaAdaptor, PhastaConfig};

/// Classify a failed point-array attachment for the proxies' adaptors:
/// an unadvertised name is [`UnknownArray`](sensei::AdaptorError::UnknownArray),
/// a known name requested under the wrong association is
/// [`WrongAssociation`](sensei::AdaptorError::WrongAssociation), and a
/// known point request that still failed means the target mesh had the
/// wrong layout.
pub(crate) fn point_array_error(
    names: &[&str],
    assoc: sensei::Association,
    name: &str,
    layout: &str,
) -> sensei::AdaptorError {
    use sensei::AdaptorError;
    if !names.contains(&name) {
        AdaptorError::UnknownArray {
            name: name.to_string(),
            assoc,
        }
    } else if assoc != sensei::Association::Point {
        AdaptorError::WrongAssociation {
            name: name.to_string(),
            requested: assoc,
            available: sensei::Association::Point,
        }
    } else {
        AdaptorError::LayoutUnsupported {
            name: name.to_string(),
            detail: layout.to_string(),
        }
    }
}
