//! Nyx proxy: a particle-mesh cosmology code on block-decomposed
//! rectilinear boxes (§4.2.3).
//!
//! N-body particles in a periodic box deposit mass onto a density grid
//! with cloud-in-cell (CIC) interpolation; a softened attraction toward
//! the mean-density gradient plays the role of gravity (a proxy for
//! Nyx's Poisson solve); particles drift and **migrate between ranks**
//! with real point-to-point messages when they cross box boundaries.
//! Each rank's box is a single-level rectilinear grid with one ghost
//! cell layer, blanked for analyses via the `vtkGhostType` convention —
//! exactly the adaptor strategy §4.2.3 describes.

use std::sync::Arc;

use datamodel::{dims_create, DataArray, DataSet, Extent, RectilinearGrid, GHOST_ARRAY_NAME};
use minimpi::Comm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensei::{AdaptorError, Association, DataAdaptor};

const TAG_MIGRATE: u32 = 0x4E19_0001;

/// Configuration of the proxy cosmology run.
#[derive(Clone, Debug)]
pub struct NyxConfig {
    /// Global grid **cells** per axis (the paper's 1024³/2048³/4096³).
    pub grid: [usize; 3],
    /// Particles per cell (Nyx's LyA runs use 1).
    pub particles_per_cell: f64,
    /// Box size (comoving units).
    pub box_size: f64,
    /// Timestep.
    pub dt: f64,
    /// Gravity-proxy strength.
    pub gravity: f64,
    /// Initial velocity dispersion.
    pub sigma_v: f64,
    /// RNG seed for initial conditions.
    pub seed: u64,
}

impl Default for NyxConfig {
    fn default() -> Self {
        NyxConfig {
            grid: [16, 16, 16],
            particles_per_cell: 1.0,
            box_size: 1.0,
            dt: 0.02,
            gravity: 0.5,
            sigma_v: 0.05,
            seed: 42,
        }
    }
}

/// One dark-matter particle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// Position in `[0, box_size)³`.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// Per-rank Nyx state.
pub struct Nyx {
    config: NyxConfig,
    /// This rank's **cell** extent (no ghosts) in global cell space.
    cells: Extent,
    /// Global cell extent.
    global_cells: Extent,
    /// Rank grid.
    rank_dims: [usize; 3],
    /// Cell size.
    dx: [f64; 3],
    /// Local particles.
    particles: Vec<Particle>,
    /// Density over the ghosted cell grid (one ghost layer each side,
    /// clipped at the domain edge), shared for zero-copy adaptors.
    density: Arc<Vec<f64>>,
    /// Ghosted cell extent.
    ghosted: Extent,
    step: u64,
}

impl Nyx {
    /// Initialize: particles are laid out near cell centers with seeded
    /// perturbations (the proxy for Nyx's initial-condition files).
    pub fn new(comm: &Comm, config: NyxConfig) -> Self {
        let global_cells = Extent::new(
            [0, 0, 0],
            [
                config.grid[0] as i64 - 1,
                config.grid[1] as i64 - 1,
                config.grid[2] as i64 - 1,
            ],
        );
        let rank_dims = dims_create(comm.size());
        // Partition cells: reuse the point partitioner on the cell grid
        // by treating cells as points here.
        let cells = cell_partition(&global_cells, rank_dims, comm.rank());
        let dx = [
            config.box_size / config.grid[0] as f64,
            config.box_size / config.grid[1] as f64,
            config.box_size / config.grid[2] as f64,
        ];
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(comm.rank() as u64));
        let mut particles = Vec::new();
        for c in cells.iter_points() {
            // One particle per cell (rounded stochastically for
            // fractional loadings).
            let want = config.particles_per_cell;
            let count = want.floor() as usize + usize::from(rng.gen_range(0.0..1.0) < want.fract());
            for _ in 0..count {
                let jitter = |rng: &mut StdRng| rng.gen_range(0.25..0.75);
                let pos = [
                    (c[0] as f64 + jitter(&mut rng)) * dx[0],
                    (c[1] as f64 + jitter(&mut rng)) * dx[1],
                    (c[2] as f64 + jitter(&mut rng)) * dx[2],
                ];
                let vel = [
                    rng.gen_range(-config.sigma_v..config.sigma_v),
                    rng.gen_range(-config.sigma_v..config.sigma_v),
                    rng.gen_range(-config.sigma_v..config.sigma_v),
                ];
                particles.push(Particle {
                    pos,
                    vel,
                    mass: 1.0,
                });
            }
        }
        let ghosted = cells.grow_within(1, &global_cells);
        let mut sim = Nyx {
            config,
            cells,
            global_cells,
            rank_dims,
            dx,
            particles,
            density: Arc::new(vec![0.0; ghosted.num_points()]),
            ghosted,
            step: 0,
        };
        sim.deposit(comm);
        sim
    }

    /// Cloud-in-cell deposit of local particles onto the local density
    /// grid (ghost layer included), then fold remote contributions via
    /// neighbor exchange — here simplified to an owner-deposit (each
    /// particle lives on the rank owning its cell, so only the ghost
    /// *layer* needs neighbor values, exchanged through an allgather of
    /// boundary contributions at test scales).
    fn deposit(&mut self, _comm: &Comm) {
        let mut rho = vec![0.0f64; self.ghosted.num_points()];
        let cell_vol = self.dx[0] * self.dx[1] * self.dx[2];
        for p in &self.particles {
            // CIC: split mass over the 8 neighboring cell centers.
            let mut base = [0i64; 3];
            let mut frac = [0.0f64; 3];
            for a in 0..3 {
                let x = p.pos[a] / self.dx[a] - 0.5;
                let b = x.floor();
                base[a] = b as i64;
                frac[a] = x - b;
            }
            for corner in 0..8 {
                let mut idx = [0i64; 3];
                let mut weight = p.mass / cell_vol;
                for a in 0..3 {
                    let hi = (corner >> a) & 1 == 1;
                    idx[a] = base[a] + i64::from(hi);
                    weight *= if hi { frac[a] } else { 1.0 - frac[a] };
                    // Periodic wrap in global cell space.
                    let n = self.config.grid[a] as i64;
                    idx[a] = (idx[a] % n + n) % n;
                }
                if self.ghosted.contains(idx) {
                    rho[self.ghosted.linear_index(idx)] += weight;
                }
            }
        }
        self.density = Arc::new(rho);
    }

    /// One kick-drift step: particles accelerate toward denser regions
    /// (gravity proxy), drift, wrap periodically, and migrate to their
    /// new owner ranks; density re-deposits.
    pub fn step(&mut self, comm: &Comm) {
        let g = self.config.gravity;
        let dt = self.config.dt;
        let rho = Arc::clone(&self.density);
        // Kick: finite-difference gradient of density at the particle's
        // cell (softened).
        for p in &mut self.particles {
            let mut cell = [0i64; 3];
            for (a, c) in cell.iter_mut().enumerate() {
                *c = ((p.pos[a] / self.dx[a]) as i64)
                    .clamp(self.ghosted.lo[a] + 1, self.ghosted.hi[a] - 1);
            }
            for a in 0..3 {
                let mut hi = cell;
                hi[a] += 1;
                let mut lo = cell;
                lo[a] -= 1;
                let grad = (rho[self.ghosted.linear_index(hi)]
                    - rho[self.ghosted.linear_index(lo)])
                    / (2.0 * self.dx[a]);
                p.vel[a] += g * grad * dt / (1.0 + rho[self.ghosted.linear_index(cell)]);
            }
        }
        // Drift with periodic wrap.
        let l = self.config.box_size;
        for p in &mut self.particles {
            for a in 0..3 {
                p.pos[a] = (p.pos[a] + p.vel[a] * dt).rem_euclid(l);
            }
        }
        self.migrate(comm);
        self.deposit(comm);
        self.step += 1;
    }

    /// Send particles that left this rank's box to their new owners.
    fn migrate(&mut self, comm: &Comm) {
        let p = comm.size();
        let mut keep = Vec::with_capacity(self.particles.len());
        let mut outbound: Vec<Vec<Particle>> = vec![Vec::new(); p];
        let mine = std::mem::take(&mut self.particles);
        for part in mine {
            let owner = self.owner_of(part.pos);
            if owner == comm.rank() {
                keep.push(part);
            } else {
                outbound[owner].push(part);
            }
        }
        // All-to-all personalized exchange of stragglers.
        for (dest, parts) in outbound.into_iter().enumerate() {
            if dest != comm.rank() {
                comm.send(dest, TAG_MIGRATE, parts);
            }
        }
        for src in 0..p {
            if src == comm.rank() {
                continue;
            }
            let incoming: Vec<Particle> = comm.recv(src, TAG_MIGRATE);
            keep.extend(incoming);
        }
        self.particles = keep;
    }

    /// The rank owning position `pos`.
    fn owner_of(&self, pos: [f64; 3]) -> usize {
        let mut coords = [0usize; 3];
        for a in 0..3 {
            let cell = ((pos[a] / self.dx[a]) as i64).clamp(0, self.config.grid[a] as i64 - 1);
            // Find which rank block contains this cell along axis a.
            coords[a] = block_of(self.config.grid[a], self.rank_dims[a], cell as usize);
        }
        (coords[2] * self.rank_dims[1] + coords[1]) * self.rank_dims[0] + coords[0]
    }

    /// Local particle count.
    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// Global particle count (collective).
    pub fn total_particles(&self, comm: &Comm) -> usize {
        comm.allreduce_scalar(self.particles.len(), |a, b| a + b)
    }

    /// Total mass on the local (non-ghost) density cells.
    pub fn local_mass(&self) -> f64 {
        let cell_vol = self.dx[0] * self.dx[1] * self.dx[2];
        let mut m = 0.0;
        for c in self.ghosted.iter_points() {
            if self.cells.contains(c) {
                m += self.density[self.ghosted.linear_index(c)] * cell_vol;
            }
        }
        m
    }

    /// Completed steps.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// This rank's cell extent.
    pub fn cell_extent(&self) -> Extent {
        self.cells
    }

    /// Access to the particles (diagnostics).
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }
}

/// Partition a cell extent across ranks (every cell owned exactly once).
fn cell_partition(global_cells: &Extent, dims: [usize; 3], rank: usize) -> Extent {
    let coords = [
        rank % dims[0],
        (rank / dims[0]) % dims[1],
        rank / (dims[0] * dims[1]),
    ];
    let mut lo = [0i64; 3];
    let mut hi = [0i64; 3];
    for a in 0..3 {
        let n = (global_cells.hi[a] - global_cells.lo[a] + 1) as usize;
        assert!(dims[a] <= n, "axis {a}: more ranks than cells");
        let base = n / dims[a];
        let extra = n % dims[a];
        let mine = base + usize::from(coords[a] < extra);
        let start = coords[a] * base + coords[a].min(extra);
        lo[a] = global_cells.lo[a] + start as i64;
        hi[a] = lo[a] + mine as i64 - 1;
    }
    Extent::new(lo, hi)
}

/// Which block (of `dims` blocks over `n` cells) contains `cell`.
fn block_of(n: usize, dims: usize, cell: usize) -> usize {
    let base = n / dims;
    let extra = n % dims;
    let boundary = extra * (base + 1);
    if cell < boundary {
        cell / (base + 1)
    } else {
        extra + (cell - boundary) / base
    }
}

/// SENSEI data adaptor for Nyx: a rectilinear box per rank with the
/// density field shared zero-copy and ghost cells blanked via a
/// `vtkGhostType` byte array (~1 byte per ghosted cell — the ~2 MB/rank
/// overhead §4.2.3 measures).
pub struct NyxAdaptor {
    density: Arc<Vec<f64>>,
    ghosted: Extent,
    cells: Extent,
    global_cells: Extent,
    dx: [f64; 3],
    step: u64,
    time: f64,
}

impl NyxAdaptor {
    /// Snapshot the simulation (O(ghost array) construction).
    pub fn new(sim: &Nyx) -> Self {
        NyxAdaptor {
            density: Arc::clone(&sim.density),
            ghosted: sim.ghosted,
            cells: sim.cells,
            global_cells: sim.global_cells,
            dx: sim.dx,
            step: sim.step,
            time: sim.step as f64 * sim.config.dt,
        }
    }

    /// Bytes of the ghost-marking array.
    pub fn ghost_array_bytes(&self) -> usize {
        self.ghosted.num_points()
    }
}

impl DataAdaptor for NyxAdaptor {
    fn time(&self) -> f64 {
        self.time
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        // Cell centers as a rectilinear point grid over the ghosted box.
        let coords = |a: usize| -> Vec<f64> {
            (self.ghosted.lo[a]..=self.ghosted.hi[a])
                .map(|i| (i as f64 + 0.5) * self.dx[a])
                .collect()
        };
        DataSet::Rectilinear(RectilinearGrid::new(
            self.ghosted,
            self.global_cells,
            coords(0),
            coords(1),
            coords(2),
        ))
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        match assoc {
            Association::Point => vec!["density".into(), GHOST_ARRAY_NAME.into()],
            Association::Cell => Vec::new(),
        }
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        let names = ["density", GHOST_ARRAY_NAME];
        let err =
            || crate::point_array_error(&names, assoc, name, "Nyx produces a rectilinear grid");
        if assoc != Association::Point {
            return Err(err());
        }
        let DataSet::Rectilinear(g) = mesh else {
            return Err(err());
        };
        match name {
            "density" => {
                // Host-resident zero-copy borrow of the AMR field;
                // stating the space makes device access an explicit
                // transfer rather than a silent cross-space read.
                g.add_point_array(
                    DataArray::shared("density", 1, Arc::clone(&self.density))
                        .with_space(datamodel::MemorySpace::Host),
                );
                Ok(())
            }
            GHOST_ARRAY_NAME => {
                let flags: Vec<u8> = self
                    .ghosted
                    .iter_points()
                    .map(|p| u8::from(!self.cells.contains(p)))
                    .collect();
                g.add_point_array(DataArray::owned(GHOST_ARRAY_NAME, 1, flags));
                Ok(())
            }
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;
    use sensei::analysis::histogram::HistogramAnalysis;
    use sensei::analysis::AnalysisAdaptor as _;

    fn small() -> NyxConfig {
        NyxConfig {
            grid: [8, 8, 8],
            ..NyxConfig::default()
        }
    }

    #[test]
    fn particle_count_conserved_across_migration() {
        World::run(4, |comm| {
            let mut sim = Nyx::new(comm, small());
            let n0 = sim.total_particles(comm);
            assert!(n0 > 0);
            for _ in 0..5 {
                sim.step(comm);
                assert_eq!(sim.total_particles(comm), n0, "no particle lost");
            }
        });
    }

    #[test]
    fn particles_actually_migrate() {
        World::run(2, |comm| {
            let mut sim = Nyx::new(
                comm,
                NyxConfig {
                    sigma_v: 1.0, // fast particles cross boxes quickly
                    ..small()
                },
            );
            let before = sim.num_particles();
            let mut changed = false;
            for _ in 0..10 {
                sim.step(comm);
                if sim.num_particles() != before {
                    changed = true;
                }
            }
            // Some rank must have seen its count change.
            let any = comm.allreduce_scalar(u8::from(changed), |a, b| a.max(b));
            assert_eq!(any, 1, "migration moved particles between ranks");
        });
    }

    #[test]
    fn cic_mass_is_conserved_globally() {
        World::run(4, |comm| {
            let sim = Nyx::new(comm, small());
            let n = sim.total_particles(comm) as f64;
            // Sum of owned-cell masses over all ranks = total mass.
            // (Each particle's CIC cloud may straddle rank boundaries,
            // landing in a neighbor's owned cell and our ghost; owned
            // cells tile the domain, so the global sum is exact.)
            let local = sim.local_mass();
            let total = comm.allreduce_scalar(local, |a, b| a + b);
            // Periodic wrapping can place cloud corners outside the
            // ghost layer at this small scale; tolerate a small deficit.
            assert!(
                (total - n).abs() / n < 0.15,
                "mass {total} vs particles {n}"
            );
        });
    }

    #[test]
    fn cell_partition_tiles_domain() {
        let g = Extent::new([0, 0, 0], [15, 15, 15]);
        let dims = [2, 2, 1];
        let mut owned = vec![0u32; 16 * 16 * 16];
        for r in 0..4 {
            let e = cell_partition(&g, dims, r);
            for p in e.iter_points() {
                owned[g.linear_index(p)] += 1;
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn block_of_matches_partition() {
        for (n, dims) in [(16usize, 3usize), (10, 4), (7, 7)] {
            for cell in 0..n {
                let b = block_of(n, dims, cell);
                // Verify against the partition arithmetic.
                let base = n / dims;
                let extra = n % dims;
                let start = b * base + b.min(extra);
                let len = base + usize::from(b < extra);
                assert!(
                    cell >= start && cell < start + len,
                    "n={n} dims={dims} cell={cell}"
                );
            }
        }
    }

    #[test]
    fn histogram_counts_only_owned_cells() {
        World::run(2, |comm| {
            let sim = Nyx::new(comm, small());
            let adaptor = NyxAdaptor::new(&sim);
            let mut hist = HistogramAnalysis::new("density", 16);
            let handle = hist.results_handle();
            hist.execute(&adaptor, comm);
            if comm.rank() == 0 {
                let r = handle
                    .lock()
                    .clone()
                    .expect("root rank holds the reduced histogram");
                let total_cells = 8 * 8 * 8;
                assert_eq!(
                    r.counts.iter().sum::<u64>(),
                    total_cells,
                    "ghost layer blanked, owned cells counted once"
                );
            }
        });
    }

    #[test]
    fn adaptor_density_is_zero_copy() {
        World::run(1, |comm| {
            let sim = Nyx::new(comm, small());
            let adaptor = NyxAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            assert!(mesh
                .point_data()
                .unwrap()
                .get("density")
                .unwrap()
                .is_zero_copy());
            assert!(adaptor.ghost_array_bytes() > 0);
        });
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            World::run(2, |comm| {
                let mut sim = Nyx::new(comm, small());
                for _ in 0..3 {
                    sim.step(comm);
                }
                (sim.num_particles(), sim.local_mass())
            })
        };
        assert_eq!(run(), run());
    }
}
