//! PHASTA proxy: an unstructured tetrahedral flow solver around a
//! vertical tail with a tunable synthetic jet (§4.2.1).
//!
//! The mesh is a Kuhn-tetrahedralized lattice over the flow domain,
//! slab-decomposed along x. The solver proxy relaxes nodal velocity
//! toward a potential-like flow around the tail while a synthetic jet —
//! whose **frequency and amplitude are reconfigurable between steps**,
//! the live-steering capability §4.2.1 highlights — injects an
//! oscillating crossflow at the tail root.
//!
//! The SENSEI adaptor reproduces the paper's copy semantics exactly:
//! nodal coordinates and fields map **zero-copy** (shared buffers);
//! the VTK connectivity is a **full copy** built on first use.

use std::sync::Arc;

use datamodel::{CellType, DataArray, DataSet, UnstructuredGrid};
use minimpi::Comm;
use sensei::{AdaptorError, Association, DataAdaptor};

/// Configuration of the tail-flow problem.
#[derive(Clone, Debug)]
pub struct PhastaConfig {
    /// Structured lattice nodes per axis (tetrahedralized 6:1).
    pub lattice: [usize; 3],
    /// Domain size.
    pub domain: [f64; 3],
    /// Free-stream velocity (+x).
    pub u_infinity: f64,
    /// Synthetic-jet amplitude (live-tunable).
    pub jet_amplitude: f64,
    /// Synthetic-jet frequency (live-tunable).
    pub jet_frequency: f64,
    /// Relaxation rate of the solver proxy.
    pub relax: f64,
    /// Timestep.
    pub dt: f64,
}

impl Default for PhastaConfig {
    fn default() -> Self {
        PhastaConfig {
            lattice: [17, 13, 13],
            domain: [2.0, 1.0, 1.0],
            u_infinity: 1.0,
            jet_amplitude: 0.3,
            jet_frequency: 8.0,
            relax: 0.15,
            dt: 0.01,
        }
    }
}

/// The tail geometry: a thin vertical fin in the middle of the domain.
fn inside_tail(p: [f64; 3], domain: [f64; 3]) -> bool {
    let cx = domain[0] * 0.45;
    let half_chord = domain[0] * 0.12;
    let thickness = domain[1] * 0.04;
    let height = domain[2] * 0.6;
    (p[0] - cx).abs() < half_chord * (1.0 - (p[2] / height).min(1.0) * 0.6)
        && (p[1] - domain[1] * 0.5).abs() < thickness
        && p[2] < height
}

/// Per-rank PHASTA state: a slab of the tetrahedral mesh plus shared
/// nodal buffers.
pub struct Phasta {
    config: PhastaConfig,
    /// Nodal coordinates (3 SoA buffers, zero-copy shareable).
    coords: [Arc<Vec<f64>>; 3],
    /// Velocity components (SoA, zero-copy shareable).
    velocity: [Arc<Vec<f64>>; 3],
    /// Tet connectivity (local node indices).
    connectivity: Vec<i64>,
    /// Nodes flagged inside the tail (no-slip).
    solid: Vec<bool>,
    /// Node-to-node adjacency (from tets), for the relaxation stencil.
    neighbors: Vec<Vec<u32>>,
    /// Local lattice dims.
    local_nodes: [usize; 3],
    step: u64,
}

impl Phasta {
    /// Build the rank-local mesh slab and initial flow.
    pub fn new(comm: &Comm, config: PhastaConfig) -> Self {
        let [gx, gy, gz] = config.lattice;
        let p = comm.size();
        assert!(gx >= 2 * p, "need at least two x-planes of cells per rank");
        // Slab decomposition over x lattice cells, sharing planes.
        let cells_x = gx - 1;
        let base = cells_x / p;
        let extra = cells_x % p;
        let my_cells = base + usize::from(comm.rank() < extra);
        let x_offset = comm.rank() * base + comm.rank().min(extra);
        let nx = my_cells + 1;
        let local_nodes = [nx, gy, gz];
        let spacing = [
            config.domain[0] / (gx - 1) as f64,
            config.domain[1] / (gy - 1) as f64,
            config.domain[2] / (gz - 1) as f64,
        ];

        let nn = nx * gy * gz;
        let node = |i: usize, j: usize, k: usize| (k * gy + j) * nx + i;
        let mut xs = Vec::with_capacity(nn);
        let mut ys = Vec::with_capacity(nn);
        let mut zs = Vec::with_capacity(nn);
        let mut solid = Vec::with_capacity(nn);
        for k in 0..gz {
            for j in 0..gy {
                for i in 0..nx {
                    let pos = [
                        (x_offset + i) as f64 * spacing[0],
                        j as f64 * spacing[1],
                        k as f64 * spacing[2],
                    ];
                    xs.push(pos[0]);
                    ys.push(pos[1]);
                    zs.push(pos[2]);
                    solid.push(inside_tail(pos, config.domain));
                }
            }
        }

        // Kuhn 6-tet split of every lattice cell.
        const TETS: [[usize; 4]; 6] = [
            [0, 1, 3, 7],
            [0, 1, 5, 7],
            [0, 2, 3, 7],
            [0, 2, 6, 7],
            [0, 4, 5, 7],
            [0, 4, 6, 7],
        ];
        let mut connectivity = Vec::with_capacity((nx - 1) * (gy - 1) * (gz - 1) * 24);
        for k in 0..gz - 1 {
            for j in 0..gy - 1 {
                for i in 0..nx - 1 {
                    let corner =
                        |c: usize| node(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1)) as i64;
                    for t in &TETS {
                        for &c in t {
                            connectivity.push(corner(c));
                        }
                    }
                }
            }
        }

        // Node adjacency from tet edges.
        let _ = x_offset; // slab origin folded into the coordinates above
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); nn];
        for tet in connectivity.chunks(4) {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        let na = tet[a] as usize;
                        let nb = tet[b] as u32;
                        if !neighbors[na].contains(&nb) {
                            neighbors[na].push(nb);
                        }
                    }
                }
            }
        }

        // Initial flow: free stream, zero in the solid.
        let mut u = vec![config.u_infinity; nn];
        let (v, w) = (vec![0.0; nn], vec![0.0; nn]);
        for (n, &s) in solid.iter().enumerate() {
            if s {
                u[n] = 0.0;
            }
        }
        Phasta {
            config,
            coords: [Arc::new(xs), Arc::new(ys), Arc::new(zs)],
            velocity: [Arc::new(u), Arc::new(v), Arc::new(w)],
            connectivity,
            solid,
            neighbors,
            local_nodes,
            step: 0,
        }
    }

    /// Retune the synthetic jet between steps — the live problem
    /// redefinition loop of §4.2.1 ("the frequency and the amplitude of
    /// the flow control can be manipulated interactively").
    pub fn set_jet(&mut self, amplitude: f64, frequency: f64) {
        self.config.jet_amplitude = amplitude;
        self.config.jet_frequency = frequency;
    }

    /// One relaxation step with jet forcing, then shared-plane averaging
    /// with the x neighbors.
    pub fn step(&mut self, comm: &Comm) {
        let t = self.step as f64 * self.config.dt;
        let nn = self.solid.len();
        let relax = self.config.relax;
        let jet = self.config.jet_amplitude * (self.config.jet_frequency * t).sin();
        let domain = self.config.domain;
        let (xs, ys, zs) = (&self.coords[0], &self.coords[1], &self.coords[2]);

        let mut new_vel: [Vec<f64>; 3] = [
            self.velocity[0].as_ref().clone(),
            self.velocity[1].as_ref().clone(),
            self.velocity[2].as_ref().clone(),
        ];
        for n in 0..nn {
            if self.solid[n] {
                for comp in new_vel.iter_mut() {
                    comp[n] = 0.0;
                }
                continue;
            }
            // Relax toward the neighborhood mean (smoothing proxy for
            // the implicit solve) plus free-stream recovery.
            for (c, comp) in new_vel.iter_mut().enumerate() {
                let mut mean = 0.0;
                for &nb in &self.neighbors[n] {
                    mean += self.velocity[c][nb as usize];
                }
                let mean = if self.neighbors[n].is_empty() {
                    self.velocity[c][n]
                } else {
                    mean / self.neighbors[n].len() as f64
                };
                let target = if c == 0 { self.config.u_infinity } else { 0.0 };
                comp[n] = self.velocity[c][n]
                    + relax * (mean - self.velocity[c][n])
                    + 0.02 * relax * (target - self.velocity[c][n]);
            }
            // Jet forcing near the tail root.
            let pos = [xs[n], ys[n], zs[n]];
            let jet_center = [domain[0] * 0.45, domain[1] * 0.5, 0.05 * domain[2]];
            let d2 = (pos[0] - jet_center[0]).powi(2)
                + (pos[1] - jet_center[1]).powi(2)
                + (pos[2] - jet_center[2]).powi(2);
            let influence = (-d2 / 0.01).exp();
            new_vel[1][n] += jet * influence;
        }

        // Average the shared x-planes with neighbors (continuity across
        // the slab decomposition).
        self.exchange_shared_planes(comm, &mut new_vel);
        self.velocity = [
            Arc::new(std::mem::take(&mut new_vel[0])),
            Arc::new(std::mem::take(&mut new_vel[1])),
            Arc::new(std::mem::take(&mut new_vel[2])),
        ];
        self.step += 1;
    }

    fn exchange_shared_planes(&self, comm: &Comm, vel: &mut [Vec<f64>; 3]) {
        const TAG_L: u32 = 0x0FA5_0001;
        const TAG_R: u32 = 0x0FA5_0002;
        let me = comm.rank();
        let p = comm.size();
        let [nx, gy, gz] = self.local_nodes;
        let plane_nodes: Vec<usize> = (0..gz)
            .flat_map(|k| (0..gy).map(move |j| (k * gy + j) * nx))
            .collect();
        let right_nodes: Vec<usize> = plane_nodes.iter().map(|n| n + nx - 1).collect();
        for (c, vc) in vel.iter_mut().enumerate() {
            let tag_off = c as u32 * 16;
            if me + 1 < p {
                let outgoing: Vec<f64> = right_nodes.iter().map(|&n| vc[n]).collect();
                comm.send(me + 1, TAG_R + tag_off, outgoing);
            }
            if me > 0 {
                let outgoing: Vec<f64> = plane_nodes.iter().map(|&n| vc[n]).collect();
                comm.send(me - 1, TAG_L + tag_off, outgoing);
                let theirs: Vec<f64> = comm.recv(me - 1, TAG_R + tag_off);
                for (i, &n) in plane_nodes.iter().enumerate() {
                    vc[n] = 0.5 * (vc[n] + theirs[i]);
                }
            }
            if me + 1 < p {
                let theirs: Vec<f64> = comm.recv(me + 1, TAG_L + tag_off);
                for (i, &n) in right_nodes.iter().enumerate() {
                    vc[n] = 0.5 * (vc[n] + theirs[i]);
                }
            }
        }
    }

    /// Local node count.
    pub fn num_nodes(&self) -> usize {
        self.solid.len()
    }

    /// Local tet count.
    pub fn num_tets(&self) -> usize {
        self.connectivity.len() / 4
    }

    /// Global element count (collective).
    pub fn total_tets(&self, comm: &Comm) -> usize {
        comm.allreduce_scalar(self.num_tets(), |a, b| a + b)
    }

    /// Completed steps.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Velocity magnitude at a local node (diagnostics).
    pub fn velocity_magnitude(&self, n: usize) -> f64 {
        let [u, v, w] = [
            self.velocity[0][n],
            self.velocity[1][n],
            self.velocity[2][n],
        ];
        (u * u + v * v + w * w).sqrt()
    }

    /// Maximum |v| (crossflow) component over local fluid nodes — the
    /// jet's observable effect.
    pub fn max_crossflow(&self) -> f64 {
        self.velocity[1]
            .iter()
            .zip(&self.solid)
            .filter(|(_, &s)| !s)
            .map(|(v, _)| v.abs())
            .fold(0.0, f64::max)
    }
}

/// SENSEI data adaptor for PHASTA: coordinates and velocity are
/// zero-copy SoA views; connectivity is a full copy built lazily on the
/// first mesh request (and counted so tests can verify the §4.2.1 copy
/// semantics).
pub struct PhastaAdaptor {
    coords: [Arc<Vec<f64>>; 3],
    velocity: [Arc<Vec<f64>>; 3],
    connectivity: Vec<i64>,
    step: u64,
    dt: f64,
}

impl PhastaAdaptor {
    /// Snapshot the solver state. The connectivity copy happens here —
    /// the one real copy in the PHASTA coupling.
    pub fn new(sim: &Phasta) -> Self {
        PhastaAdaptor {
            coords: [
                Arc::clone(&sim.coords[0]),
                Arc::clone(&sim.coords[1]),
                Arc::clone(&sim.coords[2]),
            ],
            velocity: [
                Arc::clone(&sim.velocity[0]),
                Arc::clone(&sim.velocity[1]),
                Arc::clone(&sim.velocity[2]),
            ],
            connectivity: sim.connectivity.clone(),
            step: sim.step,
            dt: sim.config.dt,
        }
    }

    fn grid(&self) -> UnstructuredGrid {
        let n_tets = self.connectivity.len() / 4;
        let points = DataArray::soa(
            "points",
            vec![
                datamodel::Buffer::Shared(Arc::clone(&self.coords[0])),
                datamodel::Buffer::Shared(Arc::clone(&self.coords[1])),
                datamodel::Buffer::Shared(Arc::clone(&self.coords[2])),
            ],
        );
        UnstructuredGrid::new(
            points,
            self.connectivity.clone(),
            (0..=n_tets).map(|c| c * 4).collect(),
            vec![CellType::Tetra; n_tets],
        )
    }
}

impl DataAdaptor for PhastaAdaptor {
    fn time(&self) -> f64 {
        self.step as f64 * self.dt
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        DataSet::Unstructured(self.grid())
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        match assoc {
            Association::Point => vec!["velocity".into(), "velmag".into()],
            Association::Cell => Vec::new(),
        }
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        let names = ["velocity", "velmag"];
        let err = || {
            crate::point_array_error(&names, assoc, name, "PHASTA produces an unstructured mesh")
        };
        if assoc != Association::Point {
            return Err(err());
        }
        let DataSet::Unstructured(g) = mesh else {
            return Err(err());
        };
        match name {
            "velocity" => {
                // Zero-copy SoA borrow of the solver's host buffers;
                // the explicit space keeps device consumers honest.
                g.add_point_array(
                    DataArray::soa(
                        "velocity",
                        vec![
                            datamodel::Buffer::Shared(Arc::clone(&self.velocity[0])),
                            datamodel::Buffer::Shared(Arc::clone(&self.velocity[1])),
                            datamodel::Buffer::Shared(Arc::clone(&self.velocity[2])),
                        ],
                    )
                    .with_space(datamodel::MemorySpace::Host),
                );
                Ok(())
            }
            "velmag" => {
                let n = self.velocity[0].len();
                let mags: Vec<f64> = (0..n)
                    .map(|i| {
                        let (u, v, w) = (
                            self.velocity[0][i],
                            self.velocity[1][i],
                            self.velocity[2][i],
                        );
                        (u * u + v * v + w * w).sqrt()
                    })
                    .collect();
                g.add_point_array(DataArray::owned("velmag", 1, mags));
                Ok(())
            }
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;

    fn small() -> PhastaConfig {
        PhastaConfig {
            lattice: [13, 9, 9],
            ..PhastaConfig::default()
        }
    }

    #[test]
    fn mesh_counts_are_consistent() {
        World::run(2, |comm| {
            let sim = Phasta::new(comm, small());
            // 6 tets per lattice cell.
            let [gx, gy, gz] = [13usize, 9, 9];
            let total = sim.total_tets(comm);
            assert_eq!(total, (gx - 1) * (gy - 1) * (gz - 1) * 6);
            assert!(sim.num_nodes() > 0);
        });
    }

    #[test]
    fn tail_enforces_no_slip() {
        World::run(1, |comm| {
            let mut sim = Phasta::new(comm, small());
            for _ in 0..5 {
                sim.step(comm);
            }
            for n in 0..sim.num_nodes() {
                if sim.solid[n] {
                    assert_eq!(sim.velocity_magnitude(n), 0.0, "node {n} in the tail");
                }
            }
            // The tail exists in this lattice.
            assert!(sim.solid.iter().any(|&s| s), "tail occupies some nodes");
        });
    }

    #[test]
    fn jet_amplitude_controls_crossflow() {
        World::run(1, |comm| {
            let run = |amp: f64| {
                let mut sim = Phasta::new(
                    comm,
                    PhastaConfig {
                        jet_amplitude: amp,
                        ..small()
                    },
                );
                for _ in 0..10 {
                    sim.step(comm);
                }
                sim.max_crossflow()
            };
            let weak = run(0.05);
            let strong = run(0.6);
            assert!(
                strong > 2.0 * weak,
                "stronger jet ⇒ stronger crossflow ({weak} vs {strong})"
            );
        });
    }

    #[test]
    fn live_retuning_takes_effect() {
        World::run(1, |comm| {
            let mut sim = Phasta::new(
                comm,
                PhastaConfig {
                    jet_amplitude: 0.0,
                    ..small()
                },
            );
            for _ in 0..5 {
                sim.step(comm);
            }
            let quiet = sim.max_crossflow();
            sim.set_jet(0.8, 12.0); // steer mid-run
            for _ in 0..10 {
                sim.step(comm);
            }
            let loud = sim.max_crossflow();
            assert!(loud > quiet + 0.01, "retuned jet visible: {quiet} → {loud}");
        });
    }

    #[test]
    fn adaptor_copy_semantics_match_paper() {
        World::run(1, |comm| {
            let sim = Phasta::new(comm, small());
            let adaptor = PhastaAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            let DataSet::Unstructured(g) = &mesh else {
                panic!("unstructured mesh")
            };
            // Coordinates and velocity: zero-copy.
            assert!(g.points.is_zero_copy(), "nodal coordinates shared");
            assert!(
                g.point_data.get("velocity").unwrap().is_zero_copy(),
                "field arrays shared"
            );
            // Connectivity: a real copy, distinct storage.
            assert_eq!(g.connectivity.len(), sim.connectivity.len());
            assert_ne!(
                g.connectivity.as_ptr(),
                sim.connectivity.as_ptr(),
                "connectivity is a full copy"
            );
        });
    }

    #[test]
    fn shared_planes_agree_across_ranks() {
        World::run(2, |comm| {
            let mut sim = Phasta::new(comm, small());
            for _ in 0..3 {
                sim.step(comm);
            }
            // Rank 0's right plane equals rank 1's left plane after the
            // averaging exchange.
            let [nx, gy, gz] = sim.local_nodes;
            let vals: Vec<f64> = if comm.rank() == 0 {
                (0..gz)
                    .flat_map(|k| (0..gy).map(move |j| (k * gy + j) * nx + nx - 1))
                    .map(|n| sim.velocity[0][n])
                    .collect()
            } else {
                (0..gz)
                    .flat_map(|k| (0..gy).map(move |j| (k * gy + j) * nx))
                    .map(|n| sim.velocity[0][n])
                    .collect()
            };
            let all = comm.allgather(vals);
            assert_eq!(all[0], all[1], "shared plane is single-valued");
        });
    }

    #[test]
    fn slice_cut_through_tail_produces_geometry() {
        World::run(1, |comm| {
            let sim = Phasta::new(comm, small());
            let adaptor = PhastaAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            let DataSet::Unstructured(g) = &mesh else {
                unreachable!()
            };
            let tris = catalyst::cutter::cut_tets(g, "velmag", [0.0, 1.0, 0.0], 0.5);
            assert!(!tris.is_empty(), "mid-plane cut intersects the mesh");
            // Cut area ≈ the x–z plane area of the domain.
            let area = catalyst::cutter::cut_area(&tris);
            assert!(
                (area - 2.0).abs() < 0.1,
                "cut area {area} ≈ 2.0 (2×1 plane)"
            );
        });
    }
}
