//! SENSEI data adaptor for the oscillator miniapp: a zero-copy,
//! lazily-constructed view of the simulation's structured field.

use std::sync::Arc;

use datamodel::{ghost_array, DataArray, DataSet, Extent, ImageData, GHOST_ARRAY_NAME};
use sensei::{AdaptorError, Association, DataAdaptor};

use crate::sim::Simulation;

/// Zero-copy adaptor over one timestep of the simulation.
///
/// Construction costs two `Arc` clones and a handful of scalars — this is
/// the overhead the paper measures as "almost nonexistent" (§3.2). The
/// field array is attached lazily and shares the simulation's buffer.
pub struct OscillatorAdaptor {
    field: Arc<Vec<f64>>,
    local: Extent,
    global: Extent,
    spacing: [f64; 3],
    time: f64,
    step: u64,
}

impl OscillatorAdaptor {
    /// Snapshot the simulation's current state (O(1)).
    pub fn new(sim: &Simulation) -> Self {
        OscillatorAdaptor {
            field: sim.field(),
            local: sim.local_extent(),
            global: sim.global_extent(),
            spacing: sim.spacing(),
            time: sim.current_time(),
            step: sim.current_step(),
        }
    }

    fn grid(&self) -> ImageData {
        ImageData::new(self.local, self.global).with_geometry([0.0; 3], self.spacing)
    }
}

impl DataAdaptor for OscillatorAdaptor {
    fn time(&self) -> f64 {
        self.time
    }

    fn step(&self) -> u64 {
        self.step
    }

    fn mesh(&self) -> DataSet {
        DataSet::Image(self.grid())
    }

    fn array_names(&self, assoc: Association) -> Vec<String> {
        match assoc {
            Association::Point => vec!["data".to_string(), GHOST_ARRAY_NAME.to_string()],
            Association::Cell => Vec::new(),
        }
    }

    fn add_array(
        &self,
        mesh: &mut DataSet,
        assoc: Association,
        name: &str,
    ) -> Result<(), AdaptorError> {
        if name != "data" && name != GHOST_ARRAY_NAME {
            return Err(AdaptorError::UnknownArray {
                name: name.to_string(),
                assoc,
            });
        }
        if assoc != Association::Point {
            return Err(AdaptorError::WrongAssociation {
                name: name.to_string(),
                requested: assoc,
                available: Association::Point,
            });
        }
        let DataSet::Image(g) = mesh else {
            return Err(AdaptorError::LayoutUnsupported {
                name: name.to_string(),
                detail: "oscillator produces a single structured grid".to_string(),
            });
        };
        if name == GHOST_ARRAY_NAME {
            // Neighbouring blocks share a point plane (partition_extent
            // splits cells); mark the duplicated planes so point
            // analyses stay decomposition-invariant.
            g.add_point_array(ghost_array(&self.local, &self.global));
        } else {
            // The simulation's field lives in host RAM; declare the
            // residency so space-checked consumers (and the offload
            // snapshot path) know where the zero-copy borrow is valid.
            g.add_point_array(
                DataArray::shared("data", 1, Arc::clone(&self.field))
                    .with_space(datamodel::MemorySpace::Host),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::format_deck;
    use crate::sim::SimConfig;
    use minimpi::World;
    use sensei::analysis::histogram::HistogramAnalysis;
    use sensei::analysis::AnalysisAdaptor as _;
    use sensei::Bridge;

    fn run_sim(comm: &minimpi::Comm, grid: usize) -> Simulation {
        let deck = format_deck(&crate::demo_oscillators());
        let root_deck = if comm.rank() == 0 { Some(deck) } else { None };
        let cfg = SimConfig {
            grid: [grid, grid, grid],
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(comm, cfg, root_deck.as_deref());
        sim.step(comm);
        sim
    }

    #[test]
    fn adaptor_is_zero_copy() {
        World::run(2, |comm| {
            let sim = run_sim(comm, 8);
            let adaptor = OscillatorAdaptor::new(&sim);
            let mesh = adaptor.full_mesh();
            let arr = mesh.point_data().unwrap().get("data").unwrap();
            assert!(arr.is_zero_copy(), "field attached without copying");
            assert_eq!(arr.num_tuples(), sim.local_extent().num_points());
        });
    }

    #[test]
    fn adaptor_construction_is_cheap() {
        World::run(1, |comm| {
            let sim = run_sim(comm, 32);
            let t0 = std::time::Instant::now();
            for _ in 0..10_000 {
                let a = OscillatorAdaptor::new(&sim);
                std::hint::black_box(a.step());
            }
            // 10 000 constructions in well under 100 ms.
            assert!(t0.elapsed().as_millis() < 100);
        });
    }

    #[test]
    fn histogram_through_bridge_counts_every_point() {
        World::run(4, |comm| {
            let sim = run_sim(comm, 9);
            let hist = HistogramAnalysis::new("data", 16);
            let res = hist.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(hist));
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);
            // Shared planes are ghost-marked, so the histogram counts
            // each global point exactly once — independent of the
            // decomposition.
            let total = sim.global_extent().num_points();
            if comm.rank() == 0 {
                let h = res.lock().clone().unwrap();
                assert_eq!(h.counts.iter().sum::<u64>() as usize, total);
            }
        });
    }

    #[test]
    fn subroutine_call_equals_bridge_call() {
        // The Fig. 3 comparison in miniature: running the analysis via a
        // direct subroutine call and via the SENSEI bridge produce
        // identical results.
        World::run(2, |comm| {
            let sim = run_sim(comm, 8);

            let mut direct = HistogramAnalysis::new("data", 8);
            let direct_res = direct.results_handle();
            direct.execute(&OscillatorAdaptor::new(&sim), comm);

            let bridged = HistogramAnalysis::new("data", 8);
            let bridged_res = bridged.results_handle();
            let mut bridge = Bridge::new();
            bridge.register(Box::new(bridged));
            bridge.execute(&OscillatorAdaptor::new(&sim), comm);

            if comm.rank() == 0 {
                assert_eq!(*direct_res.lock(), *bridged_res.lock());
            }
        });
    }

    #[test]
    fn wrong_array_requests_refused() {
        World::run(1, |comm| {
            let sim = run_sim(comm, 4);
            let a = OscillatorAdaptor::new(&sim);
            let mut mesh = a.mesh();
            let wrong = a.add_array(&mut mesh, Association::Cell, "data");
            assert!(matches!(
                wrong,
                Err(sensei::AdaptorError::WrongAssociation { .. })
            ));
            let unknown = a.add_array(&mut mesh, Association::Point, "velocity");
            assert!(matches!(
                unknown,
                Err(sensei::AdaptorError::UnknownArray { .. })
            ));
        });
    }
}
