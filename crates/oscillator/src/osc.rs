//! Oscillator definitions and the input-deck parser.
//!
//! The input format is one oscillator per line, read on the root rank
//! and broadcast (§3.3):
//!
//! ```text
//! # kind  x    y    z    radius  omega  zeta
//! periodic 0.3 0.3 0.5  0.2     6.28   0
//! damped   0.7 0.7 0.3  0.25    12.57  0.1
//! decaying 0.5 0.2 0.8  0.15    1.0    0
//! ```

/// Oscillator temporal behavior.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OscillatorKind {
    /// `cos(ωt)` — periodic forever.
    Periodic,
    /// `e^(−ζωt)·cos(ω√(1−ζ²)·t)` — underdamped ringing.
    Damped,
    /// `e^(−ωt)` — pure decay.
    Decaying,
}

/// One oscillator: a time signal convolved with a spatial Gaussian.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Oscillator {
    /// Temporal behavior.
    pub kind: OscillatorKind,
    /// Center position in physical coordinates.
    pub center: [f64; 3],
    /// Gaussian width (standard deviation).
    pub radius: f64,
    /// Angular frequency (or decay rate for `Decaying`).
    pub omega: f64,
    /// Damping ratio (used by `Damped`).
    pub zeta: f64,
}

/// The Gaussian exponent magnitude beyond which `exp` underflows to
/// exactly `+0.0` in IEEE f64.
///
/// `exp(x)` rounds to zero for `x < ln(2^-1075) ≈ -745.134`; at `x =
/// -746` the true value (≈ 1.2e-324) is below half the smallest
/// subnormal (≈ 2.47e-324), so even with a few ulps of rounding error in
/// computing the exponent the result is exactly `+0.0`. Support culling
/// built on this threshold is therefore *bitwise* exact, not an
/// approximation: every culled contribution is a `±0.0` that cannot
/// change a non-negative-zero accumulator.
pub const GAUSSIAN_UNDERFLOW_EXPONENT: f64 = 746.0;

impl Oscillator {
    /// Squared support cutoff: for any `d2 >= cutoff_d2()` the spatial
    /// Gaussian [`Oscillator::gaussian`] evaluates to exactly `+0.0`, so
    /// a kernel may skip such cells without changing the field bitwise.
    ///
    /// Returns `0.0` when the radius is so small the denominator
    /// underflows (callers must then disable culling — the Gaussian is
    /// NaN at the center in that degenerate case).
    pub fn cutoff_d2(&self) -> f64 {
        2.0 * self.radius * self.radius * GAUSSIAN_UNDERFLOW_EXPONENT
    }

    /// Support radius: distance beyond which this oscillator contributes
    /// exactly zero (`≈ 38.6 × radius`). Infinite when `radius` is large
    /// enough to overflow the squared cutoff.
    pub fn support_radius(&self) -> f64 {
        self.cutoff_d2().sqrt()
    }

    /// Temporal amplitude at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self.kind {
            OscillatorKind::Periodic => (self.omega * t).cos(),
            OscillatorKind::Damped => {
                let zeta = self.zeta.clamp(0.0, 0.999_999);
                let wd = self.omega * (1.0 - zeta * zeta).sqrt();
                (-zeta * self.omega * t).exp() * (wd * t).cos()
            }
            OscillatorKind::Decaying => (-self.omega * t).exp(),
        }
    }

    /// Spatial Gaussian weight at squared distance `d2` from the center.
    pub fn gaussian(&self, d2: f64) -> f64 {
        (-d2 / (2.0 * self.radius * self.radius)).exp()
    }

    /// Contribution at position `p`, time `t`.
    pub fn contribution(&self, p: [f64; 3], t: f64) -> f64 {
        let dx = p[0] - self.center[0];
        let dy = p[1] - self.center[1];
        let dz = p[2] - self.center[2];
        self.value_at(t) * self.gaussian(dx * dx + dy * dy + dz * dz)
    }
}

/// Input-deck parse errors.
#[derive(Debug, PartialEq)]
pub enum ParseError {
    /// A line had the wrong number of fields.
    WrongFieldCount { line: usize, got: usize },
    /// Unknown oscillator kind.
    UnknownKind { line: usize, kind: String },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// A numeric field parsed to an infinity or NaN.
    NonFiniteNumber { line: usize, field: &'static str },
    /// Radius must be positive.
    NonPositiveRadius { line: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::WrongFieldCount { line, got } => {
                write!(f, "line {line}: expected 7 fields, got {got}")
            }
            ParseError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown oscillator kind '{kind}'")
            }
            ParseError::BadNumber { line, field } => {
                write!(f, "line {line}: field '{field}' is not a number")
            }
            ParseError::NonFiniteNumber { line, field } => {
                write!(f, "line {line}: field '{field}' must be finite")
            }
            ParseError::NonPositiveRadius { line } => {
                write!(f, "line {line}: radius must be positive")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse an oscillator input deck.
pub fn parse_deck(text: &str) -> Result<Vec<Oscillator>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let s = raw.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = s.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(ParseError::WrongFieldCount {
                line,
                got: fields.len(),
            });
        }
        let kind = match fields[0] {
            "periodic" => OscillatorKind::Periodic,
            "damped" => OscillatorKind::Damped,
            "decaying" => OscillatorKind::Decaying,
            other => {
                return Err(ParseError::UnknownKind {
                    line,
                    kind: other.to_string(),
                })
            }
        };
        let num = |idx: usize, name: &'static str| -> Result<f64, ParseError> {
            let v: f64 = fields[idx]
                .parse()
                .map_err(|_| ParseError::BadNumber { line, field: name })?;
            // Finite parameters are what makes support culling exact
            // (a NaN/∞ amplitude times a zero Gaussian is NaN, which a
            // culled kernel could not reproduce by skipping).
            if !v.is_finite() {
                return Err(ParseError::NonFiniteNumber { line, field: name });
            }
            Ok(v)
        };
        let osc = Oscillator {
            kind,
            center: [num(1, "x")?, num(2, "y")?, num(3, "z")?],
            radius: num(4, "radius")?,
            omega: num(5, "omega")?,
            zeta: num(6, "zeta")?,
        };
        if osc.radius <= 0.0 {
            return Err(ParseError::NonPositiveRadius { line });
        }
        out.push(osc);
    }
    Ok(out)
}

/// Serialize oscillators back to deck format (for writing sample inputs).
pub fn format_deck(oscillators: &[Oscillator]) -> String {
    let mut s = String::from("# kind x y z radius omega zeta\n");
    for o in oscillators {
        let kind = match o.kind {
            OscillatorKind::Periodic => "periodic",
            OscillatorKind::Damped => "damped",
            OscillatorKind::Decaying => "decaying",
        };
        s.push_str(&format!(
            "{kind} {} {} {} {} {} {}\n",
            o.center[0], o.center[1], o.center[2], o.radius, o.omega, o.zeta
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_starts_at_one_and_oscillates() {
        let o = Oscillator {
            kind: OscillatorKind::Periodic,
            center: [0.0; 3],
            radius: 1.0,
            omega: std::f64::consts::PI,
            zeta: 0.0,
        };
        assert_eq!(o.value_at(0.0), 1.0);
        assert!(
            (o.value_at(1.0) + 1.0).abs() < 1e-12,
            "half period flips sign"
        );
        assert!((o.value_at(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damped_envelope_shrinks() {
        let o = Oscillator {
            kind: OscillatorKind::Damped,
            center: [0.0; 3],
            radius: 1.0,
            omega: 10.0,
            zeta: 0.2,
        };
        // Compare peak magnitudes over successive windows.
        let peak = |t0: f64| {
            (0..100)
                .map(|i| o.value_at(t0 + i as f64 * 0.01).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(peak(0.0) > peak(2.0));
        assert!(peak(2.0) > peak(4.0));
    }

    #[test]
    fn decaying_is_monotone() {
        let o = Oscillator {
            kind: OscillatorKind::Decaying,
            center: [0.0; 3],
            radius: 1.0,
            omega: 1.0,
            zeta: 0.0,
        };
        assert_eq!(o.value_at(0.0), 1.0);
        assert!(o.value_at(1.0) > o.value_at(2.0));
        assert!(o.value_at(2.0) > 0.0);
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let o = Oscillator {
            kind: OscillatorKind::Periodic,
            center: [0.5, 0.5, 0.5],
            radius: 0.1,
            omega: 1.0,
            zeta: 0.0,
        };
        let at_center = o.contribution([0.5, 0.5, 0.5], 0.0);
        let off = o.contribution([0.6, 0.5, 0.5], 0.0);
        assert_eq!(at_center, 1.0);
        assert!(off < at_center && off > 0.0);
        // One sigma away: e^(-1/2).
        assert!((off - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn deck_roundtrip() {
        let deck = crate::demo_oscillators();
        let text = format_deck(&deck);
        let parsed = parse_deck(&text).unwrap();
        assert_eq!(parsed, deck);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let parsed = parse_deck("# header\n\nperiodic 0 0 0 1 1 0\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, OscillatorKind::Periodic);
    }

    #[test]
    fn parse_errors_are_precise() {
        assert_eq!(
            parse_deck("periodic 0 0 0 1 1\n"),
            Err(ParseError::WrongFieldCount { line: 1, got: 6 })
        );
        assert_eq!(
            parse_deck("wiggly 0 0 0 1 1 0\n"),
            Err(ParseError::UnknownKind {
                line: 1,
                kind: "wiggly".to_string()
            })
        );
        assert_eq!(
            parse_deck("periodic 0 0 zero 1 1 0\n"),
            Err(ParseError::BadNumber {
                line: 1,
                field: "z"
            })
        );
        assert_eq!(
            parse_deck("periodic 0 0 0 0 1 0\n"),
            Err(ParseError::NonPositiveRadius { line: 1 })
        );
    }
}
