//! The time-stepping simulation: fills a block-decomposed structured
//! grid with convolved oscillator values.
//!
//! The per-step fill is the miniapp half of the paper's hot path, and it
//! runs through **one chunked kernel** ([`Simulation::step_with_threads`])
//! parameterized by thread count: the rank's subgrid is split into
//! contiguous k-plane slabs, each slab filled independently with
//! **per-oscillator AABB support culling**. Culling exploits the fact
//! that the spatial Gaussian underflows to exactly `+0.0` beyond
//! [`Oscillator::support_radius`], so each oscillator only touches cells
//! inside its influence box — `O(cells + Σ support volumes)` instead of
//! `O(cells × oscillators)` — while staying **bitwise identical** to the
//! naive all-pairs kernel ([`Simulation::step_naive`], kept as the
//! property-test and benchmark reference).

use std::sync::Arc;

use datamodel::{dims_create, partition_extent, Extent};
use minimpi::Comm;
use sensei::exec;

use crate::osc::{parse_deck, Oscillator};

/// Simulation configuration (the user-specified parameters of §3.3:
/// grid dimensions, time resolution, duration).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Global grid points per axis.
    pub grid: [usize; 3],
    /// Physical domain size (the grid spans `[0, domain]³`).
    pub domain: [f64; 3],
    /// Timestep size.
    pub dt: f64,
    /// Number of timesteps.
    pub steps: usize,
    /// Synchronize ranks after every step (off in the paper's runs).
    pub sync_every_step: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            grid: [32, 32, 32],
            domain: [1.0, 1.0, 1.0],
            dt: 0.01,
            steps: 100,
            sync_every_step: false,
        }
    }
}

/// Per-rank simulation state.
pub struct Simulation {
    config: SimConfig,
    /// The oscillator set, shared by the zero-copy deck broadcast.
    oscillators: Arc<Vec<Oscillator>>,
    /// Local (block) extent.
    local: Extent,
    /// Global extent.
    global: Extent,
    /// Grid spacing per axis.
    spacing: [f64; 3],
    /// The field, shared so the data adaptor can view it zero-copy.
    field: Arc<Vec<f64>>,
    step: u64,
    time: f64,
}

impl Simulation {
    /// Set up the simulation: the deck text is read on rank 0 and
    /// broadcast, the global grid is partitioned by regular
    /// decomposition, and the local field allocated.
    ///
    /// The parsed deck moves through [`Comm::bcast_arc`], so every rank
    /// of a node shares one allocation instead of deep-copying the deck
    /// along the broadcast tree.
    pub fn new(comm: &Comm, config: SimConfig, deck_on_root: Option<&str>) -> Self {
        // Root parses and broadcasts the oscillator set (§3.3: "read and
        // broadcast from the root process").
        let oscillators = if comm.rank() == 0 {
            let deck = deck_on_root.expect("rank 0 must supply the oscillator deck");
            let parsed = parse_deck(deck).unwrap_or_else(|e| panic!("bad deck: {e}"));
            comm.bcast_arc(0, Some(Arc::new(parsed)))
        } else {
            comm.bcast_arc(0, None)
        };
        assert!(!oscillators.is_empty(), "need at least one oscillator");

        let global = Extent::whole(config.grid);
        let dims = dims_create(comm.size());
        let local = partition_extent(&global, dims, comm.rank());
        let spacing = [
            config.domain[0] / (config.grid[0].max(2) - 1) as f64,
            config.domain[1] / (config.grid[1].max(2) - 1) as f64,
            config.domain[2] / (config.grid[2].max(2) - 1) as f64,
        ];
        let field = Arc::new(vec![0.0; local.num_points()]);
        Simulation {
            config,
            oscillators,
            local,
            global,
            spacing,
            field,
            step: 0,
            time: 0.0,
        }
    }

    /// Advance one timestep on a single thread (the culled kernel).
    pub fn step(&mut self, comm: &Comm) {
        self.step_with_threads(comm, 1);
    }

    /// Advance one timestep with **hybrid MPI+thread execution**: one
    /// intra-rank thread per available core, while ranks still exchange
    /// via the communicator (the execution model the paper's Nyx
    /// discussion calls for, §4.2.3). Results are bitwise identical to
    /// [`Simulation::step`] at any thread count.
    pub fn step_hybrid(&mut self, comm: &Comm) {
        self.step_with_threads(comm, 0);
    }

    /// Advance one timestep on `threads` intra-rank threads (`0` = use
    /// every available core).
    ///
    /// The local block is split into contiguous k-plane slabs, one per
    /// thread; each slab runs the support-culled kernel independently.
    /// Per-cell accumulation order is the deck order at every thread
    /// count, so the field is bitwise identical to
    /// [`Simulation::step_naive`] regardless of `threads`.
    ///
    /// The communicator is only touched from the calling thread
    /// (`MPI_THREAD_FUNNELED`).
    pub fn step_with_threads(&mut self, comm: &Comm, threads: usize) {
        let probe = comm.probe();
        let _span = probe.span("per-step/sim/kernel");
        self.time = self.step as f64 * self.config.dt;
        let t = self.time;
        let oscillators: &[Oscillator] = &self.oscillators;
        let spacing = self.spacing;
        let local = self.local;

        // `make_mut` reuses the allocation when no analysis holds a view
        // (the steady state: adaptors release between steps); if a view
        // is still alive this copies rather than corrupting it.
        let field = Arc::make_mut(&mut self.field);
        let dims = local.point_dims();
        let plane = dims[0] * dims[1];
        let slabs = exec::split_even(dims[2], exec::resolve_threads(threads));
        if slabs.len() <= 1 {
            fill_culled(local, field, oscillators, spacing, t);
        } else {
            std::thread::scope(|scope| {
                let mut rest: &mut [f64] = field;
                let mut handles = Vec::with_capacity(slabs.len());
                for r in &slabs {
                    let (slab, tail) = rest.split_at_mut(r.len() * plane);
                    rest = tail;
                    let chunk = Extent::new(
                        [local.lo[0], local.lo[1], local.lo[2] + r.start as i64],
                        [local.hi[0], local.hi[1], local.lo[2] + r.end as i64 - 1],
                    );
                    handles.push(
                        scope.spawn(move || fill_culled(chunk, slab, oscillators, spacing, t)),
                    );
                }
                for h in handles {
                    h.join().expect("step: slab worker panicked");
                }
            });
        }
        self.step += 1;
        if self.config.sync_every_step {
            comm.barrier();
        }
    }

    /// Advance one timestep with the naive all-pairs kernel: every cell
    /// evaluates every oscillator, serially.
    ///
    /// Kept as the reference implementation: property tests assert the
    /// culled/threaded kernel reproduces this bitwise, and the hot-path
    /// benchmark measures its speedup against it.
    pub fn step_naive(&mut self, comm: &Comm) {
        let probe = comm.probe();
        let _span = probe.span("per-step/sim/kernel");
        self.time = self.step as f64 * self.config.dt;
        let t = self.time;
        let oscillators: &[Oscillator] = &self.oscillators;
        let spacing = self.spacing;
        let local = self.local;
        let field = Arc::make_mut(&mut self.field);
        for (out, p) in field.iter_mut().zip(local.iter_points()) {
            let pos = [
                p[0] as f64 * spacing[0],
                p[1] as f64 * spacing[1],
                p[2] as f64 * spacing[2],
            ];
            let mut v = 0.0;
            for o in oscillators {
                v += o.contribution(pos, t);
            }
            *out = v;
        }
        self.step += 1;
        if self.config.sync_every_step {
            comm.barrier();
        }
    }

    /// Zero-copy handle to the current field.
    pub fn field(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.field)
    }

    /// Local block extent.
    pub fn local_extent(&self) -> Extent {
        self.local
    }

    /// Global extent.
    pub fn global_extent(&self) -> Extent {
        self.global
    }

    /// Grid spacing.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    /// Completed steps.
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Physical time of the last computed step.
    pub fn current_time(&self) -> f64 {
        self.time
    }

    /// Configured total steps.
    pub fn total_steps(&self) -> usize {
        self.config.steps
    }

    /// The oscillator set (after broadcast; identical on all ranks).
    pub fn oscillators(&self) -> &[Oscillator] {
        &self.oscillators
    }

    /// Retarget oscillator `index`: move its center and retune its
    /// frequency, effective from the next `step` call. This is the
    /// write-back steering surface — every rank must apply the same
    /// retarget at the same step boundary (the deck is replicated, not
    /// distributed), which interactive sessions guarantee by scripting
    /// commands against the bridge step counter. Returns `false` when
    /// `index` is out of range (the command is ignored).
    pub fn retarget_oscillator(&mut self, index: usize, center: [f64; 3], omega: f64) -> bool {
        let deck = Arc::make_mut(&mut self.oscillators);
        match deck.get_mut(index) {
            Some(o) => {
                o.center = center;
                o.omega = omega;
                true
            }
            None => false,
        }
    }
}

/// Fill one chunk of the field with the support-culled kernel.
///
/// For each oscillator (in deck order, so per-cell accumulation order
/// matches the naive kernel) the chunk is clipped to the oscillator's
/// axis-aligned influence box, and inside the box each cell applies the
/// exact-underflow gate: contributions with `d² >= cutoff_d2` are
/// skipped because the Gaussian is exactly `+0.0` there. Skipped terms
/// are `±0.0` adds, which cannot change an accumulator that is never
/// `-0.0` (it starts at `+0.0`, and IEEE addition only yields `-0.0`
/// from two negative zeros) — hence bitwise identity with the naive sum.
///
/// Degenerate oscillators (non-finite amplitude at `t`, or a radius so
/// small the Gaussian denominator underflows) disable culling for that
/// oscillator and fall back to evaluating every cell, preserving the
/// naive kernel's NaN propagation.
///
/// The innermost loop runs over a precomputed `dx²` row table: `dx`
/// depends only on `i`, so it is squared once per oscillator in a
/// straight-line pass LLVM can unroll and vectorize, then reused across
/// every `(j, k)` row of the influence box. The distance is still
/// summed as `(dx² + dy²) + dz²` — the naive kernel's exact evaluation
/// order — so the table changes nothing bitwise; it only removes the
/// per-cell index→coordinate conversion and multiply from the loop
/// that pays for the `exp`.
fn fill_culled(
    chunk: Extent,
    out: &mut [f64],
    oscillators: &[Oscillator],
    spacing: [f64; 3],
    t: f64,
) {
    debug_assert_eq!(out.len(), chunk.num_points());
    out.fill(0.0);
    let d = chunk.point_dims();
    // One reusable row table per call; `clear` keeps the allocation warm
    // across oscillators.
    let mut dx2 = Vec::with_capacity(d[0]);
    for o in oscillators {
        // Hoisted invariants: `amp` and `denom` are the exact values
        // `contribution` computes internally, so `amp * (-d2/denom).exp()`
        // reproduces it bit for bit.
        let amp = o.value_at(t);
        let denom = 2.0 * o.radius * o.radius;
        let cutoff = o.cutoff_d2();
        let cullable = amp.is_finite() && cutoff > 0.0;
        let (ilo, ihi) = axis_range(
            chunk.lo[0],
            chunk.hi[0],
            o.center[0],
            spacing[0],
            cutoff,
            cullable,
        );
        let (jlo, jhi) = axis_range(
            chunk.lo[1],
            chunk.hi[1],
            o.center[1],
            spacing[1],
            cutoff,
            cullable,
        );
        let (klo, khi) = axis_range(
            chunk.lo[2],
            chunk.hi[2],
            o.center[2],
            spacing[2],
            cutoff,
            cullable,
        );
        if ilo > ihi || jlo > jhi || klo > khi {
            continue; // influence box misses this chunk entirely
        }
        dx2.clear();
        dx2.extend((ilo..=ihi).map(|i| {
            let dx = i as f64 * spacing[0] - o.center[0];
            dx * dx
        }));
        for k in klo..=khi {
            let dz = k as f64 * spacing[2] - o.center[2];
            let dz2 = dz * dz;
            let krow = (k - chunk.lo[2]) as usize * d[1];
            for j in jlo..=jhi {
                let dy = j as f64 * spacing[1] - o.center[1];
                let dy2 = dy * dy;
                let jrow = (krow + (j - chunk.lo[1]) as usize) * d[0];
                let row = &mut out[jrow + (ilo - chunk.lo[0]) as usize..];
                for (cell, &dxx) in row.iter_mut().zip(&dx2) {
                    let d2 = dxx + dy2 + dz2;
                    if cullable && d2 >= cutoff {
                        continue; // Gaussian underflowed: exactly ±0.0
                    }
                    *cell += amp * (-d2 / denom).exp();
                }
            }
        }
    }
}

/// Inclusive index range of points within `[lo, hi]` whose coordinate
/// can lie inside the oscillator's support along one axis, widened by
/// one point so float rounding can never shrink the true support. Falls
/// back to the full range whenever the bound arithmetic is not
/// trustworthy (culling disabled, non-positive spacing, or non-finite
/// bounds).
fn axis_range(lo: i64, hi: i64, center: f64, sp: f64, cutoff: f64, cullable: bool) -> (i64, i64) {
    if !cullable || sp.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !cutoff.is_finite()
    {
        return (lo, hi);
    }
    let r = cutoff.sqrt();
    let a = (center - r) / sp - 1.0;
    let b = (center + r) / sp + 1.0;
    if !a.is_finite() || !b.is_finite() {
        return (lo, hi);
    }
    // `as i64` saturates, so astronomically wide supports clamp safely.
    ((a.floor() as i64).max(lo), (b.ceil() as i64).min(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{format_deck, OscillatorKind};
    use minimpi::World;

    fn deck() -> String {
        format_deck(&crate::demo_oscillators())
    }

    /// A deck of small-radius oscillators whose supports cover only a
    /// fraction of the unit cube — the case culling exists for.
    fn sparse_deck(n: usize) -> String {
        let oscillators: Vec<Oscillator> = (0..n)
            .map(|i| Oscillator {
                kind: match i % 3 {
                    0 => OscillatorKind::Periodic,
                    1 => OscillatorKind::Damped,
                    _ => OscillatorKind::Decaying,
                },
                center: [
                    (i as f64 * 0.37).fract(),
                    (i as f64 * 0.61).fract(),
                    (i as f64 * 0.83).fract(),
                ],
                radius: 0.004 + (i % 5) as f64 * 0.001,
                omega: 1.0 + i as f64,
                zeta: 0.1 * (i % 4) as f64,
            })
            .collect();
        format_deck(&oscillators)
    }

    #[test]
    fn broadcast_gives_every_rank_the_deck() {
        let d = deck();
        World::run(4, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let sim = Simulation::new(comm, SimConfig::default(), root_deck);
            assert_eq!(sim.oscillators().len(), 3);
        });
    }

    #[test]
    fn blocks_partition_the_global_grid() {
        let d = deck();
        World::run(8, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let sim = Simulation::new(comm, SimConfig::default(), root_deck);
            let total_cells: usize =
                comm.allreduce_scalar(sim.local_extent().num_cells(), |a, b| a + b);
            assert_eq!(total_cells, sim.global_extent().num_cells());
        });
    }

    #[test]
    fn field_matches_analytic_sum() {
        let d = deck();
        World::run(2, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let cfg = SimConfig {
                grid: [8, 8, 8],
                steps: 3,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            sim.step(comm);
            // After 2 steps, time = dt (time of the last computed step).
            let t = sim.current_time();
            assert_eq!(t, 0.01);
            let field = sim.field();
            let local = sim.local_extent();
            let sp = sim.spacing();
            for (i, p) in local.iter_points().enumerate() {
                let pos = [
                    p[0] as f64 * sp[0],
                    p[1] as f64 * sp[1],
                    p[2] as f64 * sp[2],
                ];
                let expect: f64 = sim
                    .oscillators()
                    .iter()
                    .map(|o| o.contribution(pos, t))
                    .sum();
                assert!((field[i] - expect).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn retarget_moves_an_oscillator_and_changes_the_field() {
        let d = deck();
        World::run(2, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let cfg = SimConfig {
                grid: [8, 8, 8],
                steps: 4,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            let before = sim.field().as_slice().to_vec();
            assert!(!sim.retarget_oscillator(99, [0.5; 3], 2.0));
            assert!(sim.retarget_oscillator(0, [0.9, 0.1, 0.9], 7.0));
            assert_eq!(sim.oscillators()[0].center, [0.9, 0.1, 0.9]);
            assert_eq!(sim.oscillators()[0].omega, 7.0);
            sim.step(comm);
            // The retargeted deck must produce the analytic field of the
            // *new* deck, identically on every rank.
            let t = sim.current_time();
            let field = sim.field();
            let local = sim.local_extent();
            let sp = sim.spacing();
            let mut differs = false;
            for (i, p) in local.iter_points().enumerate() {
                let pos = [
                    p[0] as f64 * sp[0],
                    p[1] as f64 * sp[1],
                    p[2] as f64 * sp[2],
                ];
                let expect: f64 = sim
                    .oscillators()
                    .iter()
                    .map(|o| o.contribution(pos, t))
                    .sum();
                assert!((field[i] - expect).abs() < 1e-12);
                if field[i] != before[i] {
                    differs = true;
                }
            }
            let any = comm.allreduce_scalar(u8::from(differs), |a, b| a.max(b));
            assert_eq!(any, 1, "retarget must actually change the field");
        });
    }

    #[test]
    fn zero_copy_view_survives_step_without_corruption() {
        let d = deck();
        World::run(1, move |comm| {
            let root_deck = Some(d.as_str());
            let cfg = SimConfig {
                grid: [4, 4, 4],
                steps: 2,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            let view = sim.field();
            let snapshot: Vec<f64> = view.as_ref().clone();
            sim.step(comm); // copies because `view` is alive
            assert_eq!(&snapshot, view.as_ref(), "held view is immutable");
        });
    }

    #[test]
    fn deterministic_across_rank_counts() {
        // The same global field regardless of decomposition: compare the
        // value at a fixed global point between 1-rank and 4-rank runs.
        let d = deck();
        let probe = [3i64, 5, 2];
        let d1 = d.clone();
        let v1 = World::run(1, move |comm| {
            let cfg = SimConfig {
                grid: [8, 8, 8],
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, Some(d1.as_str()));
            sim.step(comm);
            sim.field()[sim.local_extent().linear_index(probe)]
        });
        let v4 = World::run(4, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let cfg = SimConfig {
                grid: [8, 8, 8],
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, root_deck);
            sim.step(comm);
            if sim.local_extent().contains(probe) {
                Some(sim.field()[sim.local_extent().linear_index(probe)])
            } else {
                None
            }
        });
        let hits: Vec<f64> = v4.into_iter().flatten().collect();
        assert!(!hits.is_empty());
        for h in hits {
            assert_eq!(h, v1[0]);
        }
    }

    #[test]
    fn hybrid_step_is_bitwise_identical() {
        // The §4.2.3 extension: intra-rank thread parallelism must not
        // change results.
        let d = deck();
        World::run(2, move |comm| {
            let root_deck = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let cfg = SimConfig {
                grid: [12, 12, 12],
                steps: 3,
                ..SimConfig::default()
            };
            let mut serial = Simulation::new(comm, cfg.clone(), root_deck);
            let root_deck2 = if comm.rank() == 0 {
                Some(d.as_str())
            } else {
                None
            };
            let mut hybrid = Simulation::new(comm, cfg, root_deck2);
            for _ in 0..3 {
                serial.step(comm);
                hybrid.step_hybrid(comm);
            }
            assert_eq!(serial.field().as_ref(), hybrid.field().as_ref());
            assert_eq!(serial.current_time(), hybrid.current_time());
        });
    }

    #[test]
    fn culled_kernel_is_bitwise_identical_to_naive() {
        // The tentpole contract: support culling and slab threading must
        // reproduce the all-pairs kernel bit for bit — on the dense demo
        // deck (supports cover the domain) and a sparse deck (most
        // oscillator/cell pairs culled).
        for deck_text in [deck(), sparse_deck(40)] {
            for threads in [1usize, 2, 5] {
                let d = deck_text.clone();
                World::run(2, move |comm| {
                    let cfg = SimConfig {
                        grid: [17, 13, 11],
                        ..SimConfig::default()
                    };
                    let root = if comm.rank() == 0 {
                        Some(d.as_str())
                    } else {
                        None
                    };
                    let mut naive = Simulation::new(comm, cfg.clone(), root);
                    let root2 = if comm.rank() == 0 {
                        Some(d.as_str())
                    } else {
                        None
                    };
                    let mut culled = Simulation::new(comm, cfg, root2);
                    for _ in 0..4 {
                        naive.step_naive(comm);
                        culled.step_with_threads(comm, threads);
                        assert_eq!(
                            naive.field().as_ref(),
                            culled.field().as_ref(),
                            "culled/threads={threads} diverged from naive"
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn support_box_misses_far_oscillator() {
        // An oscillator far outside the domain with a tiny radius must
        // contribute exactly zero everywhere — and bitwise-match naive.
        let o = Oscillator {
            kind: OscillatorKind::Periodic,
            center: [50.0, 50.0, 50.0],
            radius: 0.01,
            omega: 3.0,
            zeta: 0.0,
        };
        let text = format_deck(&[o]);
        World::run(1, move |comm| {
            let cfg = SimConfig {
                grid: [8, 8, 8],
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(comm, cfg, Some(text.as_str()));
            sim.step(comm);
            assert!(sim.field().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    #[should_panic(expected = "rank 0 must supply")]
    fn missing_deck_on_root_panics() {
        World::run(1, |comm| {
            let _ = Simulation::new(comm, SimConfig::default(), None);
        });
    }
}
